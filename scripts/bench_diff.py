#!/usr/bin/env python3
"""Compare freshly measured BENCH_E*.json tables against baselines.

Usage: bench_diff.py <fresh-dir> <baseline-dir> [--warn-pct N]

Matches rows positionally per experiment, compares every column whose
header ends in `_ms` or equals `latency (ms)`-style names containing
"(ms)", and reports any fresh value more than N % slower than the
baseline. Exit status 1 if regressions were found, 0 otherwise (the
caller decides whether that is fatal; check.sh treats it as a warning).
"""

import json
import sys
from pathlib import Path


def timing_columns(header):
    return [
        i
        for i, h in enumerate(header)
        if h.endswith("_ms") or "(ms)" in h or h.endswith("(µs)")
    ]


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    fresh_dir, base_dir = Path(argv[1]), Path(argv[2])
    warn_pct = 25.0
    if "--warn-pct" in argv:
        warn_pct = float(argv[argv.index("--warn-pct") + 1])

    regressions = []
    compared = 0
    for base_path in sorted(base_dir.glob("BENCH_E*.json")):
        fresh_path = fresh_dir / base_path.name
        if not fresh_path.exists():
            print(f"bench_diff: {base_path.name}: no fresh measurement; skipped")
            continue
        base = json.loads(base_path.read_text())
        fresh = json.loads(fresh_path.read_text())
        if base.get("header") != fresh.get("header"):
            print(f"bench_diff: {base_path.name}: header changed; skipped")
            continue
        cols = timing_columns(base["header"])
        for row_i, (brow, frow) in enumerate(zip(base["rows"], fresh["rows"])):
            for c in cols:
                try:
                    b, f = float(brow[c]), float(frow[c])
                except (ValueError, IndexError):
                    continue
                compared += 1
                if b > 0 and f > b * (1.0 + warn_pct / 100.0):
                    regressions.append(
                        f"{base['id']} row {row_i} `{base['header'][c]}`: "
                        f"{b:.2f} -> {f:.2f} (+{(f / b - 1) * 100:.0f}%)"
                    )

    print(f"bench_diff: compared {compared} timing cells")
    if regressions:
        print(f"bench_diff: {len(regressions)} cell(s) slower than "
              f"baseline by >{warn_pct:.0f}%:")
        for r in regressions:
            print(f"  {r}")
        return 1
    print("bench_diff: no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
