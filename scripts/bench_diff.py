#!/usr/bin/env python3
"""Compare freshly measured BENCH_E*.json tables against baselines.

Usage: bench_diff.py <fresh-dir> <baseline-dir> [--warn-pct N] [--qps-fail-pct N]

Matches rows positionally per experiment. Two kinds of columns are
compared:

* timing columns (header ends in `_ms`, contains `(ms)`, or ends in
  `(µs)`): lower is better; a fresh value more than --warn-pct %
  *slower* than baseline is a (warn-level) regression -> exit 1.
* throughput columns (header contains `qps`, `nodes/s`, or
  `speedup` — the E16/E17 ablation ratio): higher is better; a
  fresh value more than --warn-pct % *lower* is a warn-level
  regression, and a drop beyond --qps-fail-pct % on a `pool-4` row
  (the E14 4-worker serving-pool arm) is a HARD failure -> exit 2.
  check.sh treats exit 1 as a warning and exit 2 as a gate failure.

Rows are matched by their non-measured columns (scale, workload,
deterministic counts) so a quick-mode fresh run compares against the
scales it shares with a full-mode baseline (E16/E17 commit full-mode
baselines); experiments whose keys don't overlap at all fall back to
positional matching.
"""

import json
import sys
from pathlib import Path


def timing_columns(header):
    return [
        i
        for i, h in enumerate(header)
        if h.endswith("_ms") or "(ms)" in h or h.endswith("(µs)")
    ]


def qps_columns(header):
    return [
        i
        for i, h in enumerate(header)
        if "qps" in h.lower() or "nodes/s" in h.lower() or "speedup" in h.lower()
    ]


def match_rows(base_rows, fresh_rows, measured):
    """Pair rows by their non-measured columns; positional fallback.

    Measured columns and float-valued cells (derived ratios vary run
    to run) are excluded from the key, which leaves scales, workload
    labels, and deterministic counts. Returns a list of
    (base_row_index, base_row, fresh_row) pairs.
    """
    def keyable(cell):
        s = str(cell)
        if "." not in s:
            return True
        try:
            float(s)
        except ValueError:
            return True
        return False

    def key(row):
        return tuple(
            str(c)
            for i, c in enumerate(row)
            if i not in measured and keyable(c)
        )

    index = {}
    for i, brow in enumerate(base_rows):
        index.setdefault(key(brow), []).append((i, brow))
    pairs = []
    for frow in fresh_rows:
        bucket = index.get(key(frow))
        if bucket:
            pairs.append((*bucket.pop(0), frow))
    if not pairs:
        # No shared keys (header drift, renamed labels): fall back to
        # the historical positional zip so coverage never drops to zero.
        pairs = [(i, b, f) for i, (b, f) in enumerate(zip(base_rows, fresh_rows))]
    return pairs


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    fresh_dir, base_dir = Path(argv[1]), Path(argv[2])
    warn_pct = 25.0
    if "--warn-pct" in argv:
        warn_pct = float(argv[argv.index("--warn-pct") + 1])
    qps_fail_pct = 15.0
    if "--qps-fail-pct" in argv:
        qps_fail_pct = float(argv[argv.index("--qps-fail-pct") + 1])

    regressions = []
    hard_failures = []
    compared = 0
    for base_path in sorted(base_dir.glob("BENCH_E*.json")):
        fresh_path = fresh_dir / base_path.name
        if not fresh_path.exists():
            print(f"bench_diff: {base_path.name}: no fresh measurement; skipped")
            continue
        base = json.loads(base_path.read_text())
        fresh = json.loads(fresh_path.read_text())
        if base.get("header") != fresh.get("header"):
            print(f"bench_diff: {base_path.name}: header changed; skipped")
            continue
        t_cols = timing_columns(base["header"])
        q_cols = qps_columns(base["header"])
        measured = set(t_cols) | set(q_cols)
        for row_i, brow, frow in match_rows(base["rows"], fresh["rows"], measured):
            for c in t_cols:
                try:
                    b, f = float(brow[c]), float(frow[c])
                except (ValueError, IndexError):
                    continue
                compared += 1
                if b > 0 and f > b * (1.0 + warn_pct / 100.0):
                    regressions.append(
                        f"{base['id']} row {row_i} `{base['header'][c]}`: "
                        f"{b:.2f} -> {f:.2f} (+{(f / b - 1) * 100:.0f}%)"
                    )
            for c in q_cols:
                try:
                    b, f = float(brow[c]), float(frow[c])
                except (ValueError, IndexError):
                    continue
                compared += 1
                if b <= 0:
                    continue
                drop_pct = (1.0 - f / b) * 100.0
                label = str(brow[0]) if brow else ""
                cell = (
                    f"{base['id']} row {row_i} ({label}) `{base['header'][c]}`: "
                    f"{b:.2f} -> {f:.2f} (-{drop_pct:.0f}%)"
                )
                if label == "pool-4" and drop_pct > qps_fail_pct:
                    hard_failures.append(cell)
                elif drop_pct > warn_pct:
                    regressions.append(cell)

    print(f"bench_diff: compared {compared} timing/throughput cells")
    if hard_failures:
        print(f"bench_diff: HARD FAIL — 4-worker serving-pool QPS dropped "
              f"more than {qps_fail_pct:.0f}% below baseline:")
        for r in hard_failures:
            print(f"  {r}")
    if regressions:
        print(f"bench_diff: {len(regressions)} cell(s) worse than "
              f"baseline by >{warn_pct:.0f}%:")
        for r in regressions:
            print(f"  {r}")
    if hard_failures:
        return 2
    if regressions:
        return 1
    print("bench_diff: no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
