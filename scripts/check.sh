#!/usr/bin/env bash
# Repo-wide gate: build, tests, lints, benches compile.
#
# Offline-friendly: every external dependency is vendored under
# shims/, so --offline is the default; pass --online to let cargo
# touch the network (e.g. on a developer machine with a warm index).
#
# Usage: scripts/check.sh [--online] [--quick]
#   --quick  skip the release build and bench compilation

set -euo pipefail
cd "$(dirname "$0")/.."

NET=--offline
QUICK=0
for arg in "$@"; do
    case "$arg" in
        --online) NET= ;;
        --quick) QUICK=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

# Tier 1: the seed gate — debug build + the full test suite.
run cargo build $NET
run cargo test -q $NET --workspace

# Lints. Clippy may be absent in minimal toolchains; warn, don't fail.
if cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy $NET --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy unavailable; skipping lint pass" >&2
fi

if [ "$QUICK" -eq 0 ]; then
    run cargo build $NET --release
    # Benches must at least compile (running them is a manual step).
    run cargo bench $NET --workspace --no-run
fi

echo "OK"
