#!/usr/bin/env bash
# Repo-wide gate: build, tests, lints, benches compile.
#
# Offline-friendly: every external dependency is vendored under
# shims/, so --offline is the default; pass --online to let cargo
# touch the network (e.g. on a developer machine with a warm index).
#
# Usage: scripts/check.sh [--online] [--quick]
#   --quick  skip the release build and bench compilation

set -euo pipefail
cd "$(dirname "$0")/.."

NET=--offline
QUICK=0
for arg in "$@"; do
    case "$arg" in
        --online) NET= ;;
        --quick) QUICK=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

# Tier 1: the seed gate — debug build + the full test suite.
run cargo build $NET
run cargo test -q $NET --workspace

# The pushdown/versioned-caching layer has a kill switch
# (XQSE_DISABLE_OPT=1 == Engine::set_optimize(false)) that must restore
# the unoptimized baseline exactly: re-run the semantic suites —
# conformance, chaos (staleness matrix), and the paper's use cases —
# with the optimizer disabled.
echo "==> XQSE_DISABLE_OPT=1 cargo test -q $NET --test conformance --test chaos --test use_cases --test figure3"
XQSE_DISABLE_OPT=1 cargo test -q $NET --test conformance --test chaos \
    --test use_cases --test figure3

# The prepared-plan cache and batched source access have their own,
# narrower kill switch (XQSE_DISABLE_BATCH=1 == Engine::set_batch(false))
# that restores the PR 2/3 parse-per-call, call-per-item behaviour while
# leaving the pushdown/caching layer on. Same semantic suites again.
echo "==> XQSE_DISABLE_BATCH=1 cargo test -q $NET --test conformance --test chaos --test use_cases --test figure3"
XQSE_DISABLE_BATCH=1 cargo test -q $NET --test conformance --test chaos \
    --test use_cases --test figure3

# Zero-copy XDM construction has its own kill switch
# (XQSE_DISABLE_GRAFT=1 == Engine::set_graft(false)) that restores
# deep-copy element construction while leaving interning and the other
# optimizer layers on. Grafted and copied construction must be
# observably identical, so: same semantic suites a third time.
echo "==> XQSE_DISABLE_GRAFT=1 cargo test -q $NET --test conformance --test chaos --test use_cases --test figure3"
XQSE_DISABLE_GRAFT=1 cargo test -q $NET --test conformance --test chaos \
    --test use_cases --test figure3

# Pipelined lazy evaluation has its own kill switch
# (XQSE_DISABLE_LAZY=1 == Engine::set_lazy(false)) that restores fully
# eager FLWOR evaluation — no tuple streaming, no early-exit
# interceptors. Lazy and eager runs must be observably identical on
# every fault-free program, so: same semantic suites a fourth time.
echo "==> XQSE_DISABLE_LAZY=1 cargo test -q $NET --test conformance --test chaos --test use_cases --test figure3"
XQSE_DISABLE_LAZY=1 cargo test -q $NET --test conformance --test chaos \
    --test use_cases --test figure3

# Crash-recovery chaos matrix: the journaled-2PC acceptance gate.
# Crashes the coordinator at every protocol point (FaultKind::CrashPoint
# on the Op::Xa* ops), asserts divergent source state before recover()
# and the atomicity invariant after, and counter-asserts that recovery
# is a no-op on a clean journal and idempotent on a dirty one.
run cargo test -q $NET --test chaos xa_

# Serving-pool concurrency gate: the canonical shard-lock-order
# regression (two workers submitting overlapping table sets in
# opposite declaration order), the 4-worker mixed read/write/XA soak
# under a fault plan (timeouts + breaker trip + coordinator crash,
# with post-recovery atomicity and monotonic table versions), and the
# pooled-vs-sequential read-equivalence property.
run cargo test -q $NET --test chaos serve_

# Request-budget gate (PR 8): the cancel-at-every-XA-protocol-point
# stall matrix (a budget must never split a distributed transaction),
# the pool admission books (completed + shed + cancelled = offered),
# fuel/deadline/memory enforcement, worker-panic containment, and the
# no-partial-writes property under random interruption. Then the kill
# switch: XQSE_DISABLE_BUDGETS=1 must make every budget spec inert,
# restoring the pre-budget serving behavior.
run cargo test -q $NET --test chaos budget_
echo "==> XQSE_DISABLE_BUDGETS=1 cargo test -q $NET --test chaos budget_kill_switch"
XQSE_DISABLE_BUDGETS=1 cargo test -q $NET --test chaos budget_kill_switch

# Lints. Clippy may be absent in minimal toolchains; warn, don't fail.
# Note: the optimizer-layer modules (xqeval/engine.rs, aldsp/rel.rs,
# aldsp/introspect.rs) carry in-source `#![deny(clippy::unwrap_used)]`,
# so this pass also rejects panicking unwraps on those read paths.
if cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy $NET --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy unavailable; skipping lint pass" >&2
fi

if [ "$QUICK" -eq 0 ]; then
    run cargo build $NET --release
    # Benches must at least compile (running them is a manual step).
    run cargo bench $NET --workspace --no-run

    # Journal-overhead guard: the journaled coordinator must stay
    # within 5% of the plain one on the no-fault path (bench_xa has the
    # matching criterion cases). Wall-clock on shared hardware is
    # noisy: warn, don't fail.
    echo "==> cargo test -q $NET --release --test chaos xa_journal_overhead_guard -- --ignored"
    cargo test -q $NET --release --test chaos xa_journal_overhead_guard -- --ignored \
        || echo "==> xa journal overhead guard exceeded its 5% budget (warning only)" >&2

    # Budget-overhead guard: a fully armed budget that never trips
    # must stay within 5% of the unbudgeted evaluator (bench_resilience
    # has the matching budget_none / budget_armed_never_trips cases).
    # Same noise caveat: warn, don't fail.
    echo "==> cargo test -q $NET --release --test chaos budget_overhead_guard -- --ignored"
    cargo test -q $NET --release --test chaos budget_overhead_guard -- --ignored \
        || echo "==> budget overhead guard exceeded its 5% budget (warning only)" >&2

    # Bench-regression tripwire: run the quick experiment table
    # (including E14, the serving-pool throughput curve, and E16, the
    # zero-copy construction ablation — which self-asserts byte-equal
    # graft/copy serialization on every run), compare against the
    # checked-in BENCH_E*.json baselines. Timing-column
    # regressions beyond 25 % WARN (quick mode on shared hardware is
    # noisy); a >15 % QPS drop on the E14 pool-4 row is a HARD FAIL —
    # that is the whole point of this PR and it must not quietly rot.
    BENCH_TMP=$(mktemp -d)
    trap 'rm -rf "$BENCH_TMP"' EXIT
    echo "==> exptab quick --json --out $BENCH_TMP"
    cargo run -q $NET --release -p xqse-bench --bin exptab -- \
        quick --json --out "$BENCH_TMP"
    if command -v python3 >/dev/null 2>&1; then
        set +e
        python3 scripts/bench_diff.py "$BENCH_TMP" . --warn-pct 25 --qps-fail-pct 15
        BENCH_RC=$?
        set -e
        if [ "$BENCH_RC" -eq 2 ]; then
            echo "==> 4-worker serving-pool QPS regressed beyond the 15% tripwire" >&2
            exit 1
        elif [ "$BENCH_RC" -ne 0 ]; then
            echo "==> bench baseline check reported regressions (warning only)" >&2
        fi
    else
        echo "==> python3 unavailable; skipping bench baseline diff" >&2
    fi
fi

echo "OK"
