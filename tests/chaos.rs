//! Chaos tests: deterministic fault plans driven through the paper's
//! use cases.
//!
//! Every test writes a [`FaultPlan`], installs it on a `DataSpace`,
//! and asserts *exact* outcomes — which calls failed, what error code
//! surfaced, how many retries happened, and (critically) that 2PC
//! left no partial writes behind. All latency is virtual-clock time;
//! nothing here sleeps.

use proptest::prelude::*;

use xqse_repro::aldsp::demo;
use xqse_repro::aldsp::rel::{
    Column, ColumnType, Database, SqlValue, TableSchema, TwoPhaseCoordinator, TxOutcome,
    WriteOp,
};
use xqse_repro::aldsp::service::DataSpace;
use xqse_repro::aldsp::{
    AldspCode, BreakerState, FaultInjector, FaultKind, FaultPlan, FaultRule, Op, Policy,
    Resilience,
};
use xqse_repro::xdm::qname::QName;
use xqse_repro::xdm::sequence::{Item, Sequence};
use xqse_repro::xqeval::Env;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

fn employee_schema() -> TableSchema {
    TableSchema {
        name: "EMPLOYEE".into(),
        columns: vec![
            Column::required("EmployeeID", ColumnType::Integer),
            Column::required("Name", ColumnType::Varchar),
        ],
        primary_key: vec!["EmployeeID".into()],
        foreign_keys: vec![],
    }
}

/// Use-case-4 topology: a logical service replicating creates over a
/// primary and a backup relational source.
fn replicated_space() -> (DataSpace, Database, Database) {
    let primary = Database::new("primary");
    primary.create_table(employee_schema()).unwrap();
    let backup = Database::new("backup");
    backup.create_table(employee_schema()).unwrap();
    let space = DataSpace::new();
    space.register_relational_source(&primary).unwrap();
    space.register_relational_source(&backup).unwrap();
    (space, primary, backup)
}

fn emp(id: i64, name: &str) -> Sequence {
    let xml =
        format!("<EMPLOYEE><EmployeeID>{id}</EmployeeID><Name>{name}</Name></EMPLOYEE>");
    let doc = xqse_repro::xmlparse::parse(&xml).unwrap();
    Sequence::one(Item::Node(doc.children()[0].clone()))
}

/// Read one cell straight out of a database (bypassing every cache),
/// so atomicity assertions see the source of truth.
fn cell(db: &Database, table: &str, col: &str, row_idx: usize) -> String {
    let schema = db.schema(table).unwrap();
    let i = schema.col_index(col).unwrap();
    db.scan(table).unwrap()[row_idx][i].lexical()
}

/// The paper's Use Case 4 replicating create (§III.D.4), verbatim
/// shape: create on primary, then on backup, wrapping failures in
/// application-level error codes.
const REPLICATING_CREATE: &str = r#"
declare namespace tns = "ld:ReplicatedEmployees";
declare namespace p = "ld:primary/EMPLOYEE";
declare namespace b = "ld:backup/EMPLOYEE";

declare procedure tns:create($newEmps as element(EMPLOYEE)*)
  as element(EMPLOYEE_KEY)*
{
  declare $keys as element(EMPLOYEE_KEY)* := ();
  iterate $newEmp over $newEmps {
    declare $key as element(EMPLOYEE_KEY)?;
    try { set $key := p:createEMPLOYEE($newEmp); }
    catch (* into $err, $msg) {
      fn:error(xs:QName("PRIMARY_CREATE_FAILURE"),
        fn:concat("Primary create failed due to: ", $err, " ", $msg));
    };
    try { b:createEMPLOYEE($newEmp); }
    catch (* into $err, $msg) {
      fn:error(xs:QName("SECONDARY_CREATE_FAILURE"),
        fn:concat("Backup create failed due to: ", $err, " ", $msg));
    };
    set $keys := ($keys, $key);
  }
  return value $keys;
};
"#;

/// A hardened variant: catches *only* `aldsp:SRC_UNAVAILABLE` from the
/// backup create, compensates by deleting the already-created primary
/// row, and re-raises an application code. Any other failure class
/// propagates untouched.
const COMPENSATING_CREATE: &str = r#"
declare namespace tns = "ld:SafeReplicate";
declare namespace p = "ld:primary/EMPLOYEE";
declare namespace b = "ld:backup/EMPLOYEE";
declare namespace aldsp = "urn:aldsp:errors";

declare procedure tns:create($newEmp as element(EMPLOYEE))
  as element(EMPLOYEE_KEY)*
{
  declare $key as element(EMPLOYEE_KEY)?;
  set $key := p:createEMPLOYEE($newEmp);
  try { b:createEMPLOYEE($newEmp); }
  catch (aldsp:SRC_UNAVAILABLE into $err, $msg) {
    p:deleteEMPLOYEE($newEmp);
    fn:error(xs:QName("REPLICA_DOWN"),
      fn:concat("backup source down; compensated primary create: ", $msg));
  };
  return value $key;
};
"#;

/// Namespace-qualified wildcard: `aldsp:*` means "any infrastructure
/// fault" and deliberately does NOT swallow logical `err:DSP000x`
/// errors.
const DEGRADING_CREATE: &str = r#"
declare namespace tns = "ld:Fallback";
declare namespace b = "ld:backup/EMPLOYEE";
declare namespace aldsp = "urn:aldsp:errors";

declare procedure tns:robustCreate($newEmp as element(EMPLOYEE)) as xs:string
{
  declare $status as xs:string := "replicated";
  try { b:createEMPLOYEE($newEmp); }
  catch (aldsp:* into $err, $msg) { set $status := "degraded"; };
  return value $status;
};
"#;

// ---------------------------------------------------------------------------
// 1. Transient blips below the retry budget are invisible
// ---------------------------------------------------------------------------

#[test]
fn transient_blip_is_invisible_to_replicating_create() {
    let (space, primary, backup) = replicated_space();
    space.xqse().load(REPLICATING_CREATE).unwrap();
    let inj = space.install_fault_injector(FaultInjector::new(
        FaultPlan::new()
            .rule(FaultRule::new("primary", Op::Execute, FaultKind::FailNTimes(2))),
    ));
    let res = space.install_resilience(Resilience::new(Policy::default()));

    let create = QName::with_ns("ld:ReplicatedEmployees", "create");
    let batch = emp(1, "Ann").concat(emp(2, "Bob")).concat(emp(3, "Cid"));
    let mut env = Env::new();
    let keys = space.xqse().call_procedure(&create, vec![batch], &mut env).unwrap();

    // The script never saw the two injected transients.
    assert_eq!(keys.len(), 3);
    assert_eq!(primary.row_count("EMPLOYEE").unwrap(), 3);
    assert_eq!(backup.row_count("EMPLOYEE").unwrap(), 3);
    assert_eq!(inj.lock().injected_count(), 2);
    let r = res.lock();
    assert_eq!(r.stats().retries, 2);
    // Exponential backoff on the virtual clock: 10ms + 20ms.
    assert_eq!(r.clock().now_ms(), 30);
    assert_eq!(r.breaker_state("primary"), BreakerState::Closed);
}

// ---------------------------------------------------------------------------
// 2. Permanent faults abort the distributed update atomically
// ---------------------------------------------------------------------------

#[test]
fn permanent_fault_aborts_distributed_update_atomically() {
    let d = demo::build(2, 1, 1).unwrap();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    // One fault: db2's XA prepare fails once, permanently-flavored.
    d.space.install_fault_injector(FaultInjector::new(
        FaultPlan::new()
            .rule(FaultRule::new("db2", Op::Prepare, FaultKind::Permanent).times(1)),
    ));

    // Touch both sources so the submit must run 2PC.
    g.set_value(0, &["LAST_NAME"], "Chaos").unwrap();
    g.set_value(0, &["CreditCards", "CREDIT_CARD", "BRAND"], "AMEX").unwrap();
    let err = d.space.submit(&g).unwrap_err();
    assert_eq!(AldspCode::of(&err), Some(AldspCode::SrcUnavailable));

    // Atomicity: NEITHER source shows a partial write.
    assert_eq!(cell(&d.db1, "CUSTOMER", "LAST_NAME", 0), "Carey");
    assert_eq!(cell(&d.db2, "CREDIT_CARD", "CC_BRAND", 0), "MASTERCHARGE");

    // The abort rolled back cleanly: prepared-row locks were released,
    // so the very same graph submits successfully once the fault
    // budget is spent.
    d.space.submit(&g).unwrap();
    assert_eq!(cell(&d.db1, "CUSTOMER", "LAST_NAME", 0), "Chaos");
    assert_eq!(cell(&d.db2, "CREDIT_CARD", "CC_BRAND", 0), "AMEX");
}

// ---------------------------------------------------------------------------
// 3. A transient prepare inside 2PC is retried to success
// ---------------------------------------------------------------------------

#[test]
fn transient_prepare_inside_2pc_is_retried_to_success() {
    let d = demo::build(2, 1, 1).unwrap();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    let inj = d.space.install_fault_injector(FaultInjector::new(
        FaultPlan::new()
            .rule(FaultRule::new("db2", Op::Prepare, FaultKind::FailNTimes(1))),
    ));
    let res = d.space.install_resilience(Resilience::new(Policy::default()));

    g.set_value(0, &["LAST_NAME"], "Retry").unwrap();
    g.set_value(0, &["CreditCards", "CREDIT_CARD", "BRAND"], "DINERS").unwrap();
    d.space.submit(&g).unwrap();

    // Applied exactly once, after exactly one retry.
    assert_eq!(cell(&d.db1, "CUSTOMER", "LAST_NAME", 0), "Retry");
    assert_eq!(cell(&d.db2, "CREDIT_CARD", "CC_BRAND", 0), "DINERS");
    assert_eq!(d.db1.row_count("CUSTOMER").unwrap(), 2);
    assert_eq!(d.db2.row_count("CREDIT_CARD").unwrap(), 2);
    assert_eq!(inj.lock().injected_count(), 1);
    assert_eq!(res.lock().stats().retries, 1);
}

// ---------------------------------------------------------------------------
// 4/5. XQSE catch discriminates on the aldsp error taxonomy
// ---------------------------------------------------------------------------

#[test]
fn xqse_catch_on_src_unavailable_runs_compensation() {
    let (space, primary, backup) = replicated_space();
    space.xqse().load(COMPENSATING_CREATE).unwrap();
    space.install_fault_injector(FaultInjector::new(
        FaultPlan::new().rule(FaultRule::new("backup", Op::Execute, FaultKind::Permanent)),
    ));

    let create = QName::with_ns("ld:SafeReplicate", "create");
    let mut env = Env::new();
    let err =
        space.xqse().call_procedure(&create, vec![emp(1, "Ann")], &mut env).unwrap_err();

    // The catch matched aldsp:SRC_UNAVAILABLE, compensated the primary
    // create, and re-raised the application-level code.
    assert_eq!(err.code.local, "REPLICA_DOWN");
    assert!(err.message.contains("compensated"), "got: {}", err.message);
    assert_eq!(primary.row_count("EMPLOYEE").unwrap(), 0, "compensation ran");
    assert_eq!(backup.row_count("EMPLOYEE").unwrap(), 0);
}

#[test]
fn xqse_catch_is_precise_other_codes_propagate_uncompensated() {
    let (space, primary, _backup) = replicated_space();
    space.xqse().load(COMPENSATING_CREATE).unwrap();
    // A *transient* failure, not an outage: the SRC_UNAVAILABLE catch
    // must not match, so the error propagates and (per the paper) the
    // primary-side effect is NOT rolled back.
    space.install_fault_injector(FaultInjector::new(
        FaultPlan::new().rule(FaultRule::new("backup", Op::Execute, FaultKind::Transient)),
    ));

    let create = QName::with_ns("ld:SafeReplicate", "create");
    let mut env = Env::new();
    let err =
        space.xqse().call_procedure(&create, vec![emp(1, "Ann")], &mut env).unwrap_err();
    assert_eq!(AldspCode::of(&err), Some(AldspCode::SrcTransient));
    assert_eq!(primary.row_count("EMPLOYEE").unwrap(), 1, "no compensation");
}

#[test]
fn xqse_namespace_wildcard_catches_any_infrastructure_fault() {
    let (space, _primary, backup) = replicated_space();
    space.xqse().load(DEGRADING_CREATE).unwrap();
    space.install_fault_injector(FaultInjector::new(
        FaultPlan::new()
            .rule(FaultRule::new("backup", Op::Execute, FaultKind::Timeout).times(1)),
    ));
    let create = QName::with_ns("ld:Fallback", "robustCreate");
    let mut env = Env::new();

    // aldsp:* catches the timeout …
    let out =
        space.xqse().call_procedure(&create, vec![emp(1, "Ann")], &mut env).unwrap();
    assert_eq!(out.string_value().unwrap(), "degraded");

    // … but does NOT swallow a logical err:DSP0003 (duplicate key):
    // the fault budget is spent, so this create reaches the source and
    // collides with a pre-existing row.
    backup
        .insert("EMPLOYEE", vec![SqlValue::Int(2), SqlValue::Str("Ghost".into())])
        .unwrap();
    let err =
        space.xqse().call_procedure(&create, vec![emp(2, "Bob")], &mut env).unwrap_err();
    assert!(
        err.is(xqse_repro::xdm::error::ErrorCode::DSP0003),
        "expected DSP0003 to escape the aldsp:* catch, got {}",
        err.code
    );
}

// ---------------------------------------------------------------------------
// 6. Circuit breaker + stale-read degradation through the DataSpace
// ---------------------------------------------------------------------------

#[test]
fn breaker_opens_and_reads_degrade_to_stale_cache() {
    let d = demo::build(2, 1, 1).unwrap();
    // This test pins the *unoptimized* read path: with the optimizer
    // on, the CreditCards where-clause is pushed down to an indexed
    // point-select and the faulted full scan never runs at all (see
    // `stale_snapshot_keys_caches_while_breaker_open` for the
    // optimized counterpart).
    d.space.engine().set_optimize(false);
    let res = d.space.install_resilience(Resilience::new(Policy {
        max_retries: 0,
        breaker_threshold: 3,
        breaker_cooldown_ms: 60_000,
        ..Policy::default()
    }));

    // Warm read while db2 is healthy — this populates its scan cache.
    let warm = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    let warm_brand =
        warm.get_value(0, &["CreditCards", "CREDIT_CARD", "BRAND"]).unwrap();

    // Now db2 goes down hard.
    d.space.install_fault_injector(FaultInjector::new(
        FaultPlan::new().rule(FaultRule::new("db2", Op::Scan, FaultKind::Permanent)),
    ));

    // Reads keep succeeding from the marked-stale cache; each get
    // scans db2 exactly once, so the third failed scan trips the
    // breaker (threshold 3).
    for _ in 0..3 {
        let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
        assert_eq!(
            g.get_value(0, &["CreditCards", "CREDIT_CARD", "BRAND"]).unwrap(),
            warm_brand,
            "stale read serves the last good snapshot"
        );
    }
    {
        let r = res.lock();
        assert_eq!(r.breaker_state("db2"), BreakerState::Open);
        assert_eq!(r.breaker_state("db1"), BreakerState::Closed, "db1 unaffected");
        let s = r.stats();
        assert_eq!(s.stale_reads, 3, "every faulted scan degraded to cache");
        assert_eq!(s.fast_failures, 0, "breaker tripped on the last scan");
    }

    // With the breaker open the source is no longer hammered: the next
    // get fails fast at admission and still serves stale data.
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    assert_eq!(
        g.get_value(0, &["CreditCards", "CREDIT_CARD", "BRAND"]).unwrap(),
        warm_brand
    );
    {
        let r = res.lock();
        let s = r.stats();
        assert_eq!(s.stale_reads, 4);
        assert_eq!(s.fast_failures, 1, "open breaker stopped hammering db2");
    }

    // After the cooldown the breaker half-opens; the probe hits the
    // still-broken source and the breaker re-opens — while the read
    // STILL succeeds from stale cache.
    res.lock().clock().advance(60_000);
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    assert_eq!(
        g.get_value(0, &["CreditCards", "CREDIT_CARD", "BRAND"]).unwrap(),
        warm_brand
    );
    let r = res.lock();
    let states: Vec<(BreakerState, BreakerState)> = r
        .transitions()
        .iter()
        .filter(|t| t.source == "db2")
        .map(|t| (t.from, t.to))
        .collect();
    assert_eq!(
        states,
        vec![
            (BreakerState::Closed, BreakerState::Open),
            (BreakerState::Open, BreakerState::HalfOpen),
            (BreakerState::HalfOpen, BreakerState::Open),
        ]
    );
}

// ---------------------------------------------------------------------------
// 7. Property: retry + 2PC never double-applies a write
// ---------------------------------------------------------------------------

fn item_schema() -> TableSchema {
    TableSchema {
        name: "ITEM".into(),
        columns: vec![
            Column::required("ID", ColumnType::Integer),
            Column::required("VAL", ColumnType::Varchar),
        ],
        primary_key: vec!["ID".into()],
        foreign_keys: vec![],
    }
}

fn item_insert() -> WriteOp {
    WriteOp::Insert {
        table: "ITEM".into(),
        row: vec![SqlValue::Int(1), SqlValue::Str("x".into())],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every (faults k, retry budget r): an auto-commit write goes
    /// through iff k <= r, and the row lands AT MOST once — retries of
    /// an injected failure can never re-apply a write because the
    /// injection fires before the source is touched and a real failure
    /// aborts atomically.
    #[test]
    fn retry_never_double_applies_autocommit_writes(k in 0u32..5, r in 0u32..5) {
        let db = Database::new("chaosdb");
        db.create_table(item_schema()).unwrap();
        let space = DataSpace::new();
        space.register_relational_source(&db).unwrap();
        space.install_fault_injector(FaultInjector::new(
            FaultPlan::new()
                .rule(FaultRule::new("chaosdb", Op::Execute, FaultKind::FailNTimes(k))),
        ));
        let res = space.install_resilience(Resilience::new(Policy {
            max_retries: r,
            ..Policy::default()
        }));

        let out = db.execute(vec![item_insert()]);
        let rows = db.row_count("ITEM").unwrap();
        prop_assert!(rows <= 1, "write applied {rows} times");
        if k <= r {
            prop_assert!(out.is_ok());
            prop_assert_eq!(rows, 1);
            prop_assert_eq!(res.lock().stats().retries, u64::from(k));
        } else {
            prop_assert_eq!(AldspCode::of(&out.unwrap_err()), Some(AldspCode::SrcTransient));
            prop_assert_eq!(rows, 0);
            prop_assert_eq!(res.lock().stats().retries, u64::from(r));
        }
    }

    /// Same property through the XA path: a flaky prepare on one 2PC
    /// participant either delays the commit (k <= r) or aborts the
    /// whole transaction — never a partial or duplicated apply.
    #[test]
    fn retry_never_double_applies_2pc_writes(k in 0u32..5, r in 0u32..5) {
        let db_a = Database::new("pa");
        db_a.create_table(item_schema()).unwrap();
        let db_b = Database::new("pb");
        db_b.create_table(item_schema()).unwrap();
        let space = DataSpace::new();
        space.register_relational_source(&db_a).unwrap();
        space.register_relational_source(&db_b).unwrap();
        space.install_fault_injector(FaultInjector::new(
            FaultPlan::new()
                .rule(FaultRule::new("pb", Op::Prepare, FaultKind::FailNTimes(k))),
        ));
        space.install_resilience(Resilience::new(Policy {
            max_retries: r,
            ..Policy::default()
        }));

        let outcome = TwoPhaseCoordinator::new(vec![
            (db_a.clone(), vec![item_insert()]),
            (db_b.clone(), vec![item_insert()]),
        ])
        .run();
        let (ra, rb) =
            (db_a.row_count("ITEM").unwrap(), db_b.row_count("ITEM").unwrap());
        prop_assert!(ra <= 1 && rb <= 1, "double apply: pa={ra} pb={rb}");
        prop_assert_eq!(ra, rb, "partial apply across participants");
        if k <= r {
            prop_assert!(matches!(outcome, TxOutcome::Committed));
            prop_assert_eq!(ra, 1);
        } else {
            match outcome {
                TxOutcome::Aborted(e) => {
                    prop_assert_eq!(AldspCode::of(&e), Some(AldspCode::SrcTransient))
                }
                other => prop_assert!(false, "expected abort, got {other:?}"),
            }
            prop_assert_eq!(ra, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// 8. Staleness matrix: versioned caches vs writes, aborts, and outages
// ---------------------------------------------------------------------------
//
// The optimizer memoizes two things across statements — per-source
// materialized XDM trees (keyed by table version) and join indexes
// (stamped with either a source version or the write epoch). These
// tests pin the staleness contract from every direction: committed
// writes invalidate, aborted 2PC transactions do NOT, and stale-read
// degradation keys derived caches on the *snapshot* version so a
// recovered source is never served from a stale tree.

/// A one-table "hr" space with the optimizer pinned ON (CI also runs
/// the whole suite under `XQSE_DISABLE_OPT=1`, so tests that assert
/// optimizer counters must not depend on the ambient default).
fn hr_space() -> (DataSpace, Database) {
    let db = Database::new("hr");
    db.create_table(employee_schema()).unwrap();
    db.insert("EMPLOYEE", vec![SqlValue::Int(1), SqlValue::Str("Ann".into())])
        .unwrap();
    let space = DataSpace::new();
    space.register_relational_source(&db).unwrap();
    space.engine().set_optimize(true);
    (space, db)
}

#[test]
fn committed_write_invalidates_materialized_read() {
    let (space, _db) = hr_space();
    let count = || {
        space
            .engine()
            .eval_expr_str("fn:count(ens:EMPLOYEE())", &[("ens", "ld:hr/EMPLOYEE")])
            .unwrap()
            .string_value()
            .unwrap()
    };
    space.engine().reset_opt_stats();
    assert_eq!(count(), "1"); // builds the XDM tree for version v1
    assert_eq!(count(), "1"); // version unchanged → tree reused
    let s = space.engine().opt_stats();
    assert_eq!((s.mat_misses, s.mat_hits), (1, 1));

    // A committed create bumps the table version …
    let create = QName::with_ns("ld:hr/EMPLOYEE", "createEMPLOYEE");
    let mut env = Env::new();
    space.xqse().call_procedure(&create, vec![emp(2, "Bob")], &mut env).unwrap();

    // … so the very next read rebuilds — cached trees can never mask
    // a committed write.
    assert_eq!(count(), "2", "committed create visible immediately");
    let s = space.engine().opt_stats();
    assert_eq!(s.mat_misses, 2, "version bump forced a rebuild");
    assert_eq!(count(), "2");
    assert_eq!(space.engine().opt_stats().mat_hits, 2);
}

#[test]
fn two_pc_abort_keeps_versions_and_materialized_trees_valid() {
    let d = demo::build(3, 1, 1).unwrap();
    d.space.engine().set_optimize(true);

    // Warm every read function's materialized tree.
    let warm = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    let last = warm.get_value(0, &["LAST_NAME"]).unwrap();
    let v_cust = d.db1.table_version("CUSTOMER").unwrap();
    let v_card = d.db2.table_version("CREDIT_CARD").unwrap();

    // A doomed distributed update: db2's prepare fails permanently.
    d.space.install_fault_injector(FaultInjector::new(
        FaultPlan::new().rule(FaultRule::new("db2", Op::Prepare, FaultKind::Permanent)),
    ));
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    g.set_value(0, &["LAST_NAME"], "Doomed").unwrap();
    g.set_value(0, &["CreditCards", "CREDIT_CARD", "BRAND"], "VOID").unwrap();
    let err = d.space.submit(&g).unwrap_err();
    assert_eq!(AldspCode::of(&err), Some(AldspCode::SrcUnavailable));

    // The abort advanced NO table version: versions count committed
    // transactions, and this one never committed.
    assert_eq!(d.db1.table_version("CUSTOMER").unwrap(), v_cust);
    assert_eq!(d.db2.table_version("CREDIT_CARD").unwrap(), v_card);

    // So once the source heals, reads still revalidate against the
    // same versions: zero rebuilds, and the data is pre-abort truth.
    d.space.install_fault_injector(FaultInjector::new(FaultPlan::new()));
    let s0 = d.space.engine().opt_stats();
    let g2 = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    assert_eq!(g2.get_value(0, &["LAST_NAME"]).unwrap(), last);
    let s = d.space.engine().opt_stats();
    assert!(s.mat_hits > s0.mat_hits, "re-read served the memoized trees");
    assert_eq!(s.mat_misses, s0.mat_misses, "the abort forced no rebuilds");
}

#[test]
fn stale_snapshot_keys_caches_while_breaker_open() {
    let (space, db) = hr_space();
    let res = space.install_resilience(Resilience::new(Policy {
        max_retries: 0,
        breaker_threshold: 2,
        breaker_cooldown_ms: 60_000,
        ..Policy::default()
    }));
    let names = || {
        space
            .engine()
            .eval_expr_str(
                "fn:string-join(for $e in ens:EMPLOYEE() return fn:string($e/Name), ',')",
                &[("ens", "ld:hr/EMPLOYEE")],
            )
            .unwrap()
            .string_value()
            .unwrap()
    };

    // Healthy warm read: materializes the tree for version v1 and
    // populates the source's scan snapshot.
    assert_eq!(names(), "Ann");
    let v1 = db.table_version("EMPLOYEE").unwrap();

    // A committed write bumps the live version past v1, but the last
    // *served* snapshot is still the v1 rows.
    db.execute(vec![WriteOp::Update {
        table: "EMPLOYEE".into(),
        set: vec![("Name".into(), SqlValue::Str("Zed".into()))],
        cond: vec![("EmployeeID".into(), SqlValue::Int(1))],
        expect_rows: 1,
    }])
    .unwrap();
    assert!(db.table_version("EMPLOYEE").unwrap() > v1);

    // Now the source goes down hard before anybody re-reads.
    space.engine().reset_opt_stats();
    space.install_fault_injector(FaultInjector::new(
        FaultPlan::new().rule(FaultRule::new("hr", Op::Scan, FaultKind::Permanent)),
    ));

    // Degraded reads serve the v1 snapshot — and because the snapshot
    // reports its OWN version (v1, never the live one), the v1-keyed
    // materialized tree revalidates and no rebuild happens at all.
    assert_eq!(names(), "Ann");
    assert_eq!(names(), "Ann"); // second failure trips the breaker
    {
        let r = res.lock();
        assert_eq!(r.breaker_state("hr"), BreakerState::Open);
        assert_eq!(r.stats().stale_reads, 2);
    }
    let s = space.engine().opt_stats();
    assert_eq!(s.mat_misses, 0, "stale snapshot revalidated the v1 tree");
    assert_eq!(s.mat_hits, 2);

    // Breaker open: the next read fails fast at admission and still
    // serves the stale tree.
    assert_eq!(names(), "Ann");
    {
        let r = res.lock();
        assert_eq!(r.stats().fast_failures, 1);
        assert_eq!(r.stats().stale_reads, 3);
    }
    assert_eq!(space.engine().opt_stats().mat_hits, 3);

    // The source heals and the breaker cools down. The half-open probe
    // succeeds, the scan reports the live version, and the v1-keyed
    // tree CANNOT be served — keying on the snapshot (not the live
    // version) is exactly what forces this rebuild.
    space.install_fault_injector(FaultInjector::new(FaultPlan::new()));
    res.lock().clock().advance(60_000);
    assert_eq!(names(), "Zed", "recovered read shows the committed write");
    assert_eq!(space.engine().opt_stats().mat_misses, 1, "recovery rebuilt");
}

// --------------------------------------------------- join-cache stamps

fn salaried_schema() -> TableSchema {
    TableSchema {
        name: "EMPLOYEE".into(),
        columns: vec![
            Column::required("EmployeeID", ColumnType::Integer),
            Column::required("Name", ColumnType::Varchar),
            // Decimal is deliberately NOT a pushable column class, so
            // `where $e/SALARY eq 50.5` exercises the memoized-join
            // path (with a source-version stamp) instead of pushdown.
            Column::required("SALARY", ColumnType::Decimal),
        ],
        primary_key: vec!["EmployeeID".into()],
        foreign_keys: vec![],
    }
}

fn audit_schema() -> TableSchema {
    TableSchema {
        name: "AUDIT".into(),
        columns: vec![
            Column::required("ID", ColumnType::Integer),
            Column::required("VAL", ColumnType::Varchar),
        ],
        primary_key: vec!["ID".into()],
        foreign_keys: vec![],
    }
}

/// An "hr" payroll table (8 rows at SALARY 50.5) plus an unrelated
/// "log" source for audit writes.
fn payroll_space() -> (DataSpace, Database, Database) {
    let hr = Database::new("hr");
    hr.create_table(salaried_schema()).unwrap();
    for i in 1..=8 {
        hr.insert(
            "EMPLOYEE",
            vec![
                SqlValue::Int(i),
                SqlValue::Str(format!("E{i}")),
                SqlValue::parse(ColumnType::Decimal, "50.5").unwrap(),
            ],
        )
        .unwrap();
    }
    let log = Database::new("log");
    log.create_table(audit_schema()).unwrap();
    let space = DataSpace::new();
    space.register_relational_source(&hr).unwrap();
    space.register_relational_source(&log).unwrap();
    (space, hr, log)
}

/// Four loop iterations, each: count the 50.5-salaried employees, then
/// write an audit row to the *other* source.
const PAYROLL_AUDIT_LOOP: &str = r#"
declare namespace ens = "ld:hr/EMPLOYEE";
declare namespace log = "ld:log/AUDIT";
{
  declare $i as xs:integer := 1;
  declare $total as xs:integer := 0;
  while ($i le 4) {
    set $total := $total +
      fn:count(for $e in ens:EMPLOYEE() where $e/SALARY eq 50.5 return $e);
    log:createAUDIT(<AUDIT><ID>{$i}</ID><VAL>x</VAL></AUDIT>);
    set $i := $i + 1;
  }
  return value $total;
}
"#;

#[test]
fn version_stamped_join_entries_survive_unrelated_writes() {
    // Optimizer on: the join index over hr/EMPLOYEE is stamped with
    // that table's version, so AUDIT writes (which only bump the write
    // epoch) leave it intact across all four statements.
    let (space, _hr, log) = payroll_space();
    space.engine().set_optimize(true);
    space.engine().reset_opt_stats();
    let out = space.xqse().run(PAYROLL_AUDIT_LOOP).unwrap();
    assert_eq!(out.string_value().unwrap(), "32");
    assert_eq!(log.row_count("AUDIT").unwrap(), 4);
    let s = space.engine().opt_stats();
    assert_eq!(s.pushdown_rewrites, 0, "Decimal key must defeat pushdown");
    assert_eq!(s.join_misses, 1, "index built exactly once");
    assert_eq!(s.join_hits, 3, "…and survived three unrelated AUDIT writes");
    assert_eq!(s.join_invalidations, 0);

    // Kill-switch baseline: with the optimizer off the entry is
    // epoch-stamped, so every AUDIT write kills it (the seed's blanket
    // any-write policy). Same answer, three extra rebuilds.
    let (space, _hr, _log) = payroll_space();
    space.engine().set_optimize(false);
    space.engine().reset_opt_stats();
    let out = space.xqse().run(PAYROLL_AUDIT_LOOP).unwrap();
    assert_eq!(out.string_value().unwrap(), "32");
    let s = space.engine().opt_stats();
    assert_eq!(s.join_misses, 4);
    assert_eq!(s.join_invalidations, 3);
    assert_eq!(s.join_hits, 0);
}

#[test]
fn join_entries_invalidate_when_their_source_is_written() {
    // Same loop shape, but each iteration writes hr/EMPLOYEE itself:
    // the version stamp must fail revalidation every time, and the
    // growing counts prove no stale index was ever served.
    const SELF_WRITE_LOOP: &str = r#"
declare namespace ens = "ld:hr/EMPLOYEE";
{
  declare $i as xs:integer := 1;
  declare $counts as xs:string* := ();
  while ($i le 4) {
    set $counts := ($counts, fn:string(fn:count(
      for $e in ens:EMPLOYEE() where $e/SALARY eq 50.5 return $e)));
    ens:createEMPLOYEE(<EMPLOYEE><EmployeeID>{100 + $i}</EmployeeID><Name>N</Name><SALARY>50.5</SALARY></EMPLOYEE>);
    set $i := $i + 1;
  }
  return value fn:string-join($counts, ",");
}
"#;
    let (space, hr, _log) = payroll_space();
    space.engine().set_optimize(true);
    space.engine().reset_opt_stats();
    let out = space.xqse().run(SELF_WRITE_LOOP).unwrap();
    assert_eq!(out.string_value().unwrap(), "8,9,10,11");
    assert_eq!(hr.row_count("EMPLOYEE").unwrap(), 12);
    let s = space.engine().opt_stats();
    assert_eq!(s.join_misses, 4, "every iteration saw a fresh version");
    assert_eq!(s.join_invalidations, 3);
    assert_eq!(s.join_hits, 0, "a hit here would have served stale rows");
}

// ------------------------------------------- cached vs uncached agree

/// Queries covering the three optimized read paths: full materialized
/// scan, pushable equality filter, and keyed lookup.
fn agreement_queries(id: i64, name: &str) -> Vec<String> {
    vec![
        "fn:string-join(for $e in ens:EMPLOYEE() order by $e/EmployeeID \
         return fn:concat($e/EmployeeID, '=', $e/Name), ',')"
            .to_string(),
        format!(
            "fn:count(for $e in ens:EMPLOYEE() where $e/Name eq '{name}' return $e)"
        ),
        format!("fn:string(ens:getByEmployeeID({id})/Name)"),
    ]
}

fn agreement_space() -> (DataSpace, Database) {
    let db = Database::new("hr");
    db.create_table(employee_schema()).unwrap();
    db.insert("EMPLOYEE", vec![SqlValue::Int(1), SqlValue::Str("seed".into())])
        .unwrap();
    let space = DataSpace::new();
    space.register_relational_source(&db).unwrap();
    (space, db)
}

fn eval_q(space: &DataSpace, q: &str) -> String {
    space
        .engine()
        .eval_expr_str(q, &[("ens", "ld:hr/EMPLOYEE")])
        .unwrap()
        .string_value()
        .unwrap()
}

fn call_proc(space: &DataSpace, proc_name: &str, arg: Sequence) {
    let mut env = Env::new();
    space
        .xqse()
        .call_procedure(&QName::with_ns("ld:hr/EMPLOYEE", proc_name), vec![arg], &mut env)
        .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Metamorphic property: an optimized space (pushdown + versioned
    /// caches) and an unoptimized one, fed the same random stream of
    /// keyed creates/updates/deletes, agree on every read after every
    /// mutation. Any missed invalidation, over-eager pushdown, or
    /// wrong version stamp shows up as a divergence.
    #[test]
    fn optimized_and_unoptimized_reads_agree(
        ops in collection::vec((0u8..3, 1i64..6, 0u8..4), 1..20)
    ) {
        let (opt, _odb) = agreement_space();
        opt.engine().set_optimize(true);
        let (plain, _pdb) = agreement_space();
        plain.engine().set_optimize(false);
        let mut model = std::collections::BTreeSet::new();
        model.insert(1i64);

        for (op, id, tag) in ops {
            let name = format!("n{tag}");
            match op {
                0 if !model.contains(&id) => {
                    call_proc(&opt, "createEMPLOYEE", emp(id, &name));
                    call_proc(&plain, "createEMPLOYEE", emp(id, &name));
                    model.insert(id);
                }
                1 if model.contains(&id) => {
                    call_proc(&opt, "updateEMPLOYEE", emp(id, &name));
                    call_proc(&plain, "updateEMPLOYEE", emp(id, &name));
                }
                2 if model.contains(&id) => {
                    call_proc(&opt, "deleteEMPLOYEE", emp(id, &name));
                    call_proc(&plain, "deleteEMPLOYEE", emp(id, &name));
                    model.remove(&id);
                }
                _ => {} // no-op: invalid against the current state
            }
            for q in agreement_queries(id, &name) {
                prop_assert_eq!(
                    eval_q(&opt, &q),
                    eval_q(&plain, &q),
                    "divergence on {:?} after op {} id {}",
                    q, op, id
                );
            }
        }
    }
}

// --------------------------------------------------- batched WS access

/// A flattened FLWOR whose inner for-clause calls the batchable
/// credit-rating service once per tuple — the evaluator flushes all
/// requests through one coalesced `call_many` at the iteration
/// boundary.
fn rating_batch_query(lo: i64, hi: i64) -> String {
    format!(
        "for $i in ({lo} to {hi}) \
         for $r in cre:getCreditRating(\
             <getCreditRating><lastName>L</lastName><ssn>{{$i}}</ssn>\
             </getCreditRating>) \
         return fn:string($r)"
    )
}

#[test]
fn breaker_opens_mid_batch_flight() {
    use xqse_repro::aldsp::ws::WebService;

    let space = DataSpace::new();
    space.register_web_service(WebService::credit_rating("urn:cr")).unwrap();
    let cre = [("cre", "ld:ws/CreditRating")];

    // Healthy warm-up: one batch of 3 requests, one coalesced flight.
    // Pin the layer on: CI re-runs this suite under the kill switches.
    space.engine().set_optimize(true);
    space.engine().set_batch(true);
    space.engine().reset_opt_stats();
    let warm = space.engine().eval_expr_str(&rating_batch_query(1, 3), &cre).unwrap();
    assert_eq!(warm.len(), 3);
    let s = space.engine().opt_stats();
    assert_eq!(s.ws_batches, 1, "3 tuples, one flight");
    assert_eq!(s.ws_issued, 3);

    // The service starts failing transiently; a tight breaker opens
    // *during* the retry sequence of a single batch flight.
    let res = space.install_resilience(Resilience::new(Policy {
        max_retries: 2,
        breaker_threshold: 2,
        breaker_cooldown_ms: 1_000,
        ..Policy::default()
    }));
    let inj = space.install_fault_injector(FaultInjector::new(
        FaultPlan::new().rule(FaultRule::new("CreditRating", Op::Call, FaultKind::Transient)),
    ));

    // Uncached requests: attempt 1 fails (failure #1), attempt 2 fails
    // (failure #2 -> breaker OPENS mid-batch), attempt 3 is rejected at
    // admission -> SRC_UNAVAILABLE; nothing cached, so the whole batch
    // errors.
    let err = space
        .engine()
        .eval_expr_str(&rating_batch_query(4, 6), &cre)
        .unwrap_err();
    assert_eq!(AldspCode::of(&err), Some(AldspCode::SrcUnavailable));
    {
        let r = res.lock();
        assert_eq!(r.breaker_state("CreditRating"), BreakerState::Open);
        assert_eq!(r.stats().retries, 2, "whole-batch retries, not per item");
        assert_eq!(r.stats().fast_failures, 1, "third attempt fast-failed");
        assert_eq!(r.stats().stale_reads, 0, "no cached fallback for new ssns");
    }

    // The injector saw exactly two *batch* flights of 3 requests — not
    // six per-item calls.
    {
        let mut inj = inj.lock();
        assert_eq!(inj.injected_count(), 2);
        assert!(inj.events().iter().all(|e| e.batch_size == Some(3)));
    }

    // Warm requests still answer during the outage: the read-through
    // response cache serves them before the breaker path is consulted.
    let cached = space.engine().eval_expr_str(&rating_batch_query(1, 3), &cre).unwrap();
    assert_eq!(
        cached.iter().map(|i| i.string_value()).collect::<Vec<_>>(),
        warm.iter().map(|i| i.string_value()).collect::<Vec<_>>()
    );
    assert_eq!(res.lock().stats().stale_reads, 0, "served as cache hits, not stale");

    // Heal + cooldown: the half-open probe batch succeeds, and a
    // second successful flight closes the breaker.
    space.install_fault_injector(FaultInjector::new(FaultPlan::new()));
    res.lock().clock().advance(1_000);
    assert_eq!(space.engine().eval_expr_str(&rating_batch_query(4, 6), &cre).unwrap().len(), 3);
    assert_eq!(res.lock().breaker_state("CreditRating"), BreakerState::HalfOpen);
    assert_eq!(space.engine().eval_expr_str(&rating_batch_query(7, 9), &cre).unwrap().len(), 3);
    assert_eq!(res.lock().breaker_state("CreditRating"), BreakerState::Closed);
}

// ---------------------------------------------------------------------------
// 10. Crash-consistent 2PC: coordinator journal + in-doubt recovery
// ---------------------------------------------------------------------------
//
// The journaled coordinator writes Begin/Prepared/CommitDecision/
// Committed records at every protocol point and is crash-injectable at
// each of them (FaultKind::CrashPoint on the Op::Xa* protocol ops). A
// crash unwinds WITHOUT cleanup — prepared branches keep their locks,
// committed branches keep their writes — and `DataSpace::recover()`
// replays the journal: presumed abort for in-doubt transactions,
// roll-forward for decided-but-incomplete ones, through idempotent
// `commit_branch`/`rollback_branch` so recovering twice ≡ once.

mod xa_recovery {
    use super::*;
    use xqse_repro::aldsp::decompose::{self, DecompositionPlan};
    use xqse_repro::aldsp::rel::TxId;
    use xqse_repro::aldsp::RecoveryStats;

    /// A two-source plan (one insert each) on a replicated space whose
    /// source names sort/iterate in plan order: "primary" then
    /// "backup".
    fn two_source_plan() -> DecompositionPlan {
        let ins = |_: &str| WriteOp::Insert {
            table: "EMPLOYEE".into(),
            row: vec![SqlValue::Int(1), SqlValue::Str("Ann".into())],
        };
        DecompositionPlan {
            per_source: vec![
                ("primary".into(), vec![ins("primary")]),
                ("backup".into(), vec![ins("backup")]),
            ],
        }
    }

    fn rows(db: &Database) -> usize {
        db.row_count("EMPLOYEE").unwrap()
    }

    /// Every xid the journal knows, for lock assertions.
    fn journal_xids(space: &DataSpace) -> Vec<u64> {
        space.journal().scan().keys().copied().collect()
    }

    fn any_prepared(space: &DataSpace, dbs: &[&Database]) -> bool {
        journal_xids(space)
            .iter()
            .any(|&xid| dbs.iter().any(|db| db.is_prepared(TxId(xid))))
    }

    /// The acceptance-criteria matrix: crash the coordinator at every
    /// protocol point of a two-source transaction, observe the
    /// divergent/partial state the crash left, then assert recovery
    /// restores the atomicity invariant with exactly the expected
    /// counters — and that a second pass is a no-op.
    #[test]
    fn xa_crash_at_every_protocol_point_recovers_atomically() {
        // (source, op, decided, expected RecoveryStats)
        let matrix: &[(&str, Op, bool, RecoveryStats)] = &[
            // Pre-decision crashes: presumed abort. Branch rollbacks
            // count only for branches that actually prepared; the rest
            // are idempotent no-ops (replays_skipped).
            ("coordinator", Op::XaBegin, false, RecoveryStats {
                in_doubt_found: 1, rolled_forward: 0, rolled_back: 0, replays_skipped: 2,
            }),
            ("primary", Op::XaPrepared, false, RecoveryStats {
                in_doubt_found: 1, rolled_forward: 0, rolled_back: 1, replays_skipped: 1,
            }),
            ("backup", Op::XaPrepared, false, RecoveryStats {
                in_doubt_found: 1, rolled_forward: 0, rolled_back: 2, replays_skipped: 0,
            }),
            // Post-decision crashes: roll forward. A branch that
            // committed before the crash but lost its Committed record
            // replays as a skip (commit_branch finds nothing prepared).
            ("coordinator", Op::XaDecide, true, RecoveryStats {
                in_doubt_found: 0, rolled_forward: 2, rolled_back: 0, replays_skipped: 0,
            }),
            ("primary", Op::XaCommit, true, RecoveryStats {
                in_doubt_found: 0, rolled_forward: 1, rolled_back: 0, replays_skipped: 1,
            }),
            ("backup", Op::XaCommit, true, RecoveryStats {
                in_doubt_found: 0, rolled_forward: 0, rolled_back: 0, replays_skipped: 1,
            }),
        ];

        for (source, op, decided, expected) in matrix {
            let (space, primary, backup) = replicated_space();
            space.install_fault_injector(FaultInjector::new(FaultPlan::new().rule(
                FaultRule::new(*source, *op, FaultKind::CrashPoint),
            )));

            let err = decompose::execute(&space, two_source_plan())
                .expect_err("coordinator must crash");
            assert_eq!(
                AldspCode::of(&err),
                Some(AldspCode::XaCoordCrash),
                "crash at {source}/{op}"
            );

            // Before recovery the sources are in a genuinely partial
            // state: locks held with no decision, or divergent rows.
            match (source, op) {
                (_, Op::XaPrepared) | (_, Op::XaDecide) => {
                    assert!(
                        any_prepared(&space, &[&primary, &backup]),
                        "{source}/{op}: prepared locks must still be held"
                    );
                    assert_eq!((rows(&primary), rows(&backup)), (0, 0));
                }
                (_, Op::XaCommit) if *source == "primary" => {
                    assert_ne!(
                        rows(&primary),
                        rows(&backup),
                        "crash between per-source commits must leave divergent state"
                    );
                    assert!(any_prepared(&space, &[&backup]), "backup still locked");
                }
                _ => {}
            }
            assert!(!space.journal().is_clean(), "{source}/{op}: tx unresolved");

            // Recovery restores the atomicity invariant…
            let stats = space.recover().unwrap();
            assert_eq!(stats, *expected, "stats for crash at {source}/{op}");
            let want = if *decided { 1 } else { 0 };
            assert_eq!(
                (rows(&primary), rows(&backup)),
                (want, want),
                "atomicity after recovery from crash at {source}/{op}"
            );
            assert!(!any_prepared(&space, &[&primary, &backup]), "locks released");
            assert!(space.journal().is_clean(), "journal resolved");

            // …and is idempotent: a second pass finds nothing.
            let again = space.recover().unwrap();
            assert!(again.is_noop(), "second recover() must be a no-op, got {again:?}");
            assert_eq!((rows(&primary), rows(&backup)), (want, want));
        }
    }

    /// `recover()` on a clean journal is a no-op — both on a fresh
    /// space (empty journal) and after a successful multi-source
    /// commit (fully-resolved journal).
    #[test]
    fn xa_recover_is_noop_on_clean_journal() {
        let (space, primary, backup) = replicated_space();
        assert!(space.recover().unwrap().is_noop(), "empty journal");

        decompose::execute(&space, two_source_plan()).unwrap();
        assert_eq!((rows(&primary), rows(&backup)), (1, 1));
        assert!(!space.journal().is_empty(), "happy path was journaled");
        assert!(space.journal().is_clean());
        assert!(space.recover().unwrap().is_noop(), "resolved journal");

        // Recovery totals reach the engine's explain counters.
        let s = space.engine().opt_stats();
        assert_eq!(s.xa_recovery_runs, 2);
        assert_eq!(s.xa_in_doubt + s.xa_rolled_forward + s.xa_rolled_back, 0);
    }

    /// The crash error is XQSE-catchable by exact name, so an atomic
    /// block can observe an in-doubt outcome and route to recovery.
    #[test]
    fn xa_coord_crash_is_xqse_catchable() {
        let (space, primary, backup) = replicated_space();
        let inj = space.install_fault_injector(FaultInjector::new(FaultPlan::new().rule(
            FaultRule::new("primary", Op::XaCommit, FaultKind::CrashPoint),
        )));

        // A native procedure driving the journaled coordinator — the
        // stand-in for a logical service's multi-source submit.
        let journal = space.journal();
        let (pa, pb) = (primary.clone(), backup.clone());
        space.engine().register_external_procedure(
            QName::with_ns("urn:test", "doomedSubmit"),
            0,
            false,
            std::rc::Rc::new(move |_env, _args| {
                let ins = WriteOp::Insert {
                    table: "EMPLOYEE".into(),
                    row: vec![SqlValue::Int(9), SqlValue::Str("Zed".into())],
                };
                TwoPhaseCoordinator::new(vec![
                    (pa.clone(), vec![ins.clone()]),
                    (pb.clone(), vec![ins]),
                ])
                .run_journaled(&journal, Some(&inj))?;
                Ok(Sequence::empty())
            }),
        );

        let caught = space
            .xqse()
            .run(
                r#"
                declare namespace t = "urn:test";
                declare namespace aldsp = "urn:aldsp:errors";
                {
                  declare $out as xs:string := "clean";
                  try { t:doomedSubmit(); }
                  catch (aldsp:XA_COORD_CRASH into $err, $msg) {
                    set $out := fn:concat("in-doubt: ", $msg);
                  };
                  return value $out;
                }
                "#,
            )
            .unwrap();
        assert!(
            caught.string_value().unwrap().starts_with("in-doubt:"),
            "exact-name catch must match aldsp:XA_COORD_CRASH"
        );

        // The block observed the in-doubt outcome; recovery resolves it.
        assert_ne!(rows(&primary), rows(&backup), "divergent until recovery");
        let stats = space.recover().unwrap();
        assert_eq!(stats.rolled_forward, 1, "backup commit replayed");
        assert_eq!((rows(&primary), rows(&backup)), (1, 1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Randomized crash-point × fault-plan matrix. Whatever
        /// happens — a crash at any protocol point, a flaky prepare
        /// that aborts or retries through, or both racing — after
        /// recovery every source is fully pre-image or fully
        /// post-image (and all sources agree), and recover() twice is
        /// recover() once.
        #[test]
        fn xa_recovery_is_idempotent_and_atomic(
            point in 0usize..6,
            k in 0u32..3,
            r in 0u32..3,
            flaky_idx in 0usize..2,
        ) {
            let flaky_source = ["primary", "backup"][flaky_idx];
            let points = [
                ("coordinator", Op::XaBegin),
                ("primary", Op::XaPrepared),
                ("backup", Op::XaPrepared),
                ("coordinator", Op::XaDecide),
                ("primary", Op::XaCommit),
                ("backup", Op::XaCommit),
            ];
            let (crash_source, crash_op) = points[point];
            let (space, primary, backup) = replicated_space();
            space.install_fault_injector(FaultInjector::new(
                FaultPlan::new()
                    .rule(FaultRule::new(
                        flaky_source,
                        Op::Prepare,
                        FaultKind::FailNTimes(k),
                    ))
                    .rule(FaultRule::new(crash_source, crash_op, FaultKind::CrashPoint)),
            ));
            space.install_resilience(Resilience::new(Policy {
                max_retries: r,
                ..Policy::default()
            }));

            // The submit may commit, abort tidily, or crash — all are
            // legal; the invariants below must hold regardless.
            let _ = decompose::execute(&space, two_source_plan());

            let first = space.recover().unwrap();
            let (ra, rb) = (rows(&primary), rows(&backup));
            prop_assert!(ra <= 1 && rb <= 1, "double apply: {ra}/{rb}");
            prop_assert_eq!(
                ra, rb,
                "partial apply after recovery (crash at {}/{}, k={}, r={})",
                crash_source, crash_op, k, r
            );
            prop_assert!(
                !any_prepared(&space, &[&primary, &backup]),
                "prepared locks survived recovery"
            );
            prop_assert!(space.journal().is_clean());

            // Idempotency: the second pass finds nothing to do and
            // changes nothing.
            let second = space.recover().unwrap();
            prop_assert!(
                second.is_noop(),
                "recover() not idempotent: first={:?} second={:?}", first, second
            );
            prop_assert_eq!((rows(&primary), rows(&backup)), (ra, rb));
        }
    }

    /// Journal overhead guard for the no-fault path: the journaled
    /// coordinator must stay within 5% of the unjournaled one.
    /// Ignored by default (wall-clock measurement); the fourth
    /// `scripts/check.sh` arm runs it warn-only.
    #[test]
    #[ignore = "wall-clock guard; run via scripts/check.sh arm 4"]
    fn xa_journal_overhead_guard_under_5pct() {
        use std::time::Instant;

        const SEED_ROWS: i64 = 512;
        const ITERS: i64 = 1500;
        let run = |journaled: bool| -> f64 {
            // Model what a decomposed submit actually executes per
            // source: a conditioned OCC UPDATE against a populated
            // table — not a bare one-row insert, whose cost would be
            // dwarfed by any fixed per-transaction bookkeeping.
            let (space, primary, backup) = replicated_space();
            for db in [&primary, &backup] {
                for i in 0..SEED_ROWS {
                    db.insert(
                        "EMPLOYEE",
                        vec![SqlValue::Int(i), SqlValue::Str("x".into())],
                    )
                    .unwrap();
                }
            }
            let journal = space.journal();
            let start = Instant::now();
            for i in 0..ITERS {
                let upd = || WriteOp::Update {
                    table: "EMPLOYEE".into(),
                    set: vec![("Name".into(), SqlValue::Str(format!("n{i}")))],
                    cond: vec![("EmployeeID".into(), SqlValue::Int(i % SEED_ROWS))],
                    expect_rows: 1,
                };
                let coord = TwoPhaseCoordinator::new(vec![
                    (primary.clone(), vec![upd()]),
                    (backup.clone(), vec![upd()]),
                ]);
                if journaled {
                    assert!(matches!(
                        coord.run_journaled(&journal, None).unwrap(),
                        TxOutcome::Committed
                    ));
                } else {
                    assert!(matches!(coord.run(), TxOutcome::Committed));
                }
            }
            start.elapsed().as_secs_f64()
        };

        // Warm up once, then take the best of 3 for each arm to damp
        // scheduler noise.
        let _ = (run(false), run(true));
        let plain = (0..3).map(|_| run(false)).fold(f64::MAX, f64::min);
        let journaled = (0..3).map(|_| run(true)).fold(f64::MAX, f64::min);
        let overhead = (journaled - plain) / plain * 100.0;
        println!(
            "xa journal overhead: plain={plain:.4}s journaled={journaled:.4}s \
             overhead={overhead:.2}%"
        );
        assert!(
            overhead < 5.0,
            "journal overhead {overhead:.2}% exceeds the 5% budget \
             (plain={plain:.4}s journaled={journaled:.4}s)"
        );
    }
}

// ---------------------------------------------------------------------------
// Serving pool: concurrency chaos (PR 7)
// ---------------------------------------------------------------------------

mod serve {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    use super::*;
    use xqse_repro::aldsp::pool::{drive_closed_loop, ServeArg, ServePool, ServeRequest, ServeSpec};
    use xqse_repro::aldsp::{Injected, WebService};

    fn one_col_schema(name: &str) -> TableSchema {
        TableSchema {
            name: name.into(),
            columns: vec![Column::required("ID", ColumnType::Integer)],
            primary_key: vec!["ID".into()],
            foreign_keys: vec![],
        }
    }

    /// Regression test for the canonical shard-lock order: two workers
    /// hammer 2PC transactions over the *same pair* of tables, one
    /// declaring its writes `[BETA, ALPHA]` and the other `[ALPHA,
    /// BETA]`. If prepare/commit locked table shards in declaration
    /// order this deadlocks within a few iterations; with the
    /// canonical sorted-name order it must always finish. A watchdog
    /// turns a deadlock into a failure instead of a hang.
    #[test]
    fn serve_lock_order_opposite_submit_order_no_deadlock() {
        const ITERS: i64 = 150;
        let db = Database::new("lk");
        db.create_table(one_col_schema("ALPHA")).unwrap();
        db.create_table(one_col_schema("BETA")).unwrap();

        let (done_tx, done_rx) = std::sync::mpsc::channel::<usize>();
        for worker in 0..2usize {
            let db = db.clone();
            let done_tx = done_tx.clone();
            std::thread::spawn(move || {
                for i in 0..ITERS {
                    let id = worker as i64 * 10_000 + i;
                    let ins = |table: &str| WriteOp::Insert {
                        table: table.into(),
                        row: vec![SqlValue::Int(id)],
                    };
                    let mut ops = vec![ins("ALPHA"), ins("BETA")];
                    if worker == 1 {
                        ops.reverse();
                    }
                    let coord = TwoPhaseCoordinator::new(vec![(db.clone(), ops)]);
                    assert!(matches!(coord.run(), TxOutcome::Committed));
                }
                done_tx.send(worker).unwrap();
            });
        }
        drop(done_tx);
        for _ in 0..2 {
            done_rx
                .recv_timeout(Duration::from_secs(60))
                .expect("deadlock: opposite-declaration-order 2PC never finished");
        }
        assert_eq!(db.row_count("ALPHA").unwrap(), 2 * ITERS as usize);
        assert_eq!(db.row_count("BETA").unwrap(), 2 * ITERS as usize);
    }

    fn get_req(cid: usize) -> ServeRequest {
        ServeRequest::Get {
            service: "CustomerProfile".into(),
            method: "getProfileById".into(),
            args: vec![ServeArg::Str(cid.to_string())],
        }
    }

    fn submit_req(cid: usize, sets: Vec<(usize, Vec<String>, String)>) -> ServeRequest {
        ServeRequest::Submit {
            service: "CustomerProfile".into(),
            method: "getProfileById".into(),
            args: vec![ServeArg::Str(cid.to_string())],
            sets,
        }
    }

    fn xa_sets(marker: &str) -> Vec<(usize, Vec<String>, String)> {
        vec![
            (0, vec!["LAST_NAME".into()], marker.to_string()),
            (
                0,
                vec!["CreditCards".into(), "CREDIT_CARD".into(), "BRAND".into()],
                marker.to_string(),
            ),
        ]
    }

    /// The concurrency soak: 4 workers serve a mixed read / write / XA
    /// workload while a fault plan injects source timeouts, trips the
    /// web-service breaker, and crashes the 2PC coordinator once at
    /// the decision point. Invariants checked:
    ///
    /// * per-table version counters stay monotonic under concurrency
    ///   (sampled continuously from a side thread),
    /// * injected faults record *which worker* hit them,
    /// * the breaker actually tripped (a `Closed -> Open` transition),
    /// * after recovery every XA marker is in **both** sources or in
    ///   neither, the journal is clean, and a second recovery pass is
    ///   a no-op.
    #[test]
    fn serve_soak_mixed_workload_under_faults() {
        const CUSTOMERS: usize = 12;
        let d = demo::build(CUSTOMERS, 1, 1).unwrap();
        let injector = d.space.install_fault_injector(FaultInjector::new(
            FaultPlan::new()
                .rule(FaultRule::new("db1", Op::Execute, FaultKind::Timeout).times(2))
                .rule(FaultRule::new("CreditRating", Op::Call, FaultKind::Transient).times(5))
                .rule(FaultRule::new("coordinator", Op::XaDecide, FaultKind::CrashPoint)),
        ));
        let resilience = d.space.install_resilience(Resilience::new(Policy {
            max_retries: 2,
            base_backoff_ms: 10,
            breaker_threshold: 3,
            breaker_cooldown_ms: 10,
            half_open_successes: 1,
            ..Policy::default()
        }));
        let access = d.space.access();
        let journal = d.space.journal();
        let (db1, db2) = (d.db1.clone(), d.db2.clone());

        // Version monotonicity sampler: reads the live per-table
        // version counters while the pool is serving. table_version()
        // bypasses Access, so sampling is invisible to the fault plan.
        let done = Arc::new(AtomicBool::new(false));
        let sampler = {
            let (db1, db2, done) = (db1.clone(), db2.clone(), done.clone());
            std::thread::spawn(move || {
                let (mut v1, mut v2) = (0u64, 0u64);
                while !done.load(Ordering::Relaxed) {
                    let n1 = db1.table_version("CUSTOMER").unwrap();
                    let n2 = db2.table_version("CREDIT_CARD").unwrap();
                    assert!(n1 >= v1, "CUSTOMER version went backwards: {v1} -> {n1}");
                    assert!(n2 >= v2, "CREDIT_CARD version went backwards: {v2} -> {n2}");
                    (v1, v2) = (n1, n2);
                    std::thread::sleep(Duration::from_micros(200));
                }
            })
        };

        let pool = {
            let (db1, db2) = (db1.clone(), db2.clone());
            let (access, journal) = (access.clone(), journal.clone());
            ServePool::start(ServeSpec::new(4), move |_worker| {
                let space =
                    demo::assemble(&db1, &db2, WebService::credit_rating(demo::CREDIT_TYPES_NS))?;
                space.install_access(access.clone());
                space.set_journal(journal.clone());
                Ok(space)
            })
        };

        // Mixed workload. Cids are disjoint per phase so concurrent
        // submits never contend on a row: single-source writes touch
        // 1..=4, XA (two-source) submits touch 7..=10.
        let mut reqs: Vec<ServeRequest> = Vec::new();
        reqs.extend((1..=CUSTOMERS).map(get_req)); // warm every worker
        reqs.extend(
            (1..=4).map(|c| submit_req(c, vec![(0, vec!["FIRST_NAME".into()], format!("W-{c}"))])),
        );
        reqs.extend((1..=8).map(get_req));
        reqs.extend((7..=10).map(|c| submit_req(c, xa_sets(&format!("XA-{c}")))));
        reqs.extend((5..=10).map(get_req));

        let (replies, _elapsed) = drive_closed_loop(&pool, &reqs, 8);
        let report = pool.shutdown();
        done.store(true, Ordering::Relaxed);
        sampler.join().expect("version sampler observed a regression");

        assert!(report.init_errors.iter().all(Option::is_none), "{:?}", report.init_errors);
        assert_eq!(report.served.iter().sum::<u64>() as usize, reqs.len());
        let oks = replies.iter().filter(|r| r.result.is_ok()).count();
        assert!(oks >= reqs.len() / 2, "only {oks}/{} requests survived the fault plan", reqs.len());

        // Fault events carry the serving worker's identity.
        let events = injector.lock().events().to_vec();
        assert!(!events.is_empty(), "fault plan never fired");
        assert!(
            events.iter().any(|e| e.worker.is_some()),
            "no event recorded a pool worker id: {events:?}"
        );
        assert!(events.iter().any(|e| e.source == "db1"), "db1 write timeouts never fired");

        // The web-service breaker tripped at least once.
        assert!(
            resilience
                .lock()
                .transitions()
                .iter()
                .any(|t| t.source == "CreditRating"
                    && t.from == BreakerState::Closed
                    && t.to == BreakerState::Open),
            "CreditRating breaker never opened: {:?}",
            resilience.lock().transitions()
        );

        // The coordinator crash: normally one of the pooled XA submits
        // hits it. If the chaos happened to fail every pooled XA
        // submit *before* the decision point, drive one from here so
        // the recovery half of the test stays meaningful — the
        // CrashPoint budget is still armed in the shared injector.
        let crashed_in_pool =
            events.iter().any(|e| matches!(e.injected, Injected::Crash));
        if !crashed_in_pool {
            let g = d
                .space
                .get("CustomerProfile", "getProfileById", vec![Sequence::one(Item::string("7"))])
                .unwrap();
            g.set_value(0, &["LAST_NAME"], "XA-7").unwrap();
            g.set_value(0, &["CreditCards", "CREDIT_CARD", "BRAND"], "XA-7").unwrap();
            let err = d.space.submit(&g).unwrap_err();
            assert_eq!(AldspCode::of(&err), Some(AldspCode::XaCoordCrash));
        }
        assert!(!journal.is_clean(), "coordinator crash left no in-flight journal entry");

        // Recovery from a *fresh* coordinator over the shared journal,
        // exactly as a restarted middle tier would run it.
        let space2 =
            demo::assemble(&db1, &db2, WebService::credit_rating(demo::CREDIT_TYPES_NS)).unwrap();
        space2.set_journal(journal.clone());
        let stats = space2.recover().unwrap();
        assert!(
            stats.rolled_forward + stats.rolled_back >= 1,
            "recovery resolved nothing: {stats:?}"
        );
        assert!(journal.is_clean(), "journal still dirty after recovery");

        // Post-recovery atomicity: each XA marker is in both sources
        // or in neither.
        for cid in 7..=10 {
            let marker = format!("XA-{cid}");
            let cond = vec![("CID".to_string(), SqlValue::Int(cid as i64))];
            let cust = db1.select("CUSTOMER", &cond).unwrap();
            let card = db2.select("CREDIT_CARD", &cond).unwrap();
            let in_db1 = cust.iter().any(|r| r[2] == SqlValue::Str(marker.clone()));
            let in_db2 = card.iter().any(|r| r[3] == SqlValue::Str(marker.clone()));
            assert_eq!(
                in_db1, in_db2,
                "XA marker {marker} applied to one source only (db1={in_db1} db2={in_db2})"
            );
        }

        // Recovery is idempotent.
        let again = space2.recover().unwrap();
        assert_eq!((again.rolled_forward, again.rolled_back, again.in_doubt_found), (0, 0, 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// For read-only workloads the pool is semantically invisible:
        /// N workers over shard-locked shared sources return
        /// byte-identical results to the single-threaded engine, for
        /// any request mix and any worker count.
        #[test]
        fn serve_read_only_results_match_sequential(
            cids in proptest::collection::vec(1usize..=6, 1..10),
            workers in 1usize..=3,
        ) {
            let d = demo::build(6, 1, 1).unwrap();
            let expected: Vec<String> = cids
                .iter()
                .map(|cid| {
                    let g = d
                        .space
                        .get(
                            "CustomerProfile",
                            "getProfileById",
                            vec![Sequence::one(Item::string(cid.to_string()))],
                        )
                        .unwrap();
                    xqse_repro::xmlparse::serialize_sequence(g.instances())
                })
                .collect();

            let (db1, db2) = (d.db1.clone(), d.db2.clone());
            let pool = ServePool::start(ServeSpec::new(workers), move |_| {
                demo::assemble(&db1, &db2, WebService::credit_rating(demo::CREDIT_TYPES_NS))
            });
            let reqs: Vec<ServeRequest> = cids.iter().copied().map(get_req).collect();
            let (replies, _) = drive_closed_loop(&pool, &reqs, 2);
            pool.shutdown();

            for (reply, want) in replies.iter().zip(&expected) {
                let got = reply.result.as_ref().expect("pooled read failed");
                prop_assert_eq!(got, want);
            }
        }
    }
}
