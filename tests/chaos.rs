//! Chaos tests: deterministic fault plans driven through the paper's
//! use cases.
//!
//! Every test writes a [`FaultPlan`], installs it on a `DataSpace`,
//! and asserts *exact* outcomes — which calls failed, what error code
//! surfaced, how many retries happened, and (critically) that 2PC
//! left no partial writes behind. All latency is virtual-clock time;
//! nothing here sleeps.

use proptest::prelude::*;

use xqse_repro::aldsp::demo;
use xqse_repro::aldsp::rel::{
    Column, ColumnType, Database, SqlValue, TableSchema, TwoPhaseCoordinator, TxOutcome,
    WriteOp,
};
use xqse_repro::aldsp::service::DataSpace;
use xqse_repro::aldsp::{
    AldspCode, BreakerState, FaultInjector, FaultKind, FaultPlan, FaultRule, Op, Policy,
    Resilience,
};
use xqse_repro::xdm::qname::QName;
use xqse_repro::xdm::sequence::{Item, Sequence};
use xqse_repro::xqeval::Env;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

fn employee_schema() -> TableSchema {
    TableSchema {
        name: "EMPLOYEE".into(),
        columns: vec![
            Column::required("EmployeeID", ColumnType::Integer),
            Column::required("Name", ColumnType::Varchar),
        ],
        primary_key: vec!["EmployeeID".into()],
        foreign_keys: vec![],
    }
}

/// Use-case-4 topology: a logical service replicating creates over a
/// primary and a backup relational source.
fn replicated_space() -> (DataSpace, Database, Database) {
    let primary = Database::new("primary");
    primary.create_table(employee_schema()).unwrap();
    let backup = Database::new("backup");
    backup.create_table(employee_schema()).unwrap();
    let space = DataSpace::new();
    space.register_relational_source(&primary).unwrap();
    space.register_relational_source(&backup).unwrap();
    (space, primary, backup)
}

fn emp(id: i64, name: &str) -> Sequence {
    let xml =
        format!("<EMPLOYEE><EmployeeID>{id}</EmployeeID><Name>{name}</Name></EMPLOYEE>");
    let doc = xqse_repro::xmlparse::parse(&xml).unwrap();
    Sequence::one(Item::Node(doc.children()[0].clone()))
}

/// Read one cell straight out of a database (bypassing every cache),
/// so atomicity assertions see the source of truth.
fn cell(db: &Database, table: &str, col: &str, row_idx: usize) -> String {
    let schema = db.schema(table).unwrap();
    let i = schema.col_index(col).unwrap();
    db.scan(table).unwrap()[row_idx][i].lexical()
}

/// The paper's Use Case 4 replicating create (§III.D.4), verbatim
/// shape: create on primary, then on backup, wrapping failures in
/// application-level error codes.
const REPLICATING_CREATE: &str = r#"
declare namespace tns = "ld:ReplicatedEmployees";
declare namespace p = "ld:primary/EMPLOYEE";
declare namespace b = "ld:backup/EMPLOYEE";

declare procedure tns:create($newEmps as element(EMPLOYEE)*)
  as element(EMPLOYEE_KEY)*
{
  declare $keys as element(EMPLOYEE_KEY)* := ();
  iterate $newEmp over $newEmps {
    declare $key as element(EMPLOYEE_KEY)?;
    try { set $key := p:createEMPLOYEE($newEmp); }
    catch (* into $err, $msg) {
      fn:error(xs:QName("PRIMARY_CREATE_FAILURE"),
        fn:concat("Primary create failed due to: ", $err, " ", $msg));
    };
    try { b:createEMPLOYEE($newEmp); }
    catch (* into $err, $msg) {
      fn:error(xs:QName("SECONDARY_CREATE_FAILURE"),
        fn:concat("Backup create failed due to: ", $err, " ", $msg));
    };
    set $keys := ($keys, $key);
  }
  return value $keys;
};
"#;

/// A hardened variant: catches *only* `aldsp:SRC_UNAVAILABLE` from the
/// backup create, compensates by deleting the already-created primary
/// row, and re-raises an application code. Any other failure class
/// propagates untouched.
const COMPENSATING_CREATE: &str = r#"
declare namespace tns = "ld:SafeReplicate";
declare namespace p = "ld:primary/EMPLOYEE";
declare namespace b = "ld:backup/EMPLOYEE";
declare namespace aldsp = "urn:aldsp:errors";

declare procedure tns:create($newEmp as element(EMPLOYEE))
  as element(EMPLOYEE_KEY)*
{
  declare $key as element(EMPLOYEE_KEY)?;
  set $key := p:createEMPLOYEE($newEmp);
  try { b:createEMPLOYEE($newEmp); }
  catch (aldsp:SRC_UNAVAILABLE into $err, $msg) {
    p:deleteEMPLOYEE($newEmp);
    fn:error(xs:QName("REPLICA_DOWN"),
      fn:concat("backup source down; compensated primary create: ", $msg));
  };
  return value $key;
};
"#;

/// Namespace-qualified wildcard: `aldsp:*` means "any infrastructure
/// fault" and deliberately does NOT swallow logical `err:DSP000x`
/// errors.
const DEGRADING_CREATE: &str = r#"
declare namespace tns = "ld:Fallback";
declare namespace b = "ld:backup/EMPLOYEE";
declare namespace aldsp = "urn:aldsp:errors";

declare procedure tns:robustCreate($newEmp as element(EMPLOYEE)) as xs:string
{
  declare $status as xs:string := "replicated";
  try { b:createEMPLOYEE($newEmp); }
  catch (aldsp:* into $err, $msg) { set $status := "degraded"; };
  return value $status;
};
"#;

// ---------------------------------------------------------------------------
// 1. Transient blips below the retry budget are invisible
// ---------------------------------------------------------------------------

#[test]
fn transient_blip_is_invisible_to_replicating_create() {
    let (space, primary, backup) = replicated_space();
    space.xqse().load(REPLICATING_CREATE).unwrap();
    let inj = space.install_fault_injector(FaultInjector::new(
        FaultPlan::new()
            .rule(FaultRule::new("primary", Op::Execute, FaultKind::FailNTimes(2))),
    ));
    let res = space.install_resilience(Resilience::new(Policy::default()));

    let create = QName::with_ns("ld:ReplicatedEmployees", "create");
    let batch = emp(1, "Ann").concat(emp(2, "Bob")).concat(emp(3, "Cid"));
    let mut env = Env::new();
    let keys = space.xqse().call_procedure(&create, vec![batch], &mut env).unwrap();

    // The script never saw the two injected transients.
    assert_eq!(keys.len(), 3);
    assert_eq!(primary.row_count("EMPLOYEE").unwrap(), 3);
    assert_eq!(backup.row_count("EMPLOYEE").unwrap(), 3);
    assert_eq!(inj.lock().injected_count(), 2);
    let r = res.lock();
    assert_eq!(r.stats().retries, 2);
    // Exponential backoff on the virtual clock: 10ms + 20ms.
    assert_eq!(r.clock().now_ms(), 30);
    assert_eq!(r.breaker_state("primary"), BreakerState::Closed);
}

// ---------------------------------------------------------------------------
// 2. Permanent faults abort the distributed update atomically
// ---------------------------------------------------------------------------

#[test]
fn permanent_fault_aborts_distributed_update_atomically() {
    let d = demo::build(2, 1, 1).unwrap();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    // One fault: db2's XA prepare fails once, permanently-flavored.
    d.space.install_fault_injector(FaultInjector::new(
        FaultPlan::new()
            .rule(FaultRule::new("db2", Op::Prepare, FaultKind::Permanent).times(1)),
    ));

    // Touch both sources so the submit must run 2PC.
    g.set_value(0, &["LAST_NAME"], "Chaos").unwrap();
    g.set_value(0, &["CreditCards", "CREDIT_CARD", "BRAND"], "AMEX").unwrap();
    let err = d.space.submit(&g).unwrap_err();
    assert_eq!(AldspCode::of(&err), Some(AldspCode::SrcUnavailable));

    // Atomicity: NEITHER source shows a partial write.
    assert_eq!(cell(&d.db1, "CUSTOMER", "LAST_NAME", 0), "Carey");
    assert_eq!(cell(&d.db2, "CREDIT_CARD", "CC_BRAND", 0), "MASTERCHARGE");

    // The abort rolled back cleanly: prepared-row locks were released,
    // so the very same graph submits successfully once the fault
    // budget is spent.
    d.space.submit(&g).unwrap();
    assert_eq!(cell(&d.db1, "CUSTOMER", "LAST_NAME", 0), "Chaos");
    assert_eq!(cell(&d.db2, "CREDIT_CARD", "CC_BRAND", 0), "AMEX");
}

// ---------------------------------------------------------------------------
// 3. A transient prepare inside 2PC is retried to success
// ---------------------------------------------------------------------------

#[test]
fn transient_prepare_inside_2pc_is_retried_to_success() {
    let d = demo::build(2, 1, 1).unwrap();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    let inj = d.space.install_fault_injector(FaultInjector::new(
        FaultPlan::new()
            .rule(FaultRule::new("db2", Op::Prepare, FaultKind::FailNTimes(1))),
    ));
    let res = d.space.install_resilience(Resilience::new(Policy::default()));

    g.set_value(0, &["LAST_NAME"], "Retry").unwrap();
    g.set_value(0, &["CreditCards", "CREDIT_CARD", "BRAND"], "DINERS").unwrap();
    d.space.submit(&g).unwrap();

    // Applied exactly once, after exactly one retry.
    assert_eq!(cell(&d.db1, "CUSTOMER", "LAST_NAME", 0), "Retry");
    assert_eq!(cell(&d.db2, "CREDIT_CARD", "CC_BRAND", 0), "DINERS");
    assert_eq!(d.db1.row_count("CUSTOMER").unwrap(), 2);
    assert_eq!(d.db2.row_count("CREDIT_CARD").unwrap(), 2);
    assert_eq!(inj.lock().injected_count(), 1);
    assert_eq!(res.lock().stats().retries, 1);
}

// ---------------------------------------------------------------------------
// 4/5. XQSE catch discriminates on the aldsp error taxonomy
// ---------------------------------------------------------------------------

#[test]
fn xqse_catch_on_src_unavailable_runs_compensation() {
    let (space, primary, backup) = replicated_space();
    space.xqse().load(COMPENSATING_CREATE).unwrap();
    space.install_fault_injector(FaultInjector::new(
        FaultPlan::new().rule(FaultRule::new("backup", Op::Execute, FaultKind::Permanent)),
    ));

    let create = QName::with_ns("ld:SafeReplicate", "create");
    let mut env = Env::new();
    let err =
        space.xqse().call_procedure(&create, vec![emp(1, "Ann")], &mut env).unwrap_err();

    // The catch matched aldsp:SRC_UNAVAILABLE, compensated the primary
    // create, and re-raised the application-level code.
    assert_eq!(err.code.local, "REPLICA_DOWN");
    assert!(err.message.contains("compensated"), "got: {}", err.message);
    assert_eq!(primary.row_count("EMPLOYEE").unwrap(), 0, "compensation ran");
    assert_eq!(backup.row_count("EMPLOYEE").unwrap(), 0);
}

#[test]
fn xqse_catch_is_precise_other_codes_propagate_uncompensated() {
    let (space, primary, _backup) = replicated_space();
    space.xqse().load(COMPENSATING_CREATE).unwrap();
    // A *transient* failure, not an outage: the SRC_UNAVAILABLE catch
    // must not match, so the error propagates and (per the paper) the
    // primary-side effect is NOT rolled back.
    space.install_fault_injector(FaultInjector::new(
        FaultPlan::new().rule(FaultRule::new("backup", Op::Execute, FaultKind::Transient)),
    ));

    let create = QName::with_ns("ld:SafeReplicate", "create");
    let mut env = Env::new();
    let err =
        space.xqse().call_procedure(&create, vec![emp(1, "Ann")], &mut env).unwrap_err();
    assert_eq!(AldspCode::of(&err), Some(AldspCode::SrcTransient));
    assert_eq!(primary.row_count("EMPLOYEE").unwrap(), 1, "no compensation");
}

#[test]
fn xqse_namespace_wildcard_catches_any_infrastructure_fault() {
    let (space, _primary, backup) = replicated_space();
    space.xqse().load(DEGRADING_CREATE).unwrap();
    space.install_fault_injector(FaultInjector::new(
        FaultPlan::new()
            .rule(FaultRule::new("backup", Op::Execute, FaultKind::Timeout).times(1)),
    ));
    let create = QName::with_ns("ld:Fallback", "robustCreate");
    let mut env = Env::new();

    // aldsp:* catches the timeout …
    let out =
        space.xqse().call_procedure(&create, vec![emp(1, "Ann")], &mut env).unwrap();
    assert_eq!(out.string_value().unwrap(), "degraded");

    // … but does NOT swallow a logical err:DSP0003 (duplicate key):
    // the fault budget is spent, so this create reaches the source and
    // collides with a pre-existing row.
    backup
        .insert("EMPLOYEE", vec![SqlValue::Int(2), SqlValue::Str("Ghost".into())])
        .unwrap();
    let err =
        space.xqse().call_procedure(&create, vec![emp(2, "Bob")], &mut env).unwrap_err();
    assert!(
        err.is(xqse_repro::xdm::error::ErrorCode::DSP0003),
        "expected DSP0003 to escape the aldsp:* catch, got {}",
        err.code
    );
}

// ---------------------------------------------------------------------------
// 6. Circuit breaker + stale-read degradation through the DataSpace
// ---------------------------------------------------------------------------

#[test]
fn breaker_opens_and_reads_degrade_to_stale_cache() {
    let d = demo::build(2, 1, 1).unwrap();
    // This test pins the *unoptimized* read path: with the optimizer
    // on, the CreditCards where-clause is pushed down to an indexed
    // point-select and the faulted full scan never runs at all (see
    // `stale_snapshot_keys_caches_while_breaker_open` for the
    // optimized counterpart).
    d.space.engine().set_optimize(false);
    let res = d.space.install_resilience(Resilience::new(Policy {
        max_retries: 0,
        breaker_threshold: 3,
        breaker_cooldown_ms: 60_000,
        ..Policy::default()
    }));

    // Warm read while db2 is healthy — this populates its scan cache.
    let warm = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    let warm_brand =
        warm.get_value(0, &["CreditCards", "CREDIT_CARD", "BRAND"]).unwrap();

    // Now db2 goes down hard.
    d.space.install_fault_injector(FaultInjector::new(
        FaultPlan::new().rule(FaultRule::new("db2", Op::Scan, FaultKind::Permanent)),
    ));

    // Reads keep succeeding from the marked-stale cache; each get
    // scans db2 exactly once, so the third failed scan trips the
    // breaker (threshold 3).
    for _ in 0..3 {
        let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
        assert_eq!(
            g.get_value(0, &["CreditCards", "CREDIT_CARD", "BRAND"]).unwrap(),
            warm_brand,
            "stale read serves the last good snapshot"
        );
    }
    {
        let r = res.lock();
        assert_eq!(r.breaker_state("db2"), BreakerState::Open);
        assert_eq!(r.breaker_state("db1"), BreakerState::Closed, "db1 unaffected");
        let s = r.stats();
        assert_eq!(s.stale_reads, 3, "every faulted scan degraded to cache");
        assert_eq!(s.fast_failures, 0, "breaker tripped on the last scan");
    }

    // With the breaker open the source is no longer hammered: the next
    // get fails fast at admission and still serves stale data.
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    assert_eq!(
        g.get_value(0, &["CreditCards", "CREDIT_CARD", "BRAND"]).unwrap(),
        warm_brand
    );
    {
        let r = res.lock();
        let s = r.stats();
        assert_eq!(s.stale_reads, 4);
        assert_eq!(s.fast_failures, 1, "open breaker stopped hammering db2");
    }

    // After the cooldown the breaker half-opens; the probe hits the
    // still-broken source and the breaker re-opens — while the read
    // STILL succeeds from stale cache.
    res.lock().clock().advance(60_000);
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    assert_eq!(
        g.get_value(0, &["CreditCards", "CREDIT_CARD", "BRAND"]).unwrap(),
        warm_brand
    );
    let r = res.lock();
    let states: Vec<(BreakerState, BreakerState)> = r
        .transitions()
        .iter()
        .filter(|t| t.source == "db2")
        .map(|t| (t.from, t.to))
        .collect();
    assert_eq!(
        states,
        vec![
            (BreakerState::Closed, BreakerState::Open),
            (BreakerState::Open, BreakerState::HalfOpen),
            (BreakerState::HalfOpen, BreakerState::Open),
        ]
    );
}

// ---------------------------------------------------------------------------
// 7. Property: retry + 2PC never double-applies a write
// ---------------------------------------------------------------------------

fn item_schema() -> TableSchema {
    TableSchema {
        name: "ITEM".into(),
        columns: vec![
            Column::required("ID", ColumnType::Integer),
            Column::required("VAL", ColumnType::Varchar),
        ],
        primary_key: vec!["ID".into()],
        foreign_keys: vec![],
    }
}

fn item_insert() -> WriteOp {
    WriteOp::Insert {
        table: "ITEM".into(),
        row: vec![SqlValue::Int(1), SqlValue::Str("x".into())],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every (faults k, retry budget r): an auto-commit write goes
    /// through iff k <= r, and the row lands AT MOST once — retries of
    /// an injected failure can never re-apply a write because the
    /// injection fires before the source is touched and a real failure
    /// aborts atomically.
    #[test]
    fn retry_never_double_applies_autocommit_writes(k in 0u32..5, r in 0u32..5) {
        let db = Database::new("chaosdb");
        db.create_table(item_schema()).unwrap();
        let space = DataSpace::new();
        space.register_relational_source(&db).unwrap();
        space.install_fault_injector(FaultInjector::new(
            FaultPlan::new()
                .rule(FaultRule::new("chaosdb", Op::Execute, FaultKind::FailNTimes(k))),
        ));
        let res = space.install_resilience(Resilience::new(Policy {
            max_retries: r,
            ..Policy::default()
        }));

        let out = db.execute(vec![item_insert()]);
        let rows = db.row_count("ITEM").unwrap();
        prop_assert!(rows <= 1, "write applied {rows} times");
        if k <= r {
            prop_assert!(out.is_ok());
            prop_assert_eq!(rows, 1);
            prop_assert_eq!(res.lock().stats().retries, u64::from(k));
        } else {
            prop_assert_eq!(AldspCode::of(&out.unwrap_err()), Some(AldspCode::SrcTransient));
            prop_assert_eq!(rows, 0);
            prop_assert_eq!(res.lock().stats().retries, u64::from(r));
        }
    }

    /// Same property through the XA path: a flaky prepare on one 2PC
    /// participant either delays the commit (k <= r) or aborts the
    /// whole transaction — never a partial or duplicated apply.
    #[test]
    fn retry_never_double_applies_2pc_writes(k in 0u32..5, r in 0u32..5) {
        let db_a = Database::new("pa");
        db_a.create_table(item_schema()).unwrap();
        let db_b = Database::new("pb");
        db_b.create_table(item_schema()).unwrap();
        let space = DataSpace::new();
        space.register_relational_source(&db_a).unwrap();
        space.register_relational_source(&db_b).unwrap();
        space.install_fault_injector(FaultInjector::new(
            FaultPlan::new()
                .rule(FaultRule::new("pb", Op::Prepare, FaultKind::FailNTimes(k))),
        ));
        space.install_resilience(Resilience::new(Policy {
            max_retries: r,
            ..Policy::default()
        }));

        let outcome = TwoPhaseCoordinator::new(vec![
            (db_a.clone(), vec![item_insert()]),
            (db_b.clone(), vec![item_insert()]),
        ])
        .run();
        let (ra, rb) =
            (db_a.row_count("ITEM").unwrap(), db_b.row_count("ITEM").unwrap());
        prop_assert!(ra <= 1 && rb <= 1, "double apply: pa={ra} pb={rb}");
        prop_assert_eq!(ra, rb, "partial apply across participants");
        if k <= r {
            prop_assert!(matches!(outcome, TxOutcome::Committed));
            prop_assert_eq!(ra, 1);
        } else {
            match outcome {
                TxOutcome::Aborted(e) => {
                    prop_assert_eq!(AldspCode::of(&e), Some(AldspCode::SrcTransient))
                }
                other => prop_assert!(false, "expected abort, got {other:?}"),
            }
            prop_assert_eq!(ra, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// 8. Staleness matrix: versioned caches vs writes, aborts, and outages
// ---------------------------------------------------------------------------
//
// The optimizer memoizes two things across statements — per-source
// materialized XDM trees (keyed by table version) and join indexes
// (stamped with either a source version or the write epoch). These
// tests pin the staleness contract from every direction: committed
// writes invalidate, aborted 2PC transactions do NOT, and stale-read
// degradation keys derived caches on the *snapshot* version so a
// recovered source is never served from a stale tree.

/// A one-table "hr" space with the optimizer pinned ON (CI also runs
/// the whole suite under `XQSE_DISABLE_OPT=1`, so tests that assert
/// optimizer counters must not depend on the ambient default).
fn hr_space() -> (DataSpace, Database) {
    let db = Database::new("hr");
    db.create_table(employee_schema()).unwrap();
    db.insert("EMPLOYEE", vec![SqlValue::Int(1), SqlValue::Str("Ann".into())])
        .unwrap();
    let space = DataSpace::new();
    space.register_relational_source(&db).unwrap();
    space.engine().set_optimize(true);
    (space, db)
}

#[test]
fn committed_write_invalidates_materialized_read() {
    let (space, _db) = hr_space();
    let count = || {
        space
            .engine()
            .eval_expr_str("fn:count(ens:EMPLOYEE())", &[("ens", "ld:hr/EMPLOYEE")])
            .unwrap()
            .string_value()
            .unwrap()
    };
    space.engine().reset_opt_stats();
    assert_eq!(count(), "1"); // builds the XDM tree for version v1
    assert_eq!(count(), "1"); // version unchanged → tree reused
    let s = space.engine().opt_stats();
    assert_eq!((s.mat_misses, s.mat_hits), (1, 1));

    // A committed create bumps the table version …
    let create = QName::with_ns("ld:hr/EMPLOYEE", "createEMPLOYEE");
    let mut env = Env::new();
    space.xqse().call_procedure(&create, vec![emp(2, "Bob")], &mut env).unwrap();

    // … so the very next read rebuilds — cached trees can never mask
    // a committed write.
    assert_eq!(count(), "2", "committed create visible immediately");
    let s = space.engine().opt_stats();
    assert_eq!(s.mat_misses, 2, "version bump forced a rebuild");
    assert_eq!(count(), "2");
    assert_eq!(space.engine().opt_stats().mat_hits, 2);
}

#[test]
fn two_pc_abort_keeps_versions_and_materialized_trees_valid() {
    let d = demo::build(3, 1, 1).unwrap();
    d.space.engine().set_optimize(true);

    // Warm every read function's materialized tree.
    let warm = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    let last = warm.get_value(0, &["LAST_NAME"]).unwrap();
    let v_cust = d.db1.table_version("CUSTOMER").unwrap();
    let v_card = d.db2.table_version("CREDIT_CARD").unwrap();

    // A doomed distributed update: db2's prepare fails permanently.
    d.space.install_fault_injector(FaultInjector::new(
        FaultPlan::new().rule(FaultRule::new("db2", Op::Prepare, FaultKind::Permanent)),
    ));
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    g.set_value(0, &["LAST_NAME"], "Doomed").unwrap();
    g.set_value(0, &["CreditCards", "CREDIT_CARD", "BRAND"], "VOID").unwrap();
    let err = d.space.submit(&g).unwrap_err();
    assert_eq!(AldspCode::of(&err), Some(AldspCode::SrcUnavailable));

    // The abort advanced NO table version: versions count committed
    // transactions, and this one never committed.
    assert_eq!(d.db1.table_version("CUSTOMER").unwrap(), v_cust);
    assert_eq!(d.db2.table_version("CREDIT_CARD").unwrap(), v_card);

    // So once the source heals, reads still revalidate against the
    // same versions: zero rebuilds, and the data is pre-abort truth.
    d.space.install_fault_injector(FaultInjector::new(FaultPlan::new()));
    let s0 = d.space.engine().opt_stats();
    let g2 = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    assert_eq!(g2.get_value(0, &["LAST_NAME"]).unwrap(), last);
    let s = d.space.engine().opt_stats();
    assert!(s.mat_hits > s0.mat_hits, "re-read served the memoized trees");
    assert_eq!(s.mat_misses, s0.mat_misses, "the abort forced no rebuilds");
}

#[test]
fn stale_snapshot_keys_caches_while_breaker_open() {
    let (space, db) = hr_space();
    let res = space.install_resilience(Resilience::new(Policy {
        max_retries: 0,
        breaker_threshold: 2,
        breaker_cooldown_ms: 60_000,
        ..Policy::default()
    }));
    let names = || {
        space
            .engine()
            .eval_expr_str(
                "fn:string-join(for $e in ens:EMPLOYEE() return fn:string($e/Name), ',')",
                &[("ens", "ld:hr/EMPLOYEE")],
            )
            .unwrap()
            .string_value()
            .unwrap()
    };

    // Healthy warm read: materializes the tree for version v1 and
    // populates the source's scan snapshot.
    assert_eq!(names(), "Ann");
    let v1 = db.table_version("EMPLOYEE").unwrap();

    // A committed write bumps the live version past v1, but the last
    // *served* snapshot is still the v1 rows.
    db.execute(vec![WriteOp::Update {
        table: "EMPLOYEE".into(),
        set: vec![("Name".into(), SqlValue::Str("Zed".into()))],
        cond: vec![("EmployeeID".into(), SqlValue::Int(1))],
        expect_rows: 1,
    }])
    .unwrap();
    assert!(db.table_version("EMPLOYEE").unwrap() > v1);

    // Now the source goes down hard before anybody re-reads.
    space.engine().reset_opt_stats();
    space.install_fault_injector(FaultInjector::new(
        FaultPlan::new().rule(FaultRule::new("hr", Op::Scan, FaultKind::Permanent)),
    ));

    // Degraded reads serve the v1 snapshot — and because the snapshot
    // reports its OWN version (v1, never the live one), the v1-keyed
    // materialized tree revalidates and no rebuild happens at all.
    assert_eq!(names(), "Ann");
    assert_eq!(names(), "Ann"); // second failure trips the breaker
    {
        let r = res.lock();
        assert_eq!(r.breaker_state("hr"), BreakerState::Open);
        assert_eq!(r.stats().stale_reads, 2);
    }
    let s = space.engine().opt_stats();
    assert_eq!(s.mat_misses, 0, "stale snapshot revalidated the v1 tree");
    assert_eq!(s.mat_hits, 2);

    // Breaker open: the next read fails fast at admission and still
    // serves the stale tree.
    assert_eq!(names(), "Ann");
    {
        let r = res.lock();
        assert_eq!(r.stats().fast_failures, 1);
        assert_eq!(r.stats().stale_reads, 3);
    }
    assert_eq!(space.engine().opt_stats().mat_hits, 3);

    // The source heals and the breaker cools down. The half-open probe
    // succeeds, the scan reports the live version, and the v1-keyed
    // tree CANNOT be served — keying on the snapshot (not the live
    // version) is exactly what forces this rebuild.
    space.install_fault_injector(FaultInjector::new(FaultPlan::new()));
    res.lock().clock().advance(60_000);
    assert_eq!(names(), "Zed", "recovered read shows the committed write");
    assert_eq!(space.engine().opt_stats().mat_misses, 1, "recovery rebuilt");
}

// --------------------------------------------------- join-cache stamps

fn salaried_schema() -> TableSchema {
    TableSchema {
        name: "EMPLOYEE".into(),
        columns: vec![
            Column::required("EmployeeID", ColumnType::Integer),
            Column::required("Name", ColumnType::Varchar),
            // Decimal is deliberately NOT a pushable column class, so
            // `where $e/SALARY eq 50.5` exercises the memoized-join
            // path (with a source-version stamp) instead of pushdown.
            Column::required("SALARY", ColumnType::Decimal),
        ],
        primary_key: vec!["EmployeeID".into()],
        foreign_keys: vec![],
    }
}

fn audit_schema() -> TableSchema {
    TableSchema {
        name: "AUDIT".into(),
        columns: vec![
            Column::required("ID", ColumnType::Integer),
            Column::required("VAL", ColumnType::Varchar),
        ],
        primary_key: vec!["ID".into()],
        foreign_keys: vec![],
    }
}

/// An "hr" payroll table (8 rows at SALARY 50.5) plus an unrelated
/// "log" source for audit writes.
fn payroll_space() -> (DataSpace, Database, Database) {
    let hr = Database::new("hr");
    hr.create_table(salaried_schema()).unwrap();
    for i in 1..=8 {
        hr.insert(
            "EMPLOYEE",
            vec![
                SqlValue::Int(i),
                SqlValue::Str(format!("E{i}")),
                SqlValue::parse(ColumnType::Decimal, "50.5").unwrap(),
            ],
        )
        .unwrap();
    }
    let log = Database::new("log");
    log.create_table(audit_schema()).unwrap();
    let space = DataSpace::new();
    space.register_relational_source(&hr).unwrap();
    space.register_relational_source(&log).unwrap();
    (space, hr, log)
}

/// Four loop iterations, each: count the 50.5-salaried employees, then
/// write an audit row to the *other* source.
const PAYROLL_AUDIT_LOOP: &str = r#"
declare namespace ens = "ld:hr/EMPLOYEE";
declare namespace log = "ld:log/AUDIT";
{
  declare $i as xs:integer := 1;
  declare $total as xs:integer := 0;
  while ($i le 4) {
    set $total := $total +
      fn:count(for $e in ens:EMPLOYEE() where $e/SALARY eq 50.5 return $e);
    log:createAUDIT(<AUDIT><ID>{$i}</ID><VAL>x</VAL></AUDIT>);
    set $i := $i + 1;
  }
  return value $total;
}
"#;

#[test]
fn version_stamped_join_entries_survive_unrelated_writes() {
    // Optimizer on: the join index over hr/EMPLOYEE is stamped with
    // that table's version, so AUDIT writes (which only bump the write
    // epoch) leave it intact across all four statements.
    let (space, _hr, log) = payroll_space();
    space.engine().set_optimize(true);
    space.engine().reset_opt_stats();
    let out = space.xqse().run(PAYROLL_AUDIT_LOOP).unwrap();
    assert_eq!(out.string_value().unwrap(), "32");
    assert_eq!(log.row_count("AUDIT").unwrap(), 4);
    let s = space.engine().opt_stats();
    assert_eq!(s.pushdown_rewrites, 0, "Decimal key must defeat pushdown");
    assert_eq!(s.join_misses, 1, "index built exactly once");
    assert_eq!(s.join_hits, 3, "…and survived three unrelated AUDIT writes");
    assert_eq!(s.join_invalidations, 0);

    // Kill-switch baseline: with the optimizer off the entry is
    // epoch-stamped, so every AUDIT write kills it (the seed's blanket
    // any-write policy). Same answer, three extra rebuilds.
    let (space, _hr, _log) = payroll_space();
    space.engine().set_optimize(false);
    space.engine().reset_opt_stats();
    let out = space.xqse().run(PAYROLL_AUDIT_LOOP).unwrap();
    assert_eq!(out.string_value().unwrap(), "32");
    let s = space.engine().opt_stats();
    assert_eq!(s.join_misses, 4);
    assert_eq!(s.join_invalidations, 3);
    assert_eq!(s.join_hits, 0);
}

#[test]
fn join_entries_invalidate_when_their_source_is_written() {
    // Same loop shape, but each iteration writes hr/EMPLOYEE itself:
    // the version stamp must fail revalidation every time, and the
    // growing counts prove no stale index was ever served.
    const SELF_WRITE_LOOP: &str = r#"
declare namespace ens = "ld:hr/EMPLOYEE";
{
  declare $i as xs:integer := 1;
  declare $counts as xs:string* := ();
  while ($i le 4) {
    set $counts := ($counts, fn:string(fn:count(
      for $e in ens:EMPLOYEE() where $e/SALARY eq 50.5 return $e)));
    ens:createEMPLOYEE(<EMPLOYEE><EmployeeID>{100 + $i}</EmployeeID><Name>N</Name><SALARY>50.5</SALARY></EMPLOYEE>);
    set $i := $i + 1;
  }
  return value fn:string-join($counts, ",");
}
"#;
    let (space, hr, _log) = payroll_space();
    space.engine().set_optimize(true);
    space.engine().reset_opt_stats();
    let out = space.xqse().run(SELF_WRITE_LOOP).unwrap();
    assert_eq!(out.string_value().unwrap(), "8,9,10,11");
    assert_eq!(hr.row_count("EMPLOYEE").unwrap(), 12);
    let s = space.engine().opt_stats();
    assert_eq!(s.join_misses, 4, "every iteration saw a fresh version");
    assert_eq!(s.join_invalidations, 3);
    assert_eq!(s.join_hits, 0, "a hit here would have served stale rows");
}

// ------------------------------------------- cached vs uncached agree

/// Queries covering the three optimized read paths: full materialized
/// scan, pushable equality filter, and keyed lookup.
fn agreement_queries(id: i64, name: &str) -> Vec<String> {
    vec![
        "fn:string-join(for $e in ens:EMPLOYEE() order by $e/EmployeeID \
         return fn:concat($e/EmployeeID, '=', $e/Name), ',')"
            .to_string(),
        format!(
            "fn:count(for $e in ens:EMPLOYEE() where $e/Name eq '{name}' return $e)"
        ),
        format!("fn:string(ens:getByEmployeeID({id})/Name)"),
    ]
}

fn agreement_space() -> (DataSpace, Database) {
    let db = Database::new("hr");
    db.create_table(employee_schema()).unwrap();
    db.insert("EMPLOYEE", vec![SqlValue::Int(1), SqlValue::Str("seed".into())])
        .unwrap();
    let space = DataSpace::new();
    space.register_relational_source(&db).unwrap();
    (space, db)
}

fn eval_q(space: &DataSpace, q: &str) -> String {
    space
        .engine()
        .eval_expr_str(q, &[("ens", "ld:hr/EMPLOYEE")])
        .unwrap()
        .string_value()
        .unwrap()
}

fn call_proc(space: &DataSpace, proc_name: &str, arg: Sequence) {
    let mut env = Env::new();
    space
        .xqse()
        .call_procedure(&QName::with_ns("ld:hr/EMPLOYEE", proc_name), vec![arg], &mut env)
        .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Metamorphic property: an optimized space (pushdown + versioned
    /// caches) and an unoptimized one, fed the same random stream of
    /// keyed creates/updates/deletes, agree on every read after every
    /// mutation. Any missed invalidation, over-eager pushdown, or
    /// wrong version stamp shows up as a divergence.
    #[test]
    fn optimized_and_unoptimized_reads_agree(
        ops in collection::vec((0u8..3, 1i64..6, 0u8..4), 1..20)
    ) {
        let (opt, _odb) = agreement_space();
        opt.engine().set_optimize(true);
        let (plain, _pdb) = agreement_space();
        plain.engine().set_optimize(false);
        let mut model = std::collections::BTreeSet::new();
        model.insert(1i64);

        for (op, id, tag) in ops {
            let name = format!("n{tag}");
            match op {
                0 if !model.contains(&id) => {
                    call_proc(&opt, "createEMPLOYEE", emp(id, &name));
                    call_proc(&plain, "createEMPLOYEE", emp(id, &name));
                    model.insert(id);
                }
                1 if model.contains(&id) => {
                    call_proc(&opt, "updateEMPLOYEE", emp(id, &name));
                    call_proc(&plain, "updateEMPLOYEE", emp(id, &name));
                }
                2 if model.contains(&id) => {
                    call_proc(&opt, "deleteEMPLOYEE", emp(id, &name));
                    call_proc(&plain, "deleteEMPLOYEE", emp(id, &name));
                    model.remove(&id);
                }
                _ => {} // no-op: invalid against the current state
            }
            for q in agreement_queries(id, &name) {
                prop_assert_eq!(
                    eval_q(&opt, &q),
                    eval_q(&plain, &q),
                    "divergence on {:?} after op {} id {}",
                    q, op, id
                );
            }
        }
    }
}

// --------------------------------------------------- batched WS access

/// A flattened FLWOR whose inner for-clause calls the batchable
/// credit-rating service once per tuple — the evaluator flushes all
/// requests through one coalesced `call_many` at the iteration
/// boundary.
fn rating_batch_query(lo: i64, hi: i64) -> String {
    format!(
        "for $i in ({lo} to {hi}) \
         for $r in cre:getCreditRating(\
             <getCreditRating><lastName>L</lastName><ssn>{{$i}}</ssn>\
             </getCreditRating>) \
         return fn:string($r)"
    )
}

#[test]
fn breaker_opens_mid_batch_flight() {
    use xqse_repro::aldsp::ws::WebService;

    let space = DataSpace::new();
    space.register_web_service(WebService::credit_rating("urn:cr")).unwrap();
    let cre = [("cre", "ld:ws/CreditRating")];

    // Healthy warm-up: one batch of 3 requests, one coalesced flight.
    // Pin the layer on: CI re-runs this suite under the kill switches.
    space.engine().set_optimize(true);
    space.engine().set_batch(true);
    space.engine().reset_opt_stats();
    let warm = space.engine().eval_expr_str(&rating_batch_query(1, 3), &cre).unwrap();
    assert_eq!(warm.len(), 3);
    let s = space.engine().opt_stats();
    assert_eq!(s.ws_batches, 1, "3 tuples, one flight");
    assert_eq!(s.ws_issued, 3);

    // The service starts failing transiently; a tight breaker opens
    // *during* the retry sequence of a single batch flight.
    let res = space.install_resilience(Resilience::new(Policy {
        max_retries: 2,
        breaker_threshold: 2,
        breaker_cooldown_ms: 1_000,
        ..Policy::default()
    }));
    let inj = space.install_fault_injector(FaultInjector::new(
        FaultPlan::new().rule(FaultRule::new("CreditRating", Op::Call, FaultKind::Transient)),
    ));

    // Uncached requests: attempt 1 fails (failure #1), attempt 2 fails
    // (failure #2 -> breaker OPENS mid-batch), attempt 3 is rejected at
    // admission -> SRC_UNAVAILABLE; nothing cached, so the whole batch
    // errors.
    let err = space
        .engine()
        .eval_expr_str(&rating_batch_query(4, 6), &cre)
        .unwrap_err();
    assert_eq!(AldspCode::of(&err), Some(AldspCode::SrcUnavailable));
    {
        let r = res.lock();
        assert_eq!(r.breaker_state("CreditRating"), BreakerState::Open);
        assert_eq!(r.stats().retries, 2, "whole-batch retries, not per item");
        assert_eq!(r.stats().fast_failures, 1, "third attempt fast-failed");
        assert_eq!(r.stats().stale_reads, 0, "no cached fallback for new ssns");
    }

    // The injector saw exactly two *batch* flights of 3 requests — not
    // six per-item calls.
    {
        let mut inj = inj.lock();
        assert_eq!(inj.injected_count(), 2);
        assert!(inj.events().iter().all(|e| e.batch_size == Some(3)));
    }

    // Warm requests still answer during the outage: the read-through
    // response cache serves them before the breaker path is consulted.
    let cached = space.engine().eval_expr_str(&rating_batch_query(1, 3), &cre).unwrap();
    assert_eq!(
        cached.iter().map(|i| i.string_value()).collect::<Vec<_>>(),
        warm.iter().map(|i| i.string_value()).collect::<Vec<_>>()
    );
    assert_eq!(res.lock().stats().stale_reads, 0, "served as cache hits, not stale");

    // Heal + cooldown: the half-open probe batch succeeds, and a
    // second successful flight closes the breaker.
    space.install_fault_injector(FaultInjector::new(FaultPlan::new()));
    res.lock().clock().advance(1_000);
    assert_eq!(space.engine().eval_expr_str(&rating_batch_query(4, 6), &cre).unwrap().len(), 3);
    assert_eq!(res.lock().breaker_state("CreditRating"), BreakerState::HalfOpen);
    assert_eq!(space.engine().eval_expr_str(&rating_batch_query(7, 9), &cre).unwrap().len(), 3);
    assert_eq!(res.lock().breaker_state("CreditRating"), BreakerState::Closed);
}

// ---------------------------------------------------------------------------
// 10. Crash-consistent 2PC: coordinator journal + in-doubt recovery
// ---------------------------------------------------------------------------
//
// The journaled coordinator writes Begin/Prepared/CommitDecision/
// Committed records at every protocol point and is crash-injectable at
// each of them (FaultKind::CrashPoint on the Op::Xa* protocol ops). A
// crash unwinds WITHOUT cleanup — prepared branches keep their locks,
// committed branches keep their writes — and `DataSpace::recover()`
// replays the journal: presumed abort for in-doubt transactions,
// roll-forward for decided-but-incomplete ones, through idempotent
// `commit_branch`/`rollback_branch` so recovering twice ≡ once.

mod xa_recovery {
    use super::*;
    use xqse_repro::aldsp::decompose::{self, DecompositionPlan};
    use xqse_repro::aldsp::rel::TxId;
    use xqse_repro::aldsp::RecoveryStats;

    /// A two-source plan (one insert each) on a replicated space whose
    /// source names sort/iterate in plan order: "primary" then
    /// "backup".
    fn two_source_plan() -> DecompositionPlan {
        let ins = |_: &str| WriteOp::Insert {
            table: "EMPLOYEE".into(),
            row: vec![SqlValue::Int(1), SqlValue::Str("Ann".into())],
        };
        DecompositionPlan {
            per_source: vec![
                ("primary".into(), vec![ins("primary")]),
                ("backup".into(), vec![ins("backup")]),
            ],
        }
    }

    fn rows(db: &Database) -> usize {
        db.row_count("EMPLOYEE").unwrap()
    }

    /// Every xid the journal knows, for lock assertions.
    fn journal_xids(space: &DataSpace) -> Vec<u64> {
        space.journal().scan().keys().copied().collect()
    }

    fn any_prepared(space: &DataSpace, dbs: &[&Database]) -> bool {
        journal_xids(space)
            .iter()
            .any(|&xid| dbs.iter().any(|db| db.is_prepared(TxId(xid))))
    }

    /// The acceptance-criteria matrix: crash the coordinator at every
    /// protocol point of a two-source transaction, observe the
    /// divergent/partial state the crash left, then assert recovery
    /// restores the atomicity invariant with exactly the expected
    /// counters — and that a second pass is a no-op.
    #[test]
    fn xa_crash_at_every_protocol_point_recovers_atomically() {
        // (source, op, decided, expected RecoveryStats)
        let matrix: &[(&str, Op, bool, RecoveryStats)] = &[
            // Pre-decision crashes: presumed abort. Branch rollbacks
            // count only for branches that actually prepared; the rest
            // are idempotent no-ops (replays_skipped).
            ("coordinator", Op::XaBegin, false, RecoveryStats {
                in_doubt_found: 1, rolled_forward: 0, rolled_back: 0, replays_skipped: 2,
            }),
            ("primary", Op::XaPrepared, false, RecoveryStats {
                in_doubt_found: 1, rolled_forward: 0, rolled_back: 1, replays_skipped: 1,
            }),
            ("backup", Op::XaPrepared, false, RecoveryStats {
                in_doubt_found: 1, rolled_forward: 0, rolled_back: 2, replays_skipped: 0,
            }),
            // Post-decision crashes: roll forward. A branch that
            // committed before the crash but lost its Committed record
            // replays as a skip (commit_branch finds nothing prepared).
            ("coordinator", Op::XaDecide, true, RecoveryStats {
                in_doubt_found: 0, rolled_forward: 2, rolled_back: 0, replays_skipped: 0,
            }),
            ("primary", Op::XaCommit, true, RecoveryStats {
                in_doubt_found: 0, rolled_forward: 1, rolled_back: 0, replays_skipped: 1,
            }),
            ("backup", Op::XaCommit, true, RecoveryStats {
                in_doubt_found: 0, rolled_forward: 0, rolled_back: 0, replays_skipped: 1,
            }),
        ];

        for (source, op, decided, expected) in matrix {
            let (space, primary, backup) = replicated_space();
            space.install_fault_injector(FaultInjector::new(FaultPlan::new().rule(
                FaultRule::new(*source, *op, FaultKind::CrashPoint),
            )));

            let err = decompose::execute(&space, two_source_plan())
                .expect_err("coordinator must crash");
            assert_eq!(
                AldspCode::of(&err),
                Some(AldspCode::XaCoordCrash),
                "crash at {source}/{op}"
            );

            // Before recovery the sources are in a genuinely partial
            // state: locks held with no decision, or divergent rows.
            match (source, op) {
                (_, Op::XaPrepared) | (_, Op::XaDecide) => {
                    assert!(
                        any_prepared(&space, &[&primary, &backup]),
                        "{source}/{op}: prepared locks must still be held"
                    );
                    assert_eq!((rows(&primary), rows(&backup)), (0, 0));
                }
                (_, Op::XaCommit) if *source == "primary" => {
                    assert_ne!(
                        rows(&primary),
                        rows(&backup),
                        "crash between per-source commits must leave divergent state"
                    );
                    assert!(any_prepared(&space, &[&backup]), "backup still locked");
                }
                _ => {}
            }
            assert!(!space.journal().is_clean(), "{source}/{op}: tx unresolved");

            // Recovery restores the atomicity invariant…
            let stats = space.recover().unwrap();
            assert_eq!(stats, *expected, "stats for crash at {source}/{op}");
            let want = if *decided { 1 } else { 0 };
            assert_eq!(
                (rows(&primary), rows(&backup)),
                (want, want),
                "atomicity after recovery from crash at {source}/{op}"
            );
            assert!(!any_prepared(&space, &[&primary, &backup]), "locks released");
            assert!(space.journal().is_clean(), "journal resolved");

            // …and is idempotent: a second pass finds nothing.
            let again = space.recover().unwrap();
            assert!(again.is_noop(), "second recover() must be a no-op, got {again:?}");
            assert_eq!((rows(&primary), rows(&backup)), (want, want));
        }
    }

    /// `recover()` on a clean journal is a no-op — both on a fresh
    /// space (empty journal) and after a successful multi-source
    /// commit (fully-resolved journal).
    #[test]
    fn xa_recover_is_noop_on_clean_journal() {
        let (space, primary, backup) = replicated_space();
        assert!(space.recover().unwrap().is_noop(), "empty journal");

        decompose::execute(&space, two_source_plan()).unwrap();
        assert_eq!((rows(&primary), rows(&backup)), (1, 1));
        assert!(!space.journal().is_empty(), "happy path was journaled");
        assert!(space.journal().is_clean());
        assert!(space.recover().unwrap().is_noop(), "resolved journal");

        // Recovery totals reach the engine's explain counters.
        let s = space.engine().opt_stats();
        assert_eq!(s.xa_recovery_runs, 2);
        assert_eq!(s.xa_in_doubt + s.xa_rolled_forward + s.xa_rolled_back, 0);
    }

    /// The crash error is XQSE-catchable by exact name, so an atomic
    /// block can observe an in-doubt outcome and route to recovery.
    #[test]
    fn xa_coord_crash_is_xqse_catchable() {
        let (space, primary, backup) = replicated_space();
        let inj = space.install_fault_injector(FaultInjector::new(FaultPlan::new().rule(
            FaultRule::new("primary", Op::XaCommit, FaultKind::CrashPoint),
        )));

        // A native procedure driving the journaled coordinator — the
        // stand-in for a logical service's multi-source submit.
        let journal = space.journal();
        let (pa, pb) = (primary.clone(), backup.clone());
        space.engine().register_external_procedure(
            QName::with_ns("urn:test", "doomedSubmit"),
            0,
            false,
            std::rc::Rc::new(move |_env, _args| {
                let ins = WriteOp::Insert {
                    table: "EMPLOYEE".into(),
                    row: vec![SqlValue::Int(9), SqlValue::Str("Zed".into())],
                };
                TwoPhaseCoordinator::new(vec![
                    (pa.clone(), vec![ins.clone()]),
                    (pb.clone(), vec![ins]),
                ])
                .run_journaled(&journal, Some(&inj), None)?;
                Ok(Sequence::empty())
            }),
        );

        let caught = space
            .xqse()
            .run(
                r#"
                declare namespace t = "urn:test";
                declare namespace aldsp = "urn:aldsp:errors";
                {
                  declare $out as xs:string := "clean";
                  try { t:doomedSubmit(); }
                  catch (aldsp:XA_COORD_CRASH into $err, $msg) {
                    set $out := fn:concat("in-doubt: ", $msg);
                  };
                  return value $out;
                }
                "#,
            )
            .unwrap();
        assert!(
            caught.string_value().unwrap().starts_with("in-doubt:"),
            "exact-name catch must match aldsp:XA_COORD_CRASH"
        );

        // The block observed the in-doubt outcome; recovery resolves it.
        assert_ne!(rows(&primary), rows(&backup), "divergent until recovery");
        let stats = space.recover().unwrap();
        assert_eq!(stats.rolled_forward, 1, "backup commit replayed");
        assert_eq!((rows(&primary), rows(&backup)), (1, 1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Randomized crash-point × fault-plan matrix. Whatever
        /// happens — a crash at any protocol point, a flaky prepare
        /// that aborts or retries through, or both racing — after
        /// recovery every source is fully pre-image or fully
        /// post-image (and all sources agree), and recover() twice is
        /// recover() once.
        #[test]
        fn xa_recovery_is_idempotent_and_atomic(
            point in 0usize..6,
            k in 0u32..3,
            r in 0u32..3,
            flaky_idx in 0usize..2,
        ) {
            let flaky_source = ["primary", "backup"][flaky_idx];
            let points = [
                ("coordinator", Op::XaBegin),
                ("primary", Op::XaPrepared),
                ("backup", Op::XaPrepared),
                ("coordinator", Op::XaDecide),
                ("primary", Op::XaCommit),
                ("backup", Op::XaCommit),
            ];
            let (crash_source, crash_op) = points[point];
            let (space, primary, backup) = replicated_space();
            space.install_fault_injector(FaultInjector::new(
                FaultPlan::new()
                    .rule(FaultRule::new(
                        flaky_source,
                        Op::Prepare,
                        FaultKind::FailNTimes(k),
                    ))
                    .rule(FaultRule::new(crash_source, crash_op, FaultKind::CrashPoint)),
            ));
            space.install_resilience(Resilience::new(Policy {
                max_retries: r,
                ..Policy::default()
            }));

            // The submit may commit, abort tidily, or crash — all are
            // legal; the invariants below must hold regardless.
            let _ = decompose::execute(&space, two_source_plan());

            let first = space.recover().unwrap();
            let (ra, rb) = (rows(&primary), rows(&backup));
            prop_assert!(ra <= 1 && rb <= 1, "double apply: {ra}/{rb}");
            prop_assert_eq!(
                ra, rb,
                "partial apply after recovery (crash at {}/{}, k={}, r={})",
                crash_source, crash_op, k, r
            );
            prop_assert!(
                !any_prepared(&space, &[&primary, &backup]),
                "prepared locks survived recovery"
            );
            prop_assert!(space.journal().is_clean());

            // Idempotency: the second pass finds nothing to do and
            // changes nothing.
            let second = space.recover().unwrap();
            prop_assert!(
                second.is_noop(),
                "recover() not idempotent: first={:?} second={:?}", first, second
            );
            prop_assert_eq!((rows(&primary), rows(&backup)), (ra, rb));
        }
    }

    /// Journal overhead guard for the no-fault path: the journaled
    /// coordinator must stay within 5% of the unjournaled one.
    /// Ignored by default (wall-clock measurement); the fourth
    /// `scripts/check.sh` arm runs it warn-only.
    #[test]
    #[ignore = "wall-clock guard; run via scripts/check.sh arm 4"]
    fn xa_journal_overhead_guard_under_5pct() {
        use std::time::Instant;

        const SEED_ROWS: i64 = 512;
        const ITERS: i64 = 1500;
        let run = |journaled: bool| -> f64 {
            // Model what a decomposed submit actually executes per
            // source: a conditioned OCC UPDATE against a populated
            // table — not a bare one-row insert, whose cost would be
            // dwarfed by any fixed per-transaction bookkeeping.
            let (space, primary, backup) = replicated_space();
            for db in [&primary, &backup] {
                for i in 0..SEED_ROWS {
                    db.insert(
                        "EMPLOYEE",
                        vec![SqlValue::Int(i), SqlValue::Str("x".into())],
                    )
                    .unwrap();
                }
            }
            let journal = space.journal();
            let start = Instant::now();
            for i in 0..ITERS {
                let upd = || WriteOp::Update {
                    table: "EMPLOYEE".into(),
                    set: vec![("Name".into(), SqlValue::Str(format!("n{i}")))],
                    cond: vec![("EmployeeID".into(), SqlValue::Int(i % SEED_ROWS))],
                    expect_rows: 1,
                };
                let coord = TwoPhaseCoordinator::new(vec![
                    (primary.clone(), vec![upd()]),
                    (backup.clone(), vec![upd()]),
                ]);
                if journaled {
                    assert!(matches!(
                        coord.run_journaled(&journal, None, None).unwrap(),
                        TxOutcome::Committed
                    ));
                } else {
                    assert!(matches!(coord.run(), TxOutcome::Committed));
                }
            }
            start.elapsed().as_secs_f64()
        };

        // Warm up once, then take the best of 3 for each arm to damp
        // scheduler noise.
        let _ = (run(false), run(true));
        let plain = (0..3).map(|_| run(false)).fold(f64::MAX, f64::min);
        let journaled = (0..3).map(|_| run(true)).fold(f64::MAX, f64::min);
        let overhead = (journaled - plain) / plain * 100.0;
        println!(
            "xa journal overhead: plain={plain:.4}s journaled={journaled:.4}s \
             overhead={overhead:.2}%"
        );
        assert!(
            overhead < 5.0,
            "journal overhead {overhead:.2}% exceeds the 5% budget \
             (plain={plain:.4}s journaled={journaled:.4}s)"
        );
    }
}

// ---------------------------------------------------------------------------
// Serving pool: concurrency chaos (PR 7)
// ---------------------------------------------------------------------------

mod serve {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    use super::*;
    use xqse_repro::aldsp::pool::{drive_closed_loop, ServeArg, ServePool, ServeRequest, ServeSpec};
    use xqse_repro::aldsp::{Injected, WebService};

    fn one_col_schema(name: &str) -> TableSchema {
        TableSchema {
            name: name.into(),
            columns: vec![Column::required("ID", ColumnType::Integer)],
            primary_key: vec!["ID".into()],
            foreign_keys: vec![],
        }
    }

    /// Regression test for the canonical shard-lock order: two workers
    /// hammer 2PC transactions over the *same pair* of tables, one
    /// declaring its writes `[BETA, ALPHA]` and the other `[ALPHA,
    /// BETA]`. If prepare/commit locked table shards in declaration
    /// order this deadlocks within a few iterations; with the
    /// canonical sorted-name order it must always finish. A watchdog
    /// turns a deadlock into a failure instead of a hang.
    #[test]
    fn serve_lock_order_opposite_submit_order_no_deadlock() {
        const ITERS: i64 = 150;
        let db = Database::new("lk");
        db.create_table(one_col_schema("ALPHA")).unwrap();
        db.create_table(one_col_schema("BETA")).unwrap();

        let (done_tx, done_rx) = std::sync::mpsc::channel::<usize>();
        for worker in 0..2usize {
            let db = db.clone();
            let done_tx = done_tx.clone();
            std::thread::spawn(move || {
                for i in 0..ITERS {
                    let id = worker as i64 * 10_000 + i;
                    let ins = |table: &str| WriteOp::Insert {
                        table: table.into(),
                        row: vec![SqlValue::Int(id)],
                    };
                    let mut ops = vec![ins("ALPHA"), ins("BETA")];
                    if worker == 1 {
                        ops.reverse();
                    }
                    let coord = TwoPhaseCoordinator::new(vec![(db.clone(), ops)]);
                    assert!(matches!(coord.run(), TxOutcome::Committed));
                }
                done_tx.send(worker).unwrap();
            });
        }
        drop(done_tx);
        for _ in 0..2 {
            done_rx
                .recv_timeout(Duration::from_secs(60))
                .expect("deadlock: opposite-declaration-order 2PC never finished");
        }
        assert_eq!(db.row_count("ALPHA").unwrap(), 2 * ITERS as usize);
        assert_eq!(db.row_count("BETA").unwrap(), 2 * ITERS as usize);
    }

    fn get_req(cid: usize) -> ServeRequest {
        ServeRequest::Get {
            service: "CustomerProfile".into(),
            method: "getProfileById".into(),
            args: vec![ServeArg::Str(cid.to_string())],
        }
    }

    fn submit_req(cid: usize, sets: Vec<(usize, Vec<String>, String)>) -> ServeRequest {
        ServeRequest::Submit {
            service: "CustomerProfile".into(),
            method: "getProfileById".into(),
            args: vec![ServeArg::Str(cid.to_string())],
            sets,
        }
    }

    fn xa_sets(marker: &str) -> Vec<(usize, Vec<String>, String)> {
        vec![
            (0, vec!["LAST_NAME".into()], marker.to_string()),
            (
                0,
                vec!["CreditCards".into(), "CREDIT_CARD".into(), "BRAND".into()],
                marker.to_string(),
            ),
        ]
    }

    /// The concurrency soak: 4 workers serve a mixed read / write / XA
    /// workload while a fault plan injects source timeouts, trips the
    /// web-service breaker, and crashes the 2PC coordinator once at
    /// the decision point. Invariants checked:
    ///
    /// * per-table version counters stay monotonic under concurrency
    ///   (sampled continuously from a side thread),
    /// * every storm-time failure is a typed error, never a panic,
    /// * injected faults record *which worker* hit them,
    /// * the breaker actually tripped (a `Closed -> Open` transition),
    /// * once the fault budgets are spent, the pool fully recovers: a
    ///   whole follow-up round of reads succeeds,
    /// * after recovery every XA marker is in **both** sources or in
    ///   neither, the journal is clean, and a second recovery pass is
    ///   a no-op.
    #[test]
    fn serve_soak_mixed_workload_under_faults() {
        const CUSTOMERS: usize = 12;
        let d = demo::build(CUSTOMERS, 1, 1).unwrap();
        let injector = d.space.install_fault_injector(FaultInjector::new(
            FaultPlan::new()
                .rule(FaultRule::new("db1", Op::Execute, FaultKind::Timeout).times(2))
                .rule(FaultRule::new("CreditRating", Op::Call, FaultKind::Transient).times(5))
                .rule(FaultRule::new("coordinator", Op::XaDecide, FaultKind::CrashPoint)),
        ));
        let resilience = d.space.install_resilience(Resilience::new(Policy {
            max_retries: 2,
            base_backoff_ms: 10,
            breaker_threshold: 3,
            breaker_cooldown_ms: 10,
            half_open_successes: 1,
            ..Policy::default()
        }));
        let access = d.space.access();
        let journal = d.space.journal();
        let (db1, db2) = (d.db1.clone(), d.db2.clone());

        // Version monotonicity sampler: reads the live per-table
        // version counters while the pool is serving. table_version()
        // bypasses Access, so sampling is invisible to the fault plan.
        //
        // The sampler doubles as the soak's wall-clock heartbeat: it
        // ticks the shared virtual clock so breaker cooldowns always
        // expire. Without it, the clock only moves on retry backoffs,
        // and an unlucky interleaving can trip a breaker (concurrent
        // workers each recording one failure, no retries paid) after
        // the fault plan's backoff budget is spent — freezing virtual
        // time mid-cooldown and failing every later uncached read.
        let done = Arc::new(AtomicBool::new(false));
        let sampler = {
            let (db1, db2, done) = (db1.clone(), db2.clone(), done.clone());
            let clock = resilience.lock().clock();
            std::thread::spawn(move || {
                let (mut v1, mut v2) = (0u64, 0u64);
                while !done.load(Ordering::Relaxed) {
                    let n1 = db1.table_version("CUSTOMER").unwrap();
                    let n2 = db2.table_version("CREDIT_CARD").unwrap();
                    assert!(n1 >= v1, "CUSTOMER version went backwards: {v1} -> {n1}");
                    assert!(n2 >= v2, "CREDIT_CARD version went backwards: {v2} -> {n2}");
                    (v1, v2) = (n1, n2);
                    clock.advance(1);
                    std::thread::sleep(Duration::from_micros(200));
                }
            })
        };

        let pool = {
            let (db1, db2) = (db1.clone(), db2.clone());
            let (access, journal) = (access.clone(), journal.clone());
            ServePool::start(ServeSpec::new(4), move |_worker| {
                let space =
                    demo::assemble(&db1, &db2, WebService::credit_rating(demo::CREDIT_TYPES_NS))?;
                space.install_access(access.clone());
                space.set_journal(journal.clone());
                Ok(space)
            })
        };

        // Mixed workload. Cids are disjoint per phase so concurrent
        // submits never contend on a row: single-source writes touch
        // 1..=4, XA (two-source) submits touch 7..=10.
        let mut reqs: Vec<ServeRequest> = Vec::new();
        reqs.extend((1..=CUSTOMERS).map(get_req)); // warm every worker
        reqs.extend(
            (1..=4).map(|c| submit_req(c, vec![(0, vec!["FIRST_NAME".into()], format!("W-{c}"))])),
        );
        reqs.extend((1..=8).map(get_req));
        reqs.extend((7..=10).map(|c| submit_req(c, xa_sets(&format!("XA-{c}")))));
        reqs.extend((5..=10).map(get_req));

        let (replies, _elapsed) = drive_closed_loop(&pool, &reqs, 8);

        // Storm-time failures must all be *typed* infrastructure
        // errors — never a worker panic. How many requests die is a
        // race between the breaker's fail-fast window and the fault
        // plan's clock-advancing retries (an unpaced closed loop can
        // push the whole request list through one cooldown window), so
        // the liveness claim lives in the heal round below, not in a
        // storm-time survival count.
        for (i, r) in replies.iter().enumerate() {
            if let Err(e) = &r.result {
                assert!(e.code.ns.is_some(), "request {i} failed with an untyped error: {e}");
                assert!(!e.message.contains("panicked"), "request {i} died in a worker: {e}");
            }
        }

        // Drain the tail of the fault budget from here (a half-open
        // probe that eats a leftover transient re-opens the breaker;
        // probing through the shared Access burns those down), then
        // prove full recovery: with the budgets spent and cooldowns
        // expired, a whole pooled round of reads must come back green.
        let probe_clock = resilience.lock().clock();
        for _ in 0..8 {
            probe_clock.advance(1_000);
            if d.space
                .get("CustomerProfile", "getProfileById", vec![Sequence::one(Item::string("1"))])
                .is_ok()
            {
                break;
            }
        }
        let heal: Vec<ServeRequest> = (1..=CUSTOMERS).map(get_req).collect();
        let (recovered, _) = drive_closed_loop(&pool, &heal, 4);
        for (cid, r) in recovered.iter().enumerate() {
            assert!(
                r.result.is_ok(),
                "read of cid {} still failing after the storm: {:?}",
                cid + 1,
                r.result
            );
        }

        let report = pool.shutdown();
        done.store(true, Ordering::Relaxed);
        sampler.join().expect("version sampler observed a regression");

        assert!(report.init_errors.iter().all(Option::is_none), "{:?}", report.init_errors);
        assert_eq!(report.served.iter().sum::<u64>() as usize, reqs.len() + heal.len());

        // Fault events carry the serving worker's identity.
        let events = injector.lock().events().to_vec();
        assert!(!events.is_empty(), "fault plan never fired");
        assert!(
            events.iter().any(|e| e.worker.is_some()),
            "no event recorded a pool worker id: {events:?}"
        );
        assert!(events.iter().any(|e| e.source == "db1"), "db1 write timeouts never fired");

        // The web-service breaker tripped at least once.
        assert!(
            resilience
                .lock()
                .transitions()
                .iter()
                .any(|t| t.source == "CreditRating"
                    && t.from == BreakerState::Closed
                    && t.to == BreakerState::Open),
            "CreditRating breaker never opened: {:?}",
            resilience.lock().transitions()
        );

        // The coordinator crash: normally one of the pooled XA submits
        // hits it. If the chaos happened to fail every pooled XA
        // submit *before* the decision point, drive one from here so
        // the recovery half of the test stays meaningful — the
        // CrashPoint budget is still armed in the shared injector.
        let crashed_in_pool =
            events.iter().any(|e| matches!(e.injected, Injected::Crash));
        if !crashed_in_pool {
            let g = d
                .space
                .get("CustomerProfile", "getProfileById", vec![Sequence::one(Item::string("7"))])
                .unwrap();
            g.set_value(0, &["LAST_NAME"], "XA-7").unwrap();
            g.set_value(0, &["CreditCards", "CREDIT_CARD", "BRAND"], "XA-7").unwrap();
            let err = d.space.submit(&g).unwrap_err();
            assert_eq!(AldspCode::of(&err), Some(AldspCode::XaCoordCrash));
        }
        assert!(!journal.is_clean(), "coordinator crash left no in-flight journal entry");

        // Recovery from a *fresh* coordinator over the shared journal,
        // exactly as a restarted middle tier would run it.
        let space2 =
            demo::assemble(&db1, &db2, WebService::credit_rating(demo::CREDIT_TYPES_NS)).unwrap();
        space2.set_journal(journal.clone());
        let stats = space2.recover().unwrap();
        assert!(
            stats.rolled_forward + stats.rolled_back >= 1,
            "recovery resolved nothing: {stats:?}"
        );
        assert!(journal.is_clean(), "journal still dirty after recovery");

        // Post-recovery atomicity: each XA marker is in both sources
        // or in neither.
        for cid in 7..=10 {
            let marker = format!("XA-{cid}");
            let cond = vec![("CID".to_string(), SqlValue::Int(cid as i64))];
            let cust = db1.select("CUSTOMER", &cond).unwrap();
            let card = db2.select("CREDIT_CARD", &cond).unwrap();
            let in_db1 = cust.iter().any(|r| r[2] == SqlValue::Str(marker.clone()));
            let in_db2 = card.iter().any(|r| r[3] == SqlValue::Str(marker.clone()));
            assert_eq!(
                in_db1, in_db2,
                "XA marker {marker} applied to one source only (db1={in_db1} db2={in_db2})"
            );
        }

        // Recovery is idempotent.
        let again = space2.recover().unwrap();
        assert_eq!((again.rolled_forward, again.rolled_back, again.in_doubt_found), (0, 0, 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// For read-only workloads the pool is semantically invisible:
        /// N workers over shard-locked shared sources return
        /// byte-identical results to the single-threaded engine, for
        /// any request mix and any worker count.
        #[test]
        fn serve_read_only_results_match_sequential(
            cids in proptest::collection::vec(1usize..=6, 1..10),
            workers in 1usize..=3,
        ) {
            let d = demo::build(6, 1, 1).unwrap();
            let expected: Vec<String> = cids
                .iter()
                .map(|cid| {
                    let g = d
                        .space
                        .get(
                            "CustomerProfile",
                            "getProfileById",
                            vec![Sequence::one(Item::string(cid.to_string()))],
                        )
                        .unwrap();
                    xqse_repro::xmlparse::serialize_sequence(g.instances())
                })
                .collect();

            let (db1, db2) = (d.db1.clone(), d.db2.clone());
            let pool = ServePool::start(ServeSpec::new(workers), move |_| {
                demo::assemble(&db1, &db2, WebService::credit_rating(demo::CREDIT_TYPES_NS))
            });
            let reqs: Vec<ServeRequest> = cids.iter().copied().map(get_req).collect();
            let (replies, _) = drive_closed_loop(&pool, &reqs, 2);
            pool.shutdown();

            for (reply, want) in replies.iter().zip(&expected) {
                let got = reply.result.as_ref().expect("pooled read failed");
                prop_assert_eq!(got, want);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Request budgets: deadline propagation, cooperative cancellation,
// and overload admission control (PR 8)
// ---------------------------------------------------------------------------
//
// Every request can carry a Budget (wall-clock deadline on a virtual
// or real clock, evaluation fuel, XDM allocation ceiling) that is
// checked cooperatively at evaluator steps, XQSE loop heads, source
// calls, and 2PC protocol points. The tests below pin down the two
// hard invariants: a budget can *never* split a distributed
// transaction (aborts are tidy and pre-decision only), and the pool's
// admission books always balance (completed + shed + cancelled =
// offered).

mod budget {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use super::*;
    use xqse_repro::aldsp::decompose::{self, DecompositionPlan};
    use xqse_repro::aldsp::pool::{
        drive_closed_loop, drive_open_loop, ServePool, ServeRequest, ServeSpec,
    };
    use xqse_repro::aldsp::rel::TxId;
    use xqse_repro::xqeval::budget::set_current_budget;
    use xqse_repro::xqeval::{Budget, BudgetClock};

    fn two_source_plan() -> DecompositionPlan {
        let ins = || WriteOp::Insert {
            table: "EMPLOYEE".into(),
            row: vec![SqlValue::Int(1), SqlValue::Str("Ann".into())],
        };
        DecompositionPlan {
            per_source: vec![
                ("primary".into(), vec![ins()]),
                ("backup".into(), vec![ins()]),
            ],
        }
    }

    fn rows(db: &Database) -> usize {
        db.row_count("EMPLOYEE").unwrap()
    }

    fn any_prepared(space: &DataSpace, dbs: &[&Database]) -> bool {
        space
            .journal()
            .scan()
            .keys()
            .any(|&xid| dbs.iter().any(|db| db.is_prepared(TxId(xid))))
    }

    /// A bounded XQSE counting loop; with enough fuel it terminates
    /// and returns `$n`, with less it dies at a loop head or eval
    /// step with `aldsp:FUEL_EXHAUSTED`.
    fn counting_loop(n: u64) -> String {
        format!(
            "{{ declare $i := 0; while ($i lt {n}) {{ set $i := $i + 1; }} \
             return value $i; }}"
        )
    }

    /// The cancel-at-every-protocol-point matrix (the budget twin of
    /// the crash matrix above): a `Stall` rule burns the request's
    /// deadline at one exact 2PC protocol point per case. Before the
    /// commit decision is journaled the coordinator must abort
    /// *tidily* — rollback prepared branches, journal `Aborted`,
    /// surface `aldsp:DEADLINE_EXCEEDED` — and after the decision the
    /// transaction must commit to completion no matter what the
    /// budget says. Either way there is never a committed branch
    /// without a journaled decision, recovery finds nothing in doubt,
    /// and a recovery pass is a no-op.
    #[test]
    fn budget_deadline_at_every_xa_point_never_splits_the_transaction() {
        let points: &[(&str, Op, bool)] = &[
            ("coordinator", Op::XaBegin, false),
            ("primary", Op::XaPrepared, false),
            ("backup", Op::XaPrepared, false),
            ("coordinator", Op::XaDecide, true),
            ("primary", Op::XaCommit, true),
            ("backup", Op::XaCommit, true),
        ];
        for (source, op, commits) in points {
            let (space, primary, backup) = replicated_space();
            space.install_fault_injector(FaultInjector::new(FaultPlan::new().rule(
                FaultRule::new(*source, *op, FaultKind::Stall(100)),
            )));
            let res = space.install_resilience(Resilience::new(Policy::default()));
            let budget = Arc::new(
                Budget::with_clock(res.lock().clock().budget_clock()).deadline_in(50),
            );
            set_current_budget(Some(budget.clone()));
            let outcome = decompose::execute(&space, two_source_plan());
            set_current_budget(None);

            if *commits {
                // Post-decision expiry: a half-committed transaction
                // is worse than a late one, so the commit completes.
                outcome.unwrap_or_else(|e| {
                    panic!("stall at {source}/{op} must still commit: {e:?}")
                });
                assert_eq!((rows(&primary), rows(&backup)), (1, 1), "at {source}/{op}");
            } else {
                let err = outcome.expect_err("pre-decision expiry must abort");
                assert_eq!(
                    AldspCode::of(&err),
                    Some(AldspCode::DeadlineExceeded),
                    "stall at {source}/{op}: {err:?}"
                );
                assert_eq!((rows(&primary), rows(&backup)), (0, 0), "at {source}/{op}");
            }
            assert!(
                !any_prepared(&space, &[&primary, &backup]),
                "{source}/{op}: prepared locks survived the budget verdict"
            );
            assert!(space.journal().is_clean(), "{source}/{op}: tx left unresolved");
            let stats = space.recover().unwrap();
            assert!(
                stats.is_noop(),
                "{source}/{op}: recovery found work after a tidy outcome: {stats:?}"
            );
        }
    }

    /// An externally cancelled request aborts at the first protocol
    /// point with `aldsp:CANCELLED` and releases everything.
    #[test]
    fn budget_precancelled_request_aborts_before_any_write() {
        let (space, primary, backup) = replicated_space();
        space.install_resilience(Resilience::new(Policy::default()));
        let budget = Arc::new(Budget::unlimited());
        budget.cancel();
        set_current_budget(Some(budget));
        let err = decompose::execute(&space, two_source_plan()).unwrap_err();
        set_current_budget(None);
        assert_eq!(AldspCode::of(&err), Some(AldspCode::Cancelled));
        assert_eq!((rows(&primary), rows(&backup)), (0, 0));
        assert!(!any_prepared(&space, &[&primary, &backup]));
        assert!(space.journal().is_clean());
        assert!(space.recover().unwrap().is_noop());
    }

    /// `aldsp:DEADLINE_EXCEEDED` is XQSE-catchable by exact name: an
    /// atomic block can observe its own deadline abort, knowing the
    /// underlying transaction unwound tidily (unlike XA_COORD_CRASH,
    /// which leaves in-doubt state for recovery).
    #[test]
    fn budget_deadline_is_xqse_catchable() {
        let (space, primary, backup) = replicated_space();
        let inj = space.install_fault_injector(FaultInjector::new(FaultPlan::new().rule(
            FaultRule::new("backup", Op::XaPrepared, FaultKind::Stall(200)),
        )));
        let res = space.install_resilience(Resilience::new(Policy::default()));
        let vclock = res.lock().clock();

        let journal = space.journal();
        let (pa, pb) = (primary.clone(), backup.clone());
        space.engine().register_external_procedure(
            QName::with_ns("urn:test", "slowSubmit"),
            0,
            false,
            std::rc::Rc::new(move |_env, _args| {
                // The request enters with 50ms left on its deadline.
                let budget = Arc::new(
                    Budget::with_clock(vclock.budget_clock()).deadline_in(50),
                );
                set_current_budget(Some(budget));
                let ins = WriteOp::Insert {
                    table: "EMPLOYEE".into(),
                    row: vec![SqlValue::Int(7), SqlValue::Str("Kim".into())],
                };
                let out = TwoPhaseCoordinator::new(vec![
                    (pa.clone(), vec![ins.clone()]),
                    (pb.clone(), vec![ins]),
                ])
                .run_journaled(&journal, Some(&inj), Some(&vclock));
                set_current_budget(None);
                match out? {
                    TxOutcome::Committed => Ok(Sequence::empty()),
                    TxOutcome::Aborted(e) => Err(e),
                }
            }),
        );

        let caught = space
            .xqse()
            .run(
                r#"
                declare namespace t = "urn:test";
                declare namespace aldsp = "urn:aldsp:errors";
                {
                  declare $out as xs:string := "clean";
                  try { t:slowSubmit(); }
                  catch (aldsp:DEADLINE_EXCEEDED into $err, $msg) {
                    set $out := fn:concat("late: ", $msg);
                  };
                  return value $out;
                }
                "#,
            )
            .unwrap();
        assert!(
            caught.string_value().unwrap().starts_with("late:"),
            "exact-name catch must match aldsp:DEADLINE_EXCEEDED"
        );

        // Tidy abort: no split writes, no in-doubt state to recover.
        assert_eq!((rows(&primary), rows(&backup)), (0, 0));
        assert!(space.journal().is_clean());
        assert!(space.recover().unwrap().is_noop());
    }

    /// `aldsp:FUEL_EXHAUSTED` is XQSE-catchable by exact name. The
    /// callee meters its own fuel allotment (the scoped sub-budget a
    /// nested service call runs under), so the outer, unbudgeted
    /// block can catch the exhaustion and degrade gracefully.
    #[test]
    fn budget_fuel_exhaustion_is_xqse_catchable() {
        let space = DataSpace::new();
        space.engine().register_external_procedure(
            QName::with_ns("urn:test", "meteredWork"),
            0,
            false,
            std::rc::Rc::new(move |_env, _args| {
                let fuel = Budget::unlimited().limit_fuel(64);
                loop {
                    fuel.step()?; // one unit of callee work
                }
            }),
        );
        let caught = space
            .xqse()
            .run(
                r#"
                declare namespace t = "urn:test";
                declare namespace aldsp = "urn:aldsp:errors";
                {
                  declare $out as xs:string := "finished";
                  try { t:meteredWork(); }
                  catch (aldsp:FUEL_EXHAUSTED into $err, $msg) {
                    set $out := "out of fuel";
                  };
                  return value $out;
                }
                "#,
            )
            .unwrap();
        assert_eq!(caught.string_value().unwrap(), "out of fuel");
    }

    /// Engine-level fuel: a runaway XQSE loop halts after exactly its
    /// fuel allotment of evaluation steps.
    #[test]
    fn budget_fuel_halts_a_runaway_xqse_loop() {
        let space = DataSpace::new();
        let budget = Arc::new(Budget::unlimited().limit_fuel(256));
        space.engine().force_budget(Some(budget.clone()));
        let err = space.xqse().run(&counting_loop(10_000_000)).unwrap_err();
        space.engine().force_budget(None);
        assert_eq!(AldspCode::of(&err), Some(AldspCode::FuelExhausted), "{err:?}");
        assert_eq!(budget.remaining_fuel(), Some(0));
        assert_eq!(budget.steps_taken(), 256, "fuel is one unit per eval step");
    }

    /// Engine-level deadline: the strided clock check in the hot loop
    /// halts a runaway evaluation once the deadline passes. The clock
    /// here ticks once per read, so expiry needs no wall-clock time.
    #[test]
    fn budget_deadline_halts_eval_on_a_ticking_clock() {
        let ticks = Arc::new(AtomicU64::new(0));
        let clock: BudgetClock = {
            let ticks = ticks.clone();
            Arc::new(move || ticks.fetch_add(1, Ordering::Relaxed))
        };
        let space = DataSpace::new();
        let budget = Arc::new(Budget::with_clock(clock).deadline_in(200));
        space.engine().force_budget(Some(budget.clone()));
        let err = space.xqse().run(&counting_loop(100_000_000)).unwrap_err();
        space.engine().force_budget(None);
        assert_eq!(AldspCode::of(&err), Some(AldspCode::DeadlineExceeded), "{err:?}");
        assert_eq!(budget.remaining_ms(), Some(0));
    }

    /// XDM allocation ceiling: node construction charges the budget,
    /// and exceeding it surfaces `aldsp:MEMORY_LIMIT`.
    #[test]
    fn budget_memory_limit_bounds_node_construction() {
        let space = DataSpace::new();
        let budget = Arc::new(Budget::unlimited().limit_memory(4));
        space.engine().force_budget(Some(budget.clone()));
        // Construction-aware accounting: `<A><B/></A>` costs two units
        // (one admission unit covering the root + one per extra node
        // record), so the 3rd tree breaches a 4-unit ceiling.
        let mut outcomes = Vec::new();
        for _ in 0..10 {
            outcomes.push(space.engine().eval_expr_str("<A><B/></A>", &[]));
        }
        space.engine().force_budget(None);
        assert_eq!(outcomes.iter().filter(|o| o.is_ok()).count(), 2);
        let err = outcomes.iter().find_map(|o| o.as_ref().err()).unwrap();
        assert_eq!(AldspCode::of(err), Some(AldspCode::MemoryLimit), "{err:?}");
        assert_eq!(budget.remaining_memory(), Some(0));
    }

    /// Interning-aware memory accounting: a tree assembled from an
    /// already-materialized subtree charges the *pointer* cost of the
    /// graft, not the deep node count — so the same query admits under
    /// a ceiling that the copy-always baseline breaches.
    #[test]
    fn budget_memory_charges_grafts_at_pointer_cost() {
        // Wrapping a 21-node prebuilt tree: graft-on charges
        // 1 admission + 1 pointer unit; copy-always charges
        // 1 admission + 21 copied node records.
        let query = "let $x := <r>{for $i in 1 to 10 return <v>{$i}</v>}</r> \
                     return <wrap>{$x}</wrap>";
        let charged = |graft: bool| -> u64 {
            let space = DataSpace::new();
            space.engine().set_graft(graft);
            let budget = Arc::new(Budget::unlimited().limit_memory(1_000_000));
            space.engine().force_budget(Some(budget.clone()));
            space.engine().eval_expr_str(query, &[]).unwrap();
            space.engine().force_budget(None);
            1_000_000 - budget.remaining_memory().unwrap()
        };
        let with_graft = charged(true);
        let without = charged(false);
        assert!(
            with_graft + 15 <= without,
            "grafted construction must charge far fewer memory units: \
             graft-on={with_graft} graft-off={without}"
        );
    }

    /// Overload admission control: a 1-worker pool with a 1-slot
    /// queue, offered 8-way concurrent load, sheds what it cannot
    /// absorb with `aldsp:OVERLOADED` *before* dispatch — and the
    /// books balance exactly: completed + shed + cancelled = offered.
    #[test]
    fn budget_overload_sheds_fast_and_the_books_balance() {
        let mut spec = ServeSpec::new(1);
        spec.queue_capacity = 1;
        let pool = ServePool::start(spec, |_| Ok(DataSpace::new()));
        let reqs: Vec<ServeRequest> = (0..64)
            .map(|_| ServeRequest::Run { program: counting_loop(400) })
            .collect();
        let (replies, _) = drive_open_loop(&pool, &reqs, 8);
        let report = pool.shutdown();

        assert_eq!(report.offered, 64);
        assert_eq!(
            report.completed + report.shed + report.cancelled,
            report.offered,
            "admission books must balance: {report:?}"
        );
        assert!(report.shed > 0, "a 1-slot queue under 8-way load must shed");
        let mut oks = 0u64;
        for reply in &replies {
            match &reply.result {
                Ok(v) => {
                    oks += 1;
                    assert!(v.contains("400"), "admitted request served fully: {v}");
                }
                Err(e) => assert_eq!(
                    AldspCode::of(e),
                    Some(AldspCode::Overloaded),
                    "sheds must fail fast with OVERLOADED: {e:?}"
                ),
            }
        }
        assert_eq!(oks, report.completed);
    }

    /// Per-request deadlines in the pool: with a 1ms deadline stamped
    /// at admission (queue wait counts against it) and a deliberately
    /// slow program, requests either complete, get shed at dispatch
    /// (`OVERLOADED`), or die mid-evaluation (`DEADLINE_EXCEEDED`) —
    /// and the per-class counters match the replies exactly.
    #[test]
    fn budget_pool_deadline_sheds_or_cancels_and_the_books_balance() {
        let pool = ServePool::start(
            ServeSpec::new(1).with_deadline_ms(1),
            |_| Ok(DataSpace::new()),
        );
        let reqs: Vec<ServeRequest> = (0..24)
            .map(|_| ServeRequest::Run { program: counting_loop(20_000) })
            .collect();
        let (replies, _) = drive_closed_loop(&pool, &reqs, 8);
        let report = pool.shutdown();

        let (mut oks, mut shed, mut dead) = (0u64, 0u64, 0u64);
        for reply in &replies {
            match &reply.result {
                Ok(_) => oks += 1,
                Err(e) => match AldspCode::of(e) {
                    Some(AldspCode::Overloaded) => shed += 1,
                    Some(AldspCode::DeadlineExceeded) => dead += 1,
                    other => panic!("unexpected outcome class {other:?}: {e:?}"),
                },
            }
        }
        assert_eq!(report.offered, 24);
        assert_eq!(report.completed + report.shed + report.cancelled, report.offered);
        assert_eq!((report.completed, report.shed, report.cancelled), (oks, shed, dead));
        assert!(
            shed + dead > 0,
            "a 1ms deadline over ~ms-long requests must expire somewhere"
        );
        // Worker-side budget outcomes surface in the aggregated
        // explain counters too.
        assert_eq!(report.stats.budget_deadline, dead);
    }

    /// A panicking request is contained: the caller gets a typed
    /// `aldsp:` error (not a hung channel), the worker survives to
    /// serve the next request, and shutdown still balances the books.
    /// Regression test for the worker-panic deadlock in
    /// `drive_closed_loop`.
    #[test]
    fn budget_worker_panic_yields_typed_error_and_pool_survives() {
        let pool = ServePool::start(ServeSpec::new(1), |_| {
            let space = DataSpace::new();
            space.engine().register_external_procedure(
                QName::with_ns("urn:test", "boom"),
                0,
                false,
                std::rc::Rc::new(|_env, _args| panic!("kaboom")),
            );
            Ok(space)
        });
        let crash = pool.call(ServeRequest::Run {
            program: "declare namespace t = \"urn:test\"; { t:boom(); return value 1; }"
                .into(),
        });
        let err = crash.result.unwrap_err();
        assert_eq!(AldspCode::of(&err), Some(AldspCode::SrcUnavailable));
        assert!(err.message.contains("panicked"), "{err:?}");

        // The worker is still alive and serving.
        let next = pool.call(ServeRequest::Run { program: counting_loop(42) });
        assert!(next.result.unwrap().contains("42"));

        let report = pool.shutdown();
        assert_eq!(report.offered, 2);
        assert_eq!(report.completed, 2, "a panic is an ordinary completed error");
    }

    /// The kill switch: this test asserts whichever behavior the
    /// process was launched under, so `scripts/check.sh` runs it both
    /// ways — plain (budgets enforced) and with
    /// `XQSE_DISABLE_BUDGETS=1` (pre-budget behavior restored: the
    /// same over-limit request simply runs to completion).
    #[test]
    fn budget_kill_switch_restores_unbudgeted_serving() {
        let enabled = xqse_repro::xqeval::budget::budgets_enabled();
        let pool = ServePool::start(
            ServeSpec::new(1).with_fuel(64),
            |_| Ok(DataSpace::new()),
        );
        let reply = pool.call(ServeRequest::Run { program: counting_loop(2_000) });
        let report = pool.shutdown();
        if enabled {
            let err = reply.result.unwrap_err();
            assert_eq!(AldspCode::of(&err), Some(AldspCode::FuelExhausted), "{err:?}");
            assert_eq!(report.cancelled, 1);
            assert_eq!(report.stats.budget_fuel, 1);
        } else {
            assert!(
                reply.result.unwrap().contains("2000"),
                "with XQSE_DISABLE_BUDGETS=1 the fuel spec must be inert"
            );
            assert_eq!(report.cancelled, 0);
            assert_eq!(report.completed, 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Whatever interrupts a budgeted XQSE script — fuel running
        /// out at an arbitrary evaluator step, a deadline burned by a
        /// stall at an arbitrary 2PC protocol point, or nothing at
        /// all — no partial write is ever visible: replicas agree
        /// row-for-row, no prepared locks survive, the journal is
        /// clean, and recovery is an idempotent no-op.
        #[test]
        fn budget_interruption_leaves_no_partial_writes(
            point in 0usize..6,
            stall in 0u32..200,
            deadline in 1u32..120,
            fuel in 50u32..4_000,
        ) {
            let (stall, deadline, fuel) = (stall as u64, deadline as u64, fuel as u64);
            let points = [
                ("coordinator", Op::XaBegin),
                ("primary", Op::XaPrepared),
                ("backup", Op::XaPrepared),
                ("coordinator", Op::XaDecide),
                ("primary", Op::XaCommit),
                ("backup", Op::XaCommit),
            ];
            let (stall_source, stall_op) = points[point];
            let (space, primary, backup) = replicated_space();
            let inj = space.install_fault_injector(FaultInjector::new(
                FaultPlan::new().rule(FaultRule::new(
                    stall_source,
                    stall_op,
                    FaultKind::Stall(stall),
                )),
            ));
            let res = space.install_resilience(Resilience::new(Policy::default()));
            let vclock = res.lock().clock();

            let journal = space.journal();
            let (pa, pb) = (primary.clone(), backup.clone());
            let next = Cell::new(0i64);
            let (inj2, vclock2) = (inj.clone(), vclock.clone());
            space.engine().register_external_procedure(
                QName::with_ns("urn:test", "xaSubmit"),
                0,
                false,
                std::rc::Rc::new(move |_env, _args| {
                    let id = next.get();
                    next.set(id + 1);
                    let ins = WriteOp::Insert {
                        table: "EMPLOYEE".into(),
                        row: vec![SqlValue::Int(id), SqlValue::Str("p".into())],
                    };
                    match TwoPhaseCoordinator::new(vec![
                        (pa.clone(), vec![ins.clone()]),
                        (pb.clone(), vec![ins]),
                    ])
                    .run_journaled(&journal, Some(&inj2), Some(&vclock2))?
                    {
                        TxOutcome::Committed => Ok(Sequence::empty()),
                        TxOutcome::Aborted(e) => Err(e),
                    }
                }),
            );

            let budget = Arc::new(
                Budget::with_clock(vclock.budget_clock())
                    .deadline_in(deadline)
                    .limit_fuel(fuel),
            );
            space.engine().force_budget(Some(budget));
            let _ = space.xqse().run(
                r#"
                declare namespace t = "urn:test";
                {
                  declare $i := 0;
                  while ($i lt 8) {
                    t:xaSubmit();
                    set $i := $i + 1;
                  }
                  return value $i;
                }
                "#,
            );
            space.engine().force_budget(None);

            let _ = space.recover();
            let (ra, rb) = (rows(&primary), rows(&backup));
            prop_assert_eq!(
                ra, rb,
                "partial apply (stall {}ms at {}/{}, deadline {}, fuel {})",
                stall, stall_source, stall_op, deadline, fuel
            );
            prop_assert!(ra <= 8);
            prop_assert!(!any_prepared(&space, &[&primary, &backup]));
            prop_assert!(space.journal().is_clean());
            let again = space.recover().unwrap();
            prop_assert!(again.is_noop(), "recovery not idempotent: {:?}", again);
        }
    }

    /// Budget overhead guard for the no-limit serving path: running
    /// the same workload with a fully armed budget (real-time
    /// deadline far in the future + fuel ceiling) must stay within 5%
    /// of running with no budget installed. Ignored by default
    /// (wall-clock measurement); the sixth `scripts/check.sh` arm
    /// runs it warn-only.
    #[test]
    #[ignore = "wall-clock guard; run via scripts/check.sh arm 6"]
    fn budget_overhead_guard_under_5pct() {
        use std::time::Instant;

        const ITERS: usize = 300;
        let program = counting_loop(600);
        let run = |budgeted: bool| -> f64 {
            let space = DataSpace::new();
            if budgeted {
                let t0 = Instant::now();
                let clock: BudgetClock =
                    Arc::new(move || t0.elapsed().as_millis() as u64);
                space.engine().force_budget(Some(Arc::new(
                    Budget::with_clock(clock)
                        .deadline_in(3_600_000)
                        .limit_fuel(u64::MAX / 4),
                )));
            }
            let start = Instant::now();
            for _ in 0..ITERS {
                space.xqse().run(&program).unwrap();
            }
            let elapsed = start.elapsed().as_secs_f64();
            space.engine().force_budget(None);
            elapsed
        };

        let _ = (run(false), run(true)); // warm-up
        let plain = (0..3).map(|_| run(false)).fold(f64::MAX, f64::min);
        let budgeted = (0..3).map(|_| run(true)).fold(f64::MAX, f64::min);
        let overhead = (budgeted - plain) / plain * 100.0;
        println!(
            "budget overhead: plain={plain:.4}s budgeted={budgeted:.4}s \
             overhead={overhead:.2}%"
        );
        assert!(
            overhead < 5.0,
            "budget overhead {overhead:.2}% exceeds the 5% budget \
             (plain={plain:.4}s budgeted={budgeted:.4}s)"
        );
    }
}

// ---------------------------------------------------------------------------
// Zero-copy construction: grafted subtrees vs. the deep-copy baseline
// ---------------------------------------------------------------------------

mod graft {
    use super::*;
    use proptest::collection;
    use xqse_repro::xmlparse::{serialize, serialize_sequence};

    const CUS_NS: &[(&str, &str)] = &[("c", "ld:db1/CUSTOMER")];

    /// Build a constructor-heavy query from random parameters: each
    /// part declares a small tree and splices it into the output
    /// twice (the reuse is what a graft must share without aliasing),
    /// alongside a full source read whose cached rows come from a
    /// sealed arena.
    fn build_query(parts: &[(u8, u8)]) -> String {
        let mut lets = String::new();
        let mut uses = String::new();
        for (i, (w, t)) in parts.iter().enumerate() {
            let kids: String = (0..(w % 3) + 1)
                .map(|k| format!("<k{k}>t{t}</k{k}>"))
                .collect();
            lets.push_str(&format!("let $v{i} := <p{i} a=\"x{t}\">{kids}</p{i}> "));
            uses.push_str(&format!("{{ $v{i} }}{{ $v{i}/k0 }}{{ $v{i} }}"));
        }
        format!(
            "{lets}return <out><rows>{{ c:CUSTOMER() }}</rows>\
             <again>{{ c:CUSTOMER() }}</again><mix>{uses}</mix></out>"
        )
    }

    fn descendant_count(n: &xqse_repro::xdm::node::NodeHandle) -> usize {
        1 + n.children().iter().map(descendant_count).sum::<usize>()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Metamorphic equivalence: the same construction evaluated
        /// with zero-copy grafting on and with the deep-copy baseline
        /// must be observably identical — serialized bytes, typed
        /// string value, and tree shape — while the grafting engine
        /// actually grafts (the optimization is live, not skipped).
        #[test]
        fn grafted_and_copied_construction_agree(
            parts in collection::vec((0u8..3, 0u8..4), 1..5)
        ) {
            let query = build_query(&parts);
            let run = |graft: bool| {
                let d = demo::build(4, 2, 1).unwrap();
                d.space.engine().set_graft(graft);
                let before = d.space.engine().opt_stats();
                let out = d.space.engine().eval_expr_str(&query, CUS_NS).unwrap();
                let stats = d.space.engine().opt_stats();
                (out, stats.subtrees_grafted - before.subtrees_grafted)
            };
            let (grafted, g_count) = run(true);
            let (copied, c_count) = run(false);
            prop_assert!(g_count > 0, "graft-on run must graft at least once");
            prop_assert_eq!(c_count, 0, "kill-switch run must never graft");
            prop_assert_eq!(
                serialize_sequence(&grafted),
                serialize_sequence(&copied),
                "serialized bytes must be mode-independent"
            );
            let (gn, cn) = (grafted.exactly_one().unwrap(), copied.exactly_one().unwrap());
            let (Item::Node(gn), Item::Node(cn)) = (gn, cn) else { panic!("node results") };
            prop_assert_eq!(gn.string_value(), cn.string_value());
            prop_assert_eq!(descendant_count(gn), descendant_count(cn));
            prop_assert!(gn.deep_equal(cn), "deep-equal across modes");
        }
    }

    /// Two splices of the same tree are distinct logical nodes: each
    /// graft view has its own identity, both parent into the host,
    /// and the trees compare deep-equal.
    #[test]
    fn repeated_splices_are_distinct_logical_nodes() {
        let d = demo::build(2, 1, 1).unwrap();
        d.space.engine().set_graft(true);
        let out = d
            .space
            .engine()
            .eval_expr_str("let $x := <a><b>v</b></a> return <o>{$x}{$x}</o>", &[])
            .unwrap();
        let Item::Node(o) = out.exactly_one().unwrap().clone() else { panic!() };
        let kids = o.children();
        assert_eq!(kids.len(), 2);
        assert_ne!(kids[0], kids[1], "two splices are two logical nodes");
        assert!(kids[0].deep_equal(&kids[1]));
        assert_eq!(kids[0].parent().as_ref(), Some(&o));
        assert_eq!(kids[1].parent().as_ref(), Some(&o));
        assert_eq!(serialize(&o), "<o><a><b>v</b></a><a><b>v</b></a></o>");
    }

    /// A spliced variable keeps its own standalone identity: after the
    /// construction, the original is still parentless, in both modes.
    #[test]
    fn original_tree_stays_parentless_after_splice() {
        for graft in [true, false] {
            let d = demo::build(2, 1, 1).unwrap();
            d.space.engine().set_graft(graft);
            let out = d
                .space
                .engine()
                .eval_expr_str(
                    "let $x := <a/> let $y := <o>{$x}</o> return $x/parent::node()",
                    &[],
                )
                .unwrap();
            assert!(out.is_empty(), "graft={graft}: original must stay parentless");
        }
    }

    /// Copy-on-write isolation: mutating a constructed tree that
    /// grafted a cached source row must not leak into the source
    /// cache — a later read serves the pristine bytes — while the
    /// mutation is visible in the constructed tree.
    #[test]
    fn mutating_grafted_result_leaves_source_cache_pristine() {
        let d = demo::build(3, 1, 1).unwrap();
        let engine = d.space.engine();
        engine.set_graft(true);
        let baseline =
            serialize_sequence(&engine.eval_expr_str("c:CUSTOMER()", CUS_NS).unwrap());

        let out = engine
            .eval_expr_str("<wrap>{ c:CUSTOMER() }</wrap>", CUS_NS)
            .unwrap();
        let Item::Node(wrap) = out.exactly_one().unwrap().clone() else { panic!() };
        let before = engine.opt_stats();
        assert!(before.subtrees_grafted > 0, "cached rows must graft");

        // Mutate the first grafted row through the constructed tree.
        let row = wrap.children()[0].clone();
        let extra = xqse_repro::xdm::node::NodeHandle::new_element(
            row.arena(),
            QName::new("INJECTED"),
        );
        row.append_child(&extra).unwrap();
        assert!(
            serialize(&wrap).contains("<INJECTED/>"),
            "mutation visible through the host tree"
        );

        // The cache (and any other reader) still serves pristine rows.
        let after =
            serialize_sequence(&engine.eval_expr_str("c:CUSTOMER()", CUS_NS).unwrap());
        assert_eq!(baseline, after, "source cache corrupted by COW leak");
    }

    /// Pool soak: replies served by the engine-per-worker pool with
    /// grafting on are byte-identical to a single-engine deep-copy
    /// evaluation of the same reads.
    #[test]
    fn pool_replies_byte_identical_to_copy_baseline() {
        use xqse_repro::aldsp::pool::{drive_closed_loop, ServeArg, ServePool, ServeRequest, ServeSpec};
        use xqse_repro::aldsp::WebService;

        const CUSTOMERS: usize = 8;
        let d = demo::build(CUSTOMERS, 2, 1).unwrap();
        let (db1, db2) = (d.db1.clone(), d.db2.clone());
        let pool = ServePool::start(ServeSpec::new(4), move |_worker| {
            let space =
                demo::assemble(&db1, &db2, WebService::credit_rating(demo::CREDIT_TYPES_NS));
            // Force grafting on so the engagement assert below holds even
            // when the suite runs under XQSE_DISABLE_GRAFT=1 (check.sh's
            // kill-switch arm); the copy oracle below is env-independent.
            if let Ok(s) = &space {
                s.engine().set_graft(true);
            }
            space
        });
        let reqs: Vec<ServeRequest> = (1..=CUSTOMERS)
            .cycle()
            .take(CUSTOMERS * 3)
            .map(|cid| ServeRequest::Get {
                service: "CustomerProfile".into(),
                method: "getProfileById".into(),
                args: vec![ServeArg::Str(cid.to_string())],
            })
            .collect();
        let (replies, _) = drive_closed_loop(&pool, &reqs, 4);
        let report = pool.shutdown();
        assert!(
            report.stats.subtrees_grafted > 0,
            "pool workers must graft: {:?}",
            report.stats
        );

        // Deep-copy oracle on a private engine.
        d.space.engine().set_graft(false);
        for (i, reply) in replies.iter().enumerate() {
            let cid = (i % CUSTOMERS) + 1;
            let got = reply.result.as_ref().unwrap();
            let graph = d
                .space
                .get(
                    "CustomerProfile",
                    "getProfileById",
                    vec![Sequence::one(Item::string(cid.to_string()))],
                )
                .unwrap();
            let want = serialize_sequence(graph.instances());
            assert_eq!(got, &want, "reply {i} (cid {cid}) diverged from copy baseline");
        }
    }
}
