//! End-to-end tests of the paper's running example: the Figure-3
//! `getProfile()` read service verified against a brute-force oracle,
//! and the Figure-4 disconnected update cycle.

use xqse_repro::aldsp::decompose::OccPolicy;
use xqse_repro::aldsp::demo;
use xqse_repro::aldsp::rel::SqlValue;
use xqse_repro::aldsp::ws::credit_score;
use xqse_repro::xdm::sequence::{Item, Sequence};
use xqse_repro::xmlparse::serialize;

/// Compute what getProfile must return, straight from the raw tables.
fn oracle_profile(d: &demo::Demo, cid: i64) -> (String, Vec<i64>, Vec<i64>, u32) {
    let cust = d
        .db1
        .select("CUSTOMER", &vec![("CID".into(), SqlValue::Int(cid))])
        .unwrap();
    let last = cust[0][2].lexical();
    let ssn = cust[0][3].lexical();
    let mut orders: Vec<i64> = d
        .db1
        .select("ORDER", &vec![("CID".into(), SqlValue::Int(cid))])
        .unwrap()
        .iter()
        .map(|r| match r[0] {
            SqlValue::Int(i) => i,
            _ => panic!(),
        })
        .collect();
    orders.sort_unstable();
    let mut cards: Vec<i64> = d
        .db2
        .select("CREDIT_CARD", &vec![("CID".into(), SqlValue::Int(cid))])
        .unwrap()
        .iter()
        .map(|r| match r[0] {
            SqlValue::Int(i) => i,
            _ => panic!(),
        })
        .collect();
    cards.sort_unstable();
    let rating = credit_score(&ssn, &last);
    (last, orders, cards, rating)
}

#[test]
fn getprofile_matches_brute_force_oracle() {
    let d = demo::build(7, 3, 2).unwrap();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    assert_eq!(g.len(), 7);
    for i in 0..7usize {
        let cid: i64 = g.get_value(i, &["CID"]).unwrap().parse().unwrap();
        let (last, orders, cards, rating) = oracle_profile(&d, cid);
        assert_eq!(g.get_value(i, &["LAST_NAME"]).unwrap(), last);
        // Orders: same OIDs.
        let inst = g.instance(i).unwrap();
        let got_orders: Vec<i64> = inst
            .children()
            .iter()
            .find(|c| c.name().map(|q| q.local.clone()).as_deref() == Some("Orders"))
            .unwrap()
            .children()
            .iter()
            .map(|o| {
                o.children()
                    .iter()
                    .find(|x| x.name().map(|q| q.local.clone()).as_deref() == Some("OID"))
                    .unwrap()
                    .string_value()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert_eq!(got_orders, orders);
        let got_cards: Vec<i64> = inst
            .children()
            .iter()
            .find(|c| c.name().map(|q| q.local.clone()).as_deref() == Some("CreditCards"))
            .unwrap()
            .children()
            .iter()
            .map(|o| {
                o.children()
                    .iter()
                    .find(|x| {
                        x.name().map(|q| q.local.clone()).as_deref() == Some("CCID")
                    })
                    .unwrap()
                    .string_value()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert_eq!(got_cards, cards);
        let got_rating: u32 = g.get_value(i, &["CreditRating"]).unwrap().parse().unwrap();
        assert_eq!(got_rating, rating, "web-service call must be per-customer");
    }
}

#[test]
fn getprofile_by_id_equals_filtered_getprofile() {
    let d = demo::build(5, 2, 1).unwrap();
    let all = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    for cid in 1..=5 {
        let one = d
            .space
            .get(
                "CustomerProfile",
                "getProfileById",
                vec![Sequence::one(Item::string(cid.to_string()))],
            )
            .unwrap();
        assert_eq!(one.len(), 1);
        let idx = (cid - 1) as usize;
        let a = serialize(&one.instance(0).unwrap());
        let b = serialize(&all.instance(idx).unwrap());
        assert_eq!(a, b, "getProfileById({cid}) must equal the filtered primary read");
    }
    // Missing id → empty.
    let none = d
        .space
        .get(
            "CustomerProfile",
            "getProfileById",
            vec![Sequence::one(Item::string("404"))],
        )
        .unwrap();
    assert!(none.is_empty());
}

#[test]
fn figure4_full_cycle_carrey_to_carey() {
    // The literal Figure-4 story.
    let d = demo::build(1, 1, 1).unwrap();
    // Seed the misspelled name.
    d.db1
        .execute(vec![xqse_repro::aldsp::rel::WriteOp::Update {
            table: "CUSTOMER".into(),
            set: vec![("LAST_NAME".into(), SqlValue::Str("Carrey".into()))],
            cond: vec![("CID".into(), SqlValue::Int(1))],
            expect_rows: 1,
        }])
        .unwrap();
    // Client: get, fix the typo, submit.
    let profile = d
        .space
        .get(
            "CustomerProfile",
            "getProfileById",
            vec![Sequence::one(Item::string("1"))],
        )
        .unwrap();
    assert_eq!(profile.get_value(0, &["LAST_NAME"]).unwrap(), "Carrey");
    profile.set_value(0, &["LAST_NAME"], "Carey").unwrap();
    // The datagraph on the wire matches Figure 4's structure.
    let dg = serialize(&profile.to_datagraph_xml().unwrap());
    assert!(dg.contains("<sdo:datagraph xmlns:sdo=\"commonj.sdo\">"));
    assert!(dg.contains("<changeSummary>"));
    assert!(dg.contains("<LAST_NAME>Carrey</LAST_NAME>")); // old value
    assert!(dg.contains("<LAST_NAME>Carey</LAST_NAME>")); // new value
    d.space.submit(&profile).unwrap();
    let rows = d
        .db1
        .select("CUSTOMER", &vec![("CID".into(), SqlValue::Int(1))])
        .unwrap();
    assert_eq!(rows[0][2], SqlValue::Str("Carey".into()));
}

#[test]
fn submitting_unchanged_graph_is_a_noop() {
    let d = demo::build(2, 1, 1).unwrap();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    let (commits_before, _) = d.db1.stats();
    d.space.submit(&g).unwrap();
    let (commits_after, _) = d.db1.stats();
    assert_eq!(commits_before, commits_after);
    assert!(d.space.last_decomposition.borrow().is_empty());
}

#[test]
fn occ_policies_round_trip_through_platform() {
    for policy in [
        OccPolicy::ReadValues,
        OccPolicy::UpdatedValues,
        OccPolicy::ChosenSubset(vec!["SSN".into()]),
    ] {
        let d = demo::build(2, 1, 1).unwrap();
        // SSN must be exposed by the shape for the subset policy —
        // it is not (Figure 3 doesn't project it), so expect the
        // subset policy to fail with DSP0002, and the others to work.
        d.space.set_occ_policy("CustomerProfile", policy.clone()).unwrap();
        let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
        g.set_value(0, &["LAST_NAME"], "New").unwrap();
        let result = d.space.submit(&g);
        match policy {
            OccPolicy::ChosenSubset(_) => {
                let err = result.unwrap_err();
                assert!(err.is(xqse_repro::xdm::error::ErrorCode::DSP0002));
            }
            _ => result.unwrap(),
        }
    }
}

#[test]
fn updates_visible_to_subsequent_reads() {
    let d = demo::build(2, 1, 1).unwrap();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    g.set_value(1, &["FIRST_NAME"], "Rewritten").unwrap();
    d.space.submit(&g).unwrap();
    let g2 = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    assert_eq!(g2.get_value(1, &["FIRST_NAME"]).unwrap(), "Rewritten");
}

#[test]
fn repeated_getprofile_reads_coalesce_ws_calls() {
    // The E1 win mechanism: every customer's SSN is unique, so within
    // one evaluation each credit rating is fetched once — but across
    // repeated reads of the profile, the read-through response cache
    // answers without invoking the service handler again. The new
    // counters make the reduction assertable.
    let d = demo::build(12, 2, 1).unwrap();
    let eng = d.space.engine();
    // Pin the layer on: CI re-runs this suite under the kill switches.
    eng.set_optimize(true);
    eng.set_batch(true);
    eng.reset_opt_stats();
    let reps = 12u64;
    for _ in 0..reps {
        d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    }
    let s = eng.opt_stats();
    assert_eq!(s.ws_requests, 12 * reps, "one request per customer per rep");
    assert_eq!(s.ws_issued, 12, "handlers paid only on the first rep");
    assert!(
        s.ws_requests / s.ws_issued >= 10,
        "expected >= 10x handler-call reduction, got {}/{}",
        s.ws_requests,
        s.ws_issued
    );
    assert_eq!(s.ws_coalesced, 12 * (reps - 1), "later reps fully coalesced");
}

#[test]
fn getprofile_agrees_with_batching_disabled() {
    // Kill-switch equivalence: the batched/coalesced read must return
    // exactly what the plain per-call path returns.
    let batched = demo::build(9, 3, 2).unwrap();
    batched.space.engine().set_optimize(true);
    batched.space.engine().set_batch(true);
    let g1 = batched.space.get("CustomerProfile", "getProfile", vec![]).unwrap();

    let plain = demo::build(9, 3, 2).unwrap();
    plain.space.engine().set_batch(false);
    let g2 = plain.space.get("CustomerProfile", "getProfile", vec![]).unwrap();

    assert_eq!(g1.len(), g2.len());
    for i in 0..g1.len() {
        assert_eq!(
            serialize(&g1.instance(i).unwrap()),
            serialize(&g2.instance(i).unwrap())
        );
    }
    let s = plain.space.engine().opt_stats();
    assert_eq!(s.ws_coalesced, 0, "disabled layer never coalesces");
    assert_eq!(s.ws_requests, s.ws_issued, "every request pays a call");
}

/// The zero-copy construction layer must actually engage on the
/// paper's running example: building Figure 3's profile trees grafts
/// subtrees and hits the name interner, and the kill switch restores
/// copy-always behavior with identical output.
#[test]
fn zero_copy_counters_engage_on_getprofile() {
    let d = demo::build(6, 3, 2).unwrap();
    let engine = d.space.engine();
    // Grafting on regardless of XQSE_DISABLE_GRAFT, so this engagement
    // test still holds in check.sh's kill-switch arm (which exists to
    // prove the *copy* semantics, re-checked below, not to veto grafts).
    engine.set_graft(true);

    let before = engine.opt_stats();
    let on = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    let after = engine.opt_stats();
    assert!(
        after.subtrees_grafted > before.subtrees_grafted,
        "getProfile must graft constructed subtrees: {after:?}"
    );
    assert!(
        after.deep_copy_nodes_avoided > before.deep_copy_nodes_avoided,
        "grafts must avoid deep copies: {after:?}"
    );
    assert!(
        after.interned_hits > before.interned_hits,
        "repeated names must hit the interner: {after:?}"
    );
    assert!(after.nodes_built > before.nodes_built);

    // Kill switch: no grafts, byte-identical output.
    engine.set_graft(false);
    let base = engine.opt_stats();
    let off = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    let end = engine.opt_stats();
    engine.set_graft(true);
    assert_eq!(
        end.subtrees_grafted, base.subtrees_grafted,
        "kill switch must not graft"
    );
    assert_eq!(
        xqse_repro::xmlparse::serialize_sequence(on.instances()),
        xqse_repro::xmlparse::serialize_sequence(off.instances()),
        "graft on/off must serialize identically"
    );
}
