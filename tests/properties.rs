//! Property-based tests (proptest) over the invariants DESIGN.md §8
//! calls out: serializer∘parser identity, document order totality,
//! decimal arithmetic laws, iterate/for agreement, while-loop closed
//! forms, PUL behaviour, and 2PC atomicity.

use proptest::prelude::*;

use xqse_repro::aldsp::rel::{
    Column, ColumnType, CrashPoint, Database, SqlValue, TableSchema,
    TwoPhaseCoordinator, TxOutcome, WriteOp,
};
use xqse_repro::xdm::decimal::Decimal;
use xqse_repro::xdm::node::{NodeHandle, NodeKind};
use xqse_repro::xdm::qname::QName;
use xqse_repro::xmlparse::{parse, serialize};
use xqse_repro::xqse::Xqse;

// ------------------------------------------------- XML tree generator

/// A recursive tree model we can render to XML and compare.
#[derive(Debug, Clone)]
enum TreeNode {
    Element { name: String, attrs: Vec<(String, String)>, children: Vec<TreeNode> },
    Text(String),
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,6}".prop_map(|s| s)
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Includes XML-hostile characters that must round-trip via
    // escaping; excludes raw control chars.
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('<'),
            Just('&'),
            Just('>'),
            Just('"'),
            Just('\''),
            Just('é'),
            Just(' '),
            Just('{'),
        ],
        1..12,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

fn tree_strategy() -> impl Strategy<Value = TreeNode> {
    let leaf = prop_oneof![
        text_strategy().prop_map(TreeNode::Text),
        name_strategy().prop_map(|n| TreeNode::Element {
            name: n,
            attrs: vec![],
            children: vec![]
        }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, mut attrs, children)| {
                // Attribute names must be unique.
                attrs.sort_by(|a, b| a.0.cmp(&b.0));
                attrs.dedup_by(|a, b| a.0 == b.0);
                TreeNode::Element { name, attrs, children }
            })
    })
}

fn build_tree(t: &TreeNode, arena: &xqse_repro::xdm::node::SharedArena) -> NodeHandle {
    match t {
        TreeNode::Text(s) => NodeHandle::new_text(arena, s.clone()),
        TreeNode::Element { name, attrs, children } => {
            let e = NodeHandle::new_element(arena, QName::new(name.clone()));
            for (an, av) in attrs {
                e.set_attribute(&NodeHandle::new_attribute(
                    arena,
                    QName::new(an.clone()),
                    av.clone(),
                ))
                .unwrap();
            }
            for c in children {
                let cn = build_tree(c, arena);
                e.append_child(&cn).unwrap();
            }
            e
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse(serialize(t)) is structurally equal to t.
    #[test]
    fn xml_serialize_parse_round_trip(t in tree_strategy()) {
        // Ensure a single element root.
        let root = match t {
            e @ TreeNode::Element { .. } => e,
            other => TreeNode::Element {
                name: "root".into(),
                attrs: vec![],
                children: vec![other],
            },
        };
        let arena = xqse_repro::xdm::node::NodeArena::new();
        let node = build_tree(&root, &arena);
        let xml = serialize(&node);
        let doc = parse(&xml).unwrap();
        let back = doc
            .children()
            .into_iter()
            .find(|c| c.kind() == NodeKind::Element)
            .unwrap();
        prop_assert!(node.deep_equal(&back), "{xml}");
    }

    /// Document order is a strict total order consistent over any pair
    /// of nodes from the same tree.
    #[test]
    fn document_order_is_total_and_antisymmetric(t in tree_strategy()) {
        let arena = xqse_repro::xdm::node::NodeArena::new();
        let node = build_tree(&t, &arena);
        let mut all = vec![node.clone()];
        all.extend(node.descendants());
        for a in &all {
            for b in &all {
                let ab = a.document_order(b);
                let ba = b.document_order(a);
                prop_assert_eq!(ab, ba.reverse());
                prop_assert_eq!(ab == std::cmp::Ordering::Equal, a == b);
            }
        }
        // Transitivity on the sorted sequence.
        let mut sorted = all.clone();
        sorted.sort_by(|x, y| x.document_order(y));
        for w in sorted.windows(2) {
            prop_assert_ne!(
                w[0].document_order(&w[1]),
                std::cmp::Ordering::Greater
            );
        }
    }

    /// Decimal arithmetic: exactness and ring laws on bounded inputs.
    #[test]
    fn decimal_ring_laws(
        a in -1_000_000i64..1_000_000,
        b in -1_000_000i64..1_000_000,
        c in -1000i64..1000,
        scale in 0u32..4,
    ) {
        let d = |m: i64| Decimal::from_parts(m as i128, scale);
        let (da, db, dc) = (d(a), d(b), d(c));
        // Commutativity and associativity of +.
        prop_assert_eq!(
            da.checked_add(db).unwrap(),
            db.checked_add(da).unwrap()
        );
        prop_assert_eq!(
            da.checked_add(db).unwrap().checked_add(dc).unwrap(),
            da.checked_add(db.checked_add(dc).unwrap()).unwrap()
        );
        // Distributivity of * over +.
        prop_assert_eq!(
            dc.checked_mul(da.checked_add(db).unwrap()).unwrap(),
            dc.checked_mul(da).unwrap().checked_add(dc.checked_mul(db).unwrap()).unwrap()
        );
        // Subtraction inverts addition.
        prop_assert_eq!(
            da.checked_add(db).unwrap().checked_sub(db).unwrap(),
            da
        );
        // Parse/display round trip.
        let s = da.to_string();
        prop_assert_eq!(Decimal::parse(&s).unwrap(), da);
    }

    /// `iterate … over $s` with a pure accumulator body computes the
    /// same result as the XQuery `for` expression.
    #[test]
    fn iterate_agrees_with_for(values in proptest::collection::vec(-100i64..100, 0..12)) {
        let seq = values
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let seq = if seq.is_empty() { "()".to_string() } else { format!("({seq})") };
        let xqse = Xqse::new();
        let imperative = xqse
            .run(&format!(
                "{{ declare $acc := (); \
                   iterate $v over {seq} {{ set $acc := ($acc, $v * 2); }} \
                   return value $acc; }}"
            ))
            .unwrap();
        let declarative = xqse
            .run(&format!("for $v in {seq} return $v * 2"))
            .unwrap();
        prop_assert_eq!(
            imperative.atomized().iter().map(|a| a.string_value()).collect::<Vec<_>>(),
            declarative.atomized().iter().map(|a| a.string_value()).collect::<Vec<_>>()
        );
    }

    /// The while-loop doubling program matches its closed form.
    #[test]
    fn while_loop_closed_form(start in 1i64..50, limit in 1i64..10_000) {
        let xqse = Xqse::new();
        let out = xqse
            .run(&format!(
                "{{ declare $x := {start}, $n := 0; \
                   while ($x lt {limit}) {{ set $x := $x * 2; set $n := $n + 1; }} \
                   return value $n; }}"
            ))
            .unwrap();
        let got: i64 = out.string_value().unwrap().parse().unwrap();
        // Closed form: smallest n with start * 2^n >= limit.
        let mut expect = 0i64;
        let mut x = start;
        while x < limit {
            x *= 2;
            expect += 1;
        }
        prop_assert_eq!(got, expect);
    }

    /// OCC (UpdatedValues) never applies a lost update: when a
    /// concurrent writer changes the same column between read and
    /// submit, the submit must fail and the writer's value must
    /// survive.
    #[test]
    fn occ_never_loses_updates(theirs in "[a-z]{1,8}", mine in "[A-Z]{1,8}") {
        let d = xqse_repro::aldsp::demo::build(1, 0, 0).unwrap();
        let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
        let original = g.get_value(0, &["LAST_NAME"]).unwrap();
        g.set_value(0, &["LAST_NAME"], &mine).unwrap();
        d.db1
            .execute(vec![WriteOp::Update {
                table: "CUSTOMER".into(),
                set: vec![("LAST_NAME".into(), SqlValue::Str(theirs.clone()))],
                cond: vec![("CID".into(), SqlValue::Int(1))],
                expect_rows: 1,
            }])
            .unwrap();
        let submit = d.space.submit(&g);
        let now = d
            .db1
            .select("CUSTOMER", &vec![("CID".into(), SqlValue::Int(1))])
            .unwrap()[0][2]
            .lexical();
        if theirs == original {
            // The "concurrent" write was a no-op value-wise; ours wins.
            prop_assert!(submit.is_ok());
            prop_assert_eq!(now, mine);
        } else {
            prop_assert!(submit.is_err());
            prop_assert_eq!(now, theirs);
        }
    }

    /// 2PC atomicity holds for arbitrary op mixes and crash points.
    #[test]
    fn two_phase_commit_is_atomic(
        crash_idx in 0usize..4,
        key in 1i64..100,
        poison in proptest::bool::ANY,
    ) {
        let crash = [
            None,
            Some(CrashPoint::AfterFirstPrepare),
            Some(CrashPoint::AfterAllPrepares),
            Some(CrashPoint::AfterFirstCommit),
        ][crash_idx];
        let mk = |name: &str| {
            let db = Database::new(name);
            db.create_table(TableSchema {
                name: "T".into(),
                columns: vec![Column::required("K", ColumnType::Integer)],
                primary_key: vec!["K".into()],
                foreign_keys: vec![],
            })
            .unwrap();
            db
        };
        let a = mk("a");
        let b = mk("b");
        if poison {
            // Make b's branch fail at prepare.
            b.insert("T", vec![SqlValue::Int(key)]).unwrap();
        }
        let ins = |k| WriteOp::Insert { table: "T".into(), row: vec![SqlValue::Int(k)] };
        let (outcome, _) = TwoPhaseCoordinator::new(vec![
            (a.clone(), vec![ins(key)]),
            (b.clone(), vec![ins(key)]),
        ])
        .run_with_crash(crash);
        let a_has = !a.select("T", &vec![("K".into(), SqlValue::Int(key))]).unwrap().is_empty();
        let b_count = b.select("T", &vec![("K".into(), SqlValue::Int(key))]).unwrap().len();
        match outcome {
            TxOutcome::Committed => {
                prop_assert!(!poison);
                prop_assert!(a_has);
                prop_assert_eq!(b_count, 1);
            }
            TxOutcome::Aborted(_) => {
                prop_assert!(!a_has, "aborted tx must leave no trace in a");
                prop_assert_eq!(b_count, poison as usize, "only the poison row may exist");
            }
        }
    }

    /// Tokenize then string-join with the same separator restores any
    /// separator-free-token string (fn library consistency).
    #[test]
    fn tokenize_join_inverse(tokens in proptest::collection::vec("[a-z]{1,5}", 1..6)) {
        let joined = tokens.join(",");
        let xqse = Xqse::new();
        let out = xqse
            .run(&format!(
                "fn:string-join(fn:tokenize('{joined}', ','), ',')"
            ))
            .unwrap();
        prop_assert_eq!(out.string_value().unwrap(), joined);
    }

    /// Arbitrary integer arithmetic agrees with Rust evaluation.
    #[test]
    fn arithmetic_oracle(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let xqse = Xqse::new();
        let out = xqse.run(&format!("({a}) + ({b}) * 2 - ({a}) idiv 7")).unwrap();
        let got: i64 = out.string_value().unwrap().parse().unwrap();
        // XQuery idiv truncates toward zero, like Rust's /.
        prop_assert_eq!(got, a + b * 2 - a / 7);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The XML parser never panics on arbitrary input — it either
    /// parses or returns an error.
    #[test]
    fn xml_parser_never_panics(input in "\\PC{0,64}") {
        let _ = parse(&input);
    }

    /// Arbitrary near-XML soup (angle brackets, braces, quotes).
    #[test]
    fn xml_parser_never_panics_on_markup_soup(
        input in proptest::collection::vec(
            prop_oneof![
                Just("<"), Just(">"), Just("/"), Just("a"), Just("="),
                Just("\""), Just("&"), Just(";"), Just("<a>"), Just("</a>"),
                Just("<![CDATA["), Just("]]>"), Just("<!--"), Just("-->"),
                Just("xmlns"), Just(":"), Just("é"),
            ],
            0..24,
        )
    ) {
        let _ = parse(&input.concat());
    }

    /// The XQuery/XQSE parser never panics on arbitrary input.
    #[test]
    fn xq_parser_never_panics(input in "\\PC{0,64}") {
        let _ = xqse_repro::xqparser::parse_module(&input);
    }

    /// Token soup built from real language fragments.
    #[test]
    fn xq_parser_never_panics_on_token_soup(
        input in proptest::collection::vec(
            prop_oneof![
                Just("{"), Just("}"), Just("("), Just(")"), Just(";"),
                Just("declare"), Just("$x"), Just(":="), Just("while"),
                Just("iterate"), Just("over"), Just("return"), Just("value"),
                Just("try"), Just("catch"), Just("<a>"), Just("</a>"),
                Just("for"), Just("in"), Just("1"), Just("'s'"), Just("fn:data"),
                Just("procedure"), Just("if"), Just("then"), Just("else"),
                Just("(:"), Just(":)"), Just("§"), Just(".."), Just("@"),
            ],
            0..20,
        )
    ) {
        let _ = xqse_repro::xqparser::parse_module(&input.join(" "));
    }

    /// The regex engine never panics on arbitrary patterns.
    #[test]
    fn regex_never_panics(pattern in "\\PC{0,24}", text in "\\PC{0,24}") {
        if let Ok(rx) = xqse_repro::xqeval::regex_lite::Regex::compile(&pattern) {
            let _ = rx.is_match(&text);
            let _ = rx.tokenize(&text);
        }
    }
}

// ------------------------------------------- batched WS equivalence

/// One deterministic fault shape for the credit-rating service. All
/// variants are chosen so that, with warm response caches, every
/// access — batched or sequential — is guaranteed to succeed: the
/// retryable kinds stay within the policy's retry budget, and
/// `Permanent` outages degrade to stale cache reads.
#[derive(Debug, Clone)]
enum WsFault {
    /// `FailNTimes(k)`, k <= max_retries: absorbed by retry.
    FailN(u32),
    /// Capped timeout faults: absorbed by retry.
    TimeoutN(u32),
    /// Injected latency (may or may not exceed the timeout budget).
    Slow { ms: u64, times: u32 },
}

fn ws_fault_strategy() -> impl Strategy<Value = WsFault> {
    prop_oneof![
        (1u32..=3).prop_map(WsFault::FailN),
        (1u32..=3).prop_map(WsFault::TimeoutN),
        ((1u32..=3), (1u32..=3))
            .prop_map(|(i, times)| WsFault::Slow { ms: i as u64 * 400, times }),
    ]
}

fn ws_fault_plan(retryable: &Option<WsFault>, outage: bool) -> xqse_repro::aldsp::FaultPlan {
    use xqse_repro::aldsp::{FaultKind, FaultPlan, FaultRule, Op};
    let mut plan = FaultPlan::new();
    if let Some(f) = retryable {
        let rule = match f {
            WsFault::FailN(k) => {
                FaultRule::new("CreditRating", Op::Call, FaultKind::FailNTimes(*k))
            }
            WsFault::TimeoutN(k) => {
                FaultRule::new("CreditRating", Op::Call, FaultKind::Timeout).times(*k)
            }
            WsFault::Slow { ms, times } => {
                FaultRule::new("CreditRating", Op::Call, FaultKind::SlowResponse(*ms))
                    .times(*times)
            }
        };
        plan = plan.rule(rule);
    }
    if outage {
        plan = plan.rule(FaultRule::new(
            "CreditRating",
            Op::Call,
            xqse_repro::aldsp::FaultKind::Permanent,
        ));
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batched (`call_many`, with request coalescing and one
    /// resilience transaction per flight) and sequential (`call` per
    /// request) web-service access return the same values — equal to
    /// the no-fault ground truth — under every deterministic fault
    /// plan in the strategy, including a permanent mid-run outage
    /// where both paths degrade to stale cached responses.
    #[test]
    fn batched_ws_access_agrees_with_sequential_under_faults(
        retryable in proptest::collection::vec(ws_fault_strategy(), 0usize..2),
        outage in proptest::bool::ANY,
        picks in proptest::collection::vec(0usize..5, 1..12),
    ) {
        use xqse_repro::aldsp::service::DataSpace;
        use xqse_repro::aldsp::ws::{credit_score, WebService};
        use xqse_repro::aldsp::{FaultInjector, Policy, Resilience};
        use xqse_repro::xdm::sequence::{Item, Sequence};

        let retryable = retryable.into_iter().next();
        let ssns: Vec<String> = (0..5).map(|i| format!("00{i}-11-222{i}")).collect();
        let mk_request = |ssn: &str| -> Sequence {
            let xml = format!(
                "<getCreditRating xmlns=\"urn:cr\">\
                 <lastName>Doe</lastName><ssn>{ssn}</ssn></getCreditRating>"
            );
            Sequence::one(Item::Node(parse(&xml).unwrap().children()[0].clone()))
        };
        let truth: Vec<String> =
            picks.iter().map(|&p| credit_score(&ssns[p], "Doe").to_string()).collect();

        // Two independent services in identically-seeded fault worlds.
        let seq_svc = WebService::credit_rating("urn:cr");
        let bat_svc = WebService::credit_rating("urn:cr");

        // Warm every unique request while healthy (both caches).
        for ssn in &ssns {
            seq_svc.call("getCreditRating", &mk_request(ssn)).unwrap();
            bat_svc.call("getCreditRating", &mk_request(ssn)).unwrap();
        }

        // Install the same plan (fresh budgets) on both.
        let faulted_access = |plan| {
            let space = DataSpace::new();
            space.install_resilience(Resilience::new(Policy::default()));
            space.install_fault_injector(FaultInjector::new(plan));
            space.access()
        };
        seq_svc.set_access(faulted_access(ws_fault_plan(&retryable, outage)));
        bat_svc.set_access(faulted_access(ws_fault_plan(&retryable, outage)));

        let requests: Vec<Sequence> = picks.iter().map(|&p| mk_request(&ssns[p])).collect();
        let batched = bat_svc.call_many("getCreditRating", &requests);
        prop_assert!(batched.is_ok(), "batched access failed: {:?}", batched.err());
        for (resp, want) in batched.unwrap().iter().zip(&truth) {
            prop_assert_eq!(&resp.items()[0].string_value(), want);
        }
        for (req, want) in requests.iter().zip(&truth) {
            let resp = seq_svc.call("getCreditRating", req);
            prop_assert!(resp.is_ok(), "sequential access failed: {:?}", resp.err());
            prop_assert_eq!(&resp.unwrap().items()[0].string_value(), want);
        }
    }
}

// ------------------------------------------- lazy / eager equivalence

/// The consumer wrapped around a generated FLWOR — the early-exit
/// shapes the streaming evaluator intercepts, plus a full drain.
#[derive(Debug, Clone)]
enum LazyConsumer {
    Full,
    Exists,
    Empty,
    CountGt(usize),
    Subsequence(usize, usize),
    Positional(usize),
    SomeGe(usize),
    EveryLt(usize),
}

fn lazy_consumer_strategy() -> impl Strategy<Value = LazyConsumer> {
    prop_oneof![
        Just(LazyConsumer::Full),
        Just(LazyConsumer::Exists),
        Just(LazyConsumer::Empty),
        (0usize..20).prop_map(LazyConsumer::CountGt),
        ((1usize..30), (1usize..10))
            .prop_map(|(s, l)| LazyConsumer::Subsequence(s, l)),
        (1usize..30).prop_map(LazyConsumer::Positional),
        (1usize..40).prop_map(LazyConsumer::SomeGe),
        (1usize..40).prop_map(LazyConsumer::EveryLt),
    ]
}

/// Render the generated query. The base FLWOR filters with `mod` so
/// the result is a strict, non-trivial subset of the range; quantified
/// consumers use an atomized body (their bindings are items, not
/// constructed elements).
fn lazy_query(n: usize, m: usize, consumer: &LazyConsumer) -> String {
    let base = format!("for $i in 1 to {n} where $i mod {m} ne 0 return <r>{{$i}}</r>");
    let atoms = format!("for $i in 1 to {n} where $i mod {m} ne 0 return $i * 2");
    match consumer {
        LazyConsumer::Full => base,
        LazyConsumer::Exists => format!("fn:exists({base})"),
        LazyConsumer::Empty => format!("fn:empty({base})"),
        LazyConsumer::CountGt(k) => format!("fn:count({base}) gt {k}"),
        LazyConsumer::Subsequence(s, l) => format!("fn:subsequence({base}, {s}, {l})"),
        LazyConsumer::Positional(k) => format!("({base})[{k}]"),
        LazyConsumer::SomeGe(k) => format!("some $x in ({atoms}) satisfies $x ge {k}"),
        LazyConsumer::EveryLt(k) => format!("every $x in ({atoms}) satisfies $x lt {k}"),
    }
}

/// Run a query through the pipelined entry point and drain it with the
/// streaming serializer. Returns the serialized bytes (or the error
/// text) plus the engine's `tuples_pulled` counter.
fn run_lazy(src: &str) -> (Result<String, String>, u64, bool) {
    use xqse_repro::xmlparse::serialize_sequence_stream;
    let xqse = Xqse::new();
    let lazy_on = xqse.engine().lazy_enabled();
    let mut env = xqse_repro::xqeval::Env::new();
    let res = xqse
        .run_lazy_with_env(src, &mut env)
        .and_then(|s| serialize_sequence_stream(&s))
        .map_err(|e| e.to_string());
    (res, xqse.engine().opt_stats().tuples_pulled, lazy_on)
}

/// Run the same query fully eagerly via the kill switch.
fn run_eager(src: &str) -> Result<String, String> {
    let xqse = Xqse::new();
    xqse.engine().set_lazy(false);
    xqse.run(src)
        .map(|s| xqse_repro::xmlparse::serialize_sequence(&s))
        .map_err(|e| e.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Pipelined evaluation is observationally equal to eager
    /// evaluation on fault-free queries: byte-identical serialization
    /// and `string_value`, across every intercepted consumer shape —
    /// with the pull counter proving the stream actually engaged.
    #[test]
    fn lazy_agrees_with_eager(
        n in 1usize..40,
        m in 2usize..5,
        consumer in lazy_consumer_strategy(),
    ) {
        let src = lazy_query(n, m, &consumer);
        let (lazy, pulled, lazy_on) = run_lazy(&src);
        let eager = run_eager(&src);
        prop_assert_eq!(&lazy, &eager, "query: {}", src);

        // string_value must agree too (it has its own pull path).
        let a = Xqse::new();
        let mut env = xqse_repro::xqeval::Env::new();
        let sv_lazy = a.run_lazy_with_env(&src, &mut env)
            .and_then(|s| s.string_value())
            .map_err(|e| e.to_string());
        let b = Xqse::new();
        b.engine().set_lazy(false);
        let sv_eager = b.run(&src)
            .and_then(|s| s.string_value())
            .map_err(|e| e.to_string());
        prop_assert_eq!(sv_lazy, sv_eager, "query: {}", src);

        // The base FLWOR always yields at least one tuple (1 mod m is
        // never 0 for m > 1), so a live stream must have pulled.
        if lazy_on {
            prop_assert!(pulled >= 1, "stream never engaged for: {}", src);
        }
    }

    /// A fault inside the stream raises the same error lazily and
    /// eagerly on a full drain, and the lazy drain yields exactly the
    /// items before the faulting tuple first.
    #[test]
    fn mid_stream_faults_agree_with_eager(n in 2usize..30, f in 1usize..30) {
        let f = 1 + (f - 1) % n; // fault lands inside the range
        let src = format!(
            "for $i in 1 to {n} return <r>{{ if ($i eq {f}) then 1 idiv 0 else $i }}</r>"
        );
        let (lazy, _, lazy_on) = run_lazy(&src);
        let eager = run_eager(&src);
        prop_assert!(lazy.is_err() && eager.is_err(), "both must fault: {}", src);
        prop_assert_eq!(lazy.as_ref().unwrap_err(), eager.as_ref().unwrap_err());
        prop_assert!(lazy.unwrap_err().contains("FOAR0001"));

        // Partial drain: items strictly before the fault come out.
        let xqse = Xqse::new();
        let mut env = xqse_repro::xqeval::Env::new();
        let seq = xqse.run_lazy_with_env(&src, &mut env).unwrap();
        let mut got = 0usize;
        let err = loop {
            match seq.try_item(got) {
                Ok(Some(_)) => got += 1,
                Ok(None) => break None,
                Err(e) => break Some(e),
            }
        };
        if lazy_on {
            prop_assert_eq!(got, f - 1, "items before the faulting tuple");
            prop_assert!(err.is_some());
        } else {
            // Kill-switch arm: the error surfaced at run time instead.
            prop_assert!(err.is_some() || got == 0);
        }
    }

    /// Mid-stream budget expiry: a fuel-limited lazy drain either
    /// completes or stops with `FUEL_EXHAUSTED`, and whatever prefix
    /// it emitted is a byte prefix of the unbudgeted eager output.
    #[test]
    fn mid_stream_budget_expiry_is_clean(n in 10usize..40, fuel in 5usize..200) {
        use xqse_repro::xmlparse::IncrementalSerializer;
        let src = format!("for $i in 1 to {n} return <r>{{$i}}</r>");
        let full = run_eager(&src).unwrap();

        let xqse = Xqse::new();
        let budget = xqse_repro::xqeval::Budget::unlimited().limit_fuel(fuel as u64);
        xqse.engine().set_budget(Some(std::sync::Arc::new(budget)));
        let mut env = xqse_repro::xqeval::Env::new();
        let mut ser = IncrementalSerializer::new();
        let outcome = xqse.run_lazy_with_env(&src, &mut env).map(|seq| {
            let mut i = 0usize;
            loop {
                match seq.try_item(i) {
                    Ok(Some(item)) => {
                        ser.write_item(&item);
                        i += 1;
                    }
                    Ok(None) => break None,
                    Err(e) => break Some(e),
                }
            }
        });
        let prefix = ser.finish();
        match outcome {
            Ok(None) => prop_assert_eq!(prefix, full), // fuel sufficed
            Ok(Some(e)) => {
                prop_assert!(
                    e.to_string().contains("FUEL_EXHAUSTED"),
                    "unexpected mid-stream error: {}", e
                );
                prop_assert!(
                    full.starts_with(&prefix),
                    "partial output must be a prefix: {:?}", prefix
                );
            }
            Err(e) => prop_assert!(e.to_string().contains("FUEL_EXHAUSTED")),
        }
    }
}
