//! Randomized oracle test for update decomposition: apply random
//! change sets through the full get→modify→submit pipeline and verify
//! that the physical sources end up exactly as if the changes had been
//! applied directly — across nesting levels and sources.

use proptest::prelude::*;

use xqse_repro::aldsp::demo;
use xqse_repro::aldsp::rel::SqlValue;

/// One randomly chosen mutation against a profile graph.
#[derive(Debug, Clone)]
enum Mutation {
    LastName(usize, String),
    FirstName(usize, String),
    OrderStatus(usize, usize, String),
    CardBrand(usize, usize, String),
}

fn mutation_strategy(customers: usize, orders: usize, cards: usize) -> impl Strategy<Value = Mutation> {
    let c = 0..customers;
    prop_oneof![
        (c.clone(), "[A-Z][a-z]{1,6}").prop_map(|(i, s)| Mutation::LastName(i, s)),
        (c.clone(), "[A-Z][a-z]{1,6}").prop_map(|(i, s)| Mutation::FirstName(i, s)),
        (c.clone(), 0..orders, "[A-Z]{3,8}")
            .prop_map(|(i, o, s)| Mutation::OrderStatus(i, o, s)),
        (c, 0..cards, "[A-Z]{3,8}").prop_map(|(i, k, s)| Mutation::CardBrand(i, k, s)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn decomposition_matches_direct_application(
        mutations in proptest::collection::vec(mutation_strategy(4, 2, 2), 1..8)
    ) {
        const N: usize = 4;
        const ORDERS: usize = 2;
        const CARDS: usize = 2;
        // Two identical worlds: one updated through the platform, one
        // directly (the oracle).
        let world = demo::build(N, ORDERS, CARDS).unwrap();
        let oracle = demo::build(N, ORDERS, CARDS).unwrap();

        let g = world.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
        // Deduplicate: the SDO records first-old-value, last-new-value,
        // so later mutations of the same leaf win; apply the same rule
        // to the oracle by replaying in order.
        for m in &mutations {
            match m {
                Mutation::LastName(i, v) => {
                    g.set_value(*i, &["LAST_NAME"], v).unwrap();
                    oracle
                        .db1
                        .execute(vec![xqse_repro::aldsp::rel::WriteOp::Update {
                            table: "CUSTOMER".into(),
                            set: vec![("LAST_NAME".into(), SqlValue::Str(v.clone()))],
                            cond: vec![("CID".into(), SqlValue::Int(*i as i64 + 1))],
                            expect_rows: 1,
                        }])
                        .unwrap();
                }
                Mutation::FirstName(i, v) => {
                    g.set_value(*i, &["FIRST_NAME"], v).unwrap();
                    oracle
                        .db1
                        .execute(vec![xqse_repro::aldsp::rel::WriteOp::Update {
                            table: "CUSTOMER".into(),
                            set: vec![("FIRST_NAME".into(), SqlValue::Str(v.clone()))],
                            cond: vec![("CID".into(), SqlValue::Int(*i as i64 + 1))],
                            expect_rows: 1,
                        }])
                        .unwrap();
                }
                Mutation::OrderStatus(i, o, v) => {
                    let oid = g
                        .get_value(*i, &["Orders", &format!("ORDER#{o}"), "OID"])
                        .unwrap();
                    g.set_value(*i, &["Orders", &format!("ORDER#{o}"), "STATUS"], v)
                        .unwrap();
                    oracle
                        .db1
                        .execute(vec![xqse_repro::aldsp::rel::WriteOp::Update {
                            table: "ORDER".into(),
                            set: vec![("STATUS".into(), SqlValue::Str(v.clone()))],
                            cond: vec![(
                                "OID".into(),
                                SqlValue::Int(oid.parse().unwrap()),
                            )],
                            expect_rows: 1,
                        }])
                        .unwrap();
                }
                Mutation::CardBrand(i, k, v) => {
                    let ccid = g
                        .get_value(*i, &["CreditCards", &format!("CREDIT_CARD#{k}"), "CCID"])
                        .unwrap();
                    g.set_value(
                        *i,
                        &["CreditCards", &format!("CREDIT_CARD#{k}"), "BRAND"],
                        v,
                    )
                    .unwrap();
                    oracle
                        .db2
                        .execute(vec![xqse_repro::aldsp::rel::WriteOp::Update {
                            table: "CREDIT_CARD".into(),
                            set: vec![("CC_BRAND".into(), SqlValue::Str(v.clone()))],
                            cond: vec![(
                                "CCID".into(),
                                SqlValue::Int(ccid.parse().unwrap()),
                            )],
                            expect_rows: 1,
                        }])
                        .unwrap();
                }
            }
        }
        world.space.submit(&g).unwrap();

        // The physical state of both worlds must now be identical.
        for table in ["CUSTOMER", "ORDER"] {
            prop_assert_eq!(
                world.db1.scan(table).unwrap(),
                oracle.db1.scan(table).unwrap(),
                "db1.{} diverged", table
            );
        }
        prop_assert_eq!(
            world.db2.scan("CREDIT_CARD").unwrap(),
            oracle.db2.scan("CREDIT_CARD").unwrap(),
            "db2.CREDIT_CARD diverged"
        );
    }
}
