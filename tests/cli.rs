//! Integration tests for the `xqsh` CLI binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn xqsh() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xqsh"))
}

fn run_stdin(args: &[&str], input: &str) -> (String, String, bool) {
    let mut child = xqsh()
        .args(args)
        .arg("-")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn xqsh");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

#[test]
fn runs_hello_world_from_stdin() {
    let (stdout, _stderr, ok) = run_stdin(&[], "{ return value \"Hello, World\"; }");
    assert!(ok);
    assert_eq!(stdout.trim(), "Hello, World");
}

#[test]
fn trace_goes_to_stderr() {
    let (stdout, stderr, ok) = run_stdin(
        &["--trace"],
        "{ declare $x := 3; while ($x lt 20) { fn:trace($x); set $x := $x * 2; } \
           return value $x; }",
    );
    assert!(ok);
    assert_eq!(stdout.trim(), "24");
    assert!(stderr.contains("trace: 3"));
    assert!(stderr.contains("trace: 12"));
}

#[test]
fn xqueryp_mode_concatenates_loop_values() {
    let src = "{ declare $x := 0; while ($x lt 3) { set $x := $x + 1; fn:string($x); } }";
    let (xqse_out, _, ok) = run_stdin(&[], src);
    assert!(ok);
    assert_eq!(xqse_out.trim(), "");
    let (xp_out, _, ok) = run_stdin(&["--xqueryp"], src);
    assert!(ok);
    assert_eq!(xp_out.trim(), "1 2 3");
}

#[test]
fn errors_exit_nonzero_with_message() {
    let (_, stderr, ok) = run_stdin(&[], "{ return value 1 div 0; }");
    assert!(!ok);
    assert!(stderr.contains("FOAR0001"), "{stderr}");
    // Parse errors too.
    let (_, stderr, ok) = run_stdin(&[], "{ set x := 1; }");
    assert!(!ok);
    assert!(stderr.contains("XPST0003") || stderr.contains("parse"), "{stderr}");
}

#[test]
fn doc_registration_resolves_fn_doc() {
    let dir = std::env::temp_dir().join("xqsh_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let xml_path = dir.join("data.xml");
    std::fs::write(&xml_path, "<r><v>4</v><v>5</v></r>").unwrap();
    let (stdout, stderr, ok) = run_stdin(
        &["--doc", &format!("mem:data={}", xml_path.display())],
        "fn:sum(for $v in fn:doc('mem:data')/r/v return fn:number($v))",
    );
    assert!(ok, "{stderr}");
    assert_eq!(stdout.trim(), "9");
}

#[test]
fn runs_the_shipped_example_scripts() {
    let root = env!("CARGO_MANIFEST_DIR"); // repo root (the package that owns the bin)
    let scripts = std::path::Path::new(root).join("examples/scripts");
    let run_file = |name: &str| {
        let out = xqsh()
            .arg(scripts.join(name))
            .output()
            .expect("run script");
        assert!(out.status.success(), "{name}: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).trim().to_string()
    };
    assert_eq!(run_file("hello.xqse"), "Hello, World");
    assert_eq!(run_file("doubling.xqse"), "3 6 12 24 48 96");
    assert_eq!(run_file("collatz.xqse"), "111"); // n=27 takes 111 steps
}

#[test]
fn usage_on_bad_args() {
    let out = xqsh().output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

fn run_stdin_env(args: &[&str], envs: &[(&str, &str)], input: &str) -> (String, String, bool) {
    let mut cmd = xqsh();
    cmd.args(args).arg("-");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn xqsh");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

/// The three lazy kill switches (default-on, `--no-lazy`, env var)
/// produce byte-identical stdout; the explain block says which mode
/// ran and the streaming counters reflect it.
#[test]
fn lazy_kill_switches_agree_byte_for_byte() {
    let src = "fn:subsequence(for $i in 1 to 50 where $i mod 3 ne 0 \
               return <r>{$i}</r>, 2, 3)";
    let (lazy_out, lazy_err, ok) = run_stdin_env(&["--explain"], &[], src);
    assert!(ok, "{lazy_err}");
    let (flag_out, flag_err, ok) = run_stdin_env(&["--explain", "--no-lazy"], &[], src);
    assert!(ok, "{flag_err}");
    let (env_out, env_err, ok) =
        run_stdin_env(&["--explain"], &[("XQSE_DISABLE_LAZY", "1")], src);
    assert!(ok, "{env_err}");
    assert_eq!(lazy_out, flag_out);
    assert_eq!(lazy_out, env_out);
    assert!(lazy_err.contains("explain: lazy     = true"), "{lazy_err}");
    assert!(flag_err.contains("explain: lazy     = false"), "{flag_err}");
    assert!(env_err.contains("explain: lazy     = false"), "{env_err}");
    // The stream engaged in the default run and stopped early...
    assert!(lazy_err.contains("early-exits=1"), "{lazy_err}");
    // ...and never engaged under either kill switch.
    assert!(flag_err.contains("tuples-pulled=0"), "{flag_err}");
    assert!(env_err.contains("tuples-pulled=0"), "{env_err}");
}

/// Every explain line prints on every run — zero-valued counters and
/// disabled features included — so bench scripts can parse the block
/// without guessing which features were engaged (satellite: uniform
/// explain output).
#[test]
fn explain_block_prints_all_lines_unconditionally() {
    let groups = [
        "explain: optimize =",
        "explain: batch    =",
        "explain: graft    =",
        "explain: lazy     =",
        "explain: join cache",
        "explain: mat cache",
        "explain: pushdown",
        "explain: plan cache",
        "explain: web service",
        "explain: xa recovery",
        "explain: budgets",
        "explain: xdm",
        "explain: streaming",
    ];
    // A trivial query engages almost nothing; every line must still be
    // there, in both lazy and eager mode.
    for args in [&["--explain"][..], &["--explain", "--no-lazy"][..]] {
        let (_, stderr, ok) = run_stdin_env(args, &[], "1 + 1");
        assert!(ok, "{stderr}");
        for g in groups {
            assert!(stderr.contains(g), "missing {g:?} in:\n{stderr}");
        }
    }
}
