//! Generative parser round-trip: random expression ASTs are rendered
//! by the unparser, re-parsed, and re-rendered — the two renderings
//! must be identical, and where the expression is closed (no free
//! variables) both versions must evaluate to the same result.

use proptest::prelude::*;

use xqse_repro::xqparser::ast::{BinaryOp, Expr, FlworClause, GeneralComp, Quantifier};
use xqse_repro::xqparser::parser::parse_expr;
use xqse_repro::xqparser::unparse::unparse_expr;
use xqse_repro::xdm::atomic::AtomicValue;
use xqse_repro::xdm::qname::QName;

fn var_name() -> impl Strategy<Value = QName> {
    prop_oneof![Just("v"), Just("w"), Just("x")].prop_map(QName::new)
}

fn literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-1000i64..1000).prop_map(|i| Expr::Literal(AtomicValue::Integer(i))),
        "[a-z ]{0,6}".prop_map(|s| Expr::Literal(AtomicValue::String(s))),
    ]
}

/// Closed expressions: every variable used is bound by an enclosing
/// FLWOR/quantifier that this generator itself produces.
fn closed_expr() -> impl Strategy<Value = Expr> {
    literal().prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            // comma sequences
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Expr::Comma),
            // arithmetic (div avoided so evaluation cannot hit /0 —
            // structure is what we test here)
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinaryOp::Add),
                Just(BinaryOp::Sub),
                Just(BinaryOp::Mul),
            ])
                .prop_map(|(a, b, op)| Expr::Binary(op, Box::new(a), Box::new(b))),
            // general comparison
            (inner.clone(), inner.clone()).prop_map(|(a, b)| {
                Expr::General(GeneralComp::Eq, Box::new(a), Box::new(b))
            }),
            // if/then/else over a boolean-ish condition
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| {
                Expr::If(
                    Box::new(Expr::General(
                        GeneralComp::Ne,
                        Box::new(Expr::Comma(vec![])),
                        Box::new(c),
                    )),
                    Box::new(t),
                    Box::new(f),
                )
            }),
            // for $v in (…) return …$v…
            (var_name(), inner.clone(), inner.clone()).prop_map(|(v, src, ret)| {
                Expr::Flwor {
                    clauses: vec![FlworClause::For {
                        var: v.clone(),
                        pos: None,
                        source: Box::new(src).as_ref().clone(),
                    }],
                    ret: Box::new(Expr::Comma(vec![Expr::VarRef(v), ret])),
                }
            }),
            // quantified
            (var_name(), inner.clone(), inner.clone()).prop_map(|(v, src, sat)| {
                Expr::Quantified {
                    quantifier: Quantifier::Some,
                    bindings: vec![(v.clone(), src)],
                    satisfies: Box::new(Expr::General(
                        GeneralComp::Eq,
                        Box::new(Expr::VarRef(v)),
                        Box::new(sat),
                    )),
                }
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn unparse_parse_unparse_is_stable(e in closed_expr()) {
        let printed = unparse_expr(&e);
        let reparsed = parse_expr(&printed, &[])
            .unwrap_or_else(|err| panic!("re-parse failed for {printed:?}: {err}"));
        let printed2 = unparse_expr(&reparsed);
        prop_assert_eq!(&printed, &printed2, "unstable: {}", printed);
    }

    #[test]
    fn roundtripped_expressions_evaluate_identically(e in closed_expr()) {
        let engine = xqse_repro::xqeval::Engine::new();
        let mut env1 = xqse_repro::xqeval::Env::new();
        let direct = engine.eval_in(&e, &mut env1);
        let printed = unparse_expr(&e);
        let reparsed = parse_expr(&printed, &[]).unwrap();
        let mut env2 = xqse_repro::xqeval::Env::new();
        let via_text = engine.eval_in(&reparsed, &mut env2);
        match (direct, via_text) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(
                    xqse_repro::xmlparse::serialize_sequence(&a),
                    xqse_repro::xmlparse::serialize_sequence(&b),
                    "results differ for {}", printed
                );
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.code, b.code),
            (a, b) => prop_assert!(
                false,
                "one side errored for {}: {:?} vs {:?}", printed, a, b
            ),
        }
    }
}

/// The paper's Figure-3 module survives unparse∘parse and the
/// round-tripped module still evaluates identically on the demo
/// dataspace.
#[test]
fn figure3_module_unparse_round_trip() {
    use xqse_repro::xqparser::{parse_module, unparse::unparse_module};

    let m1 = parse_module(xqse_repro::aldsp::demo::GET_PROFILE_SRC).unwrap();
    let printed = unparse_module(&m1);
    let m2 = parse_module(&printed)
        .unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{printed}"));
    assert_eq!(printed, unparse_module(&m2), "unparse not a fixed point");

    // Behavioural equivalence: run the round-tripped source as the
    // logical service definition and compare the read result.
    let d1 = xqse_repro::aldsp::demo::build(3, 2, 1).unwrap();
    let d2 = xqse_repro::aldsp::demo::build(3, 2, 1).unwrap();
    // Re-register the service from the *printed* source on d2 (same
    // name: the reloaded function definitions replace the originals).
    d2.space
        .register_logical_service(
            "CustomerProfile",
            &printed,
            &xqse_repro::xdm::qname::QName::with_ns("ld:CustomerProfile", "getProfile"),
        )
        .unwrap();
    let g1 = d1.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    let g2 = d2.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    assert_eq!(g1.len(), g2.len());
    for i in 0..g1.len() {
        assert_eq!(
            xqse_repro::xmlparse::serialize(&g1.instance(i).unwrap()),
            xqse_repro::xmlparse::serialize(&g2.instance(i).unwrap()),
            "instance {i} differs"
        );
    }
}
