//! Integration tests: the paper's four §III.D use cases executed
//! against the full platform stack through the workspace's public API.


use xqse_repro::aldsp::rel::{Column, ColumnType, Database, SqlValue, TableSchema};
use xqse_repro::aldsp::service::DataSpace;
use xqse_repro::xdm::qname::QName;
use xqse_repro::xdm::sequence::{Item, Sequence};
use xqse_repro::xqeval::Env;

/// Evaluate `src` twice through the statement engine and assert the
/// second evaluation re-executed the cached prepared plan instead of
/// re-parsing (the PR 4 observability counters).
fn assert_plan_cache_round_trip(space: &DataSpace, src: &str) {
    let eng = space.engine();
    // Pin the layer on: CI re-runs this suite under the kill switches.
    eng.set_optimize(true);
    eng.set_batch(true);
    eng.reset_opt_stats();
    let mut env = Env::new();
    let a = space.xqse().run_with_env(src, &mut env).unwrap();
    let b = space.xqse().run_with_env(src, &mut env).unwrap();
    assert_eq!(
        a.iter().map(|i| i.string_value()).collect::<Vec<_>>(),
        b.iter().map(|i| i.string_value()).collect::<Vec<_>>(),
        "cached plan must produce the same result"
    );
    let s = eng.opt_stats();
    assert_eq!(s.plan_misses, 1, "first evaluation compiled the plan");
    assert_eq!(s.plan_hits, 1, "second evaluation reused it");
}

fn employees(n: i64) -> Database {
    let db = Database::new("hr");
    db.create_table(TableSchema {
        name: "EMPLOYEE".into(),
        columns: vec![
            Column::required("EmployeeID", ColumnType::Integer),
            Column::required("Name", ColumnType::Varchar),
            Column::nullable("DeptNo", ColumnType::Varchar),
            Column::nullable("ManagerID", ColumnType::Integer),
        ],
        primary_key: vec!["EmployeeID".into()],
        foreign_keys: vec![],
    })
    .unwrap();
    for i in 1..=n {
        db.insert(
            "EMPLOYEE",
            vec![
                SqlValue::Int(i),
                SqlValue::Str(format!("First{i} Last{i}")),
                SqlValue::Str(format!("D{}", i % 3)),
                if i == 1 { SqlValue::Null } else { SqlValue::Int(i / 2) },
            ],
        )
        .unwrap();
    }
    db
}

/// Use case 1: user-defined update — delete an employee by ID alone,
/// wrapping the generated default delete.
#[test]
fn use_case_1_delete_by_id() {
    let db = employees(10);
    let space = DataSpace::new();
    space.register_relational_source(&db).unwrap();
    space
        .xqse()
        .load(
            r#"
declare namespace tns = "urn:tns";
declare namespace ens1 = "ld:hr/EMPLOYEE";
declare procedure tns:deleteByEmployeeID($id as xs:string) as empty-sequence()
{
  declare $emp := ens1:getByEmployeeID($id);
  if (fn:not(fn:empty($emp))) then ens1:deleteEMPLOYEE($emp);
};
"#,
        )
        .unwrap();
    let mut env = Env::new();
    space
        .xqse()
        .call_procedure(
            &QName::with_ns("urn:tns", "deleteByEmployeeID"),
            vec![Sequence::one(Item::string("7"))],
            &mut env,
        )
        .unwrap();
    assert_eq!(db.row_count("EMPLOYEE").unwrap(), 9);
    assert!(db
        .select("EMPLOYEE", &vec![("EmployeeID".into(), SqlValue::Int(7))])
        .unwrap()
        .is_empty());
    // Idempotent for missing ids (the guard).
    space
        .xqse()
        .call_procedure(
            &QName::with_ns("urn:tns", "deleteByEmployeeID"),
            vec![Sequence::one(Item::string("7"))],
            &mut env,
        )
        .unwrap();
    assert_eq!(db.row_count("EMPLOYEE").unwrap(), 9);
    // Repeated read-back of the table goes through the plan cache.
    assert_plan_cache_round_trip(
        &space,
        "declare namespace ens1 = \"ld:hr/EMPLOYEE\"; \
         fn:count(ens1:EMPLOYEE())",
    );
}

/// Use case 2: imperative computation — the management chain.
#[test]
fn use_case_2_management_chain() {
    let db = employees(16);
    let space = DataSpace::new();
    space.register_relational_source(&db).unwrap();
    space
        .xqse()
        .load(
            r#"
declare namespace tns = "urn:tns";
declare namespace ens1 = "ld:hr/EMPLOYEE";
declare xqse function tns:getManagementChain($id as xs:string)
  as element(EMPLOYEE)*
{
  declare $mgrs as element(EMPLOYEE)* := ();
  declare $emp as element(EMPLOYEE)? := ens1:getByEmployeeID($id);
  while (fn:not(fn:empty($emp))) {
    set $emp := ens1:getByEmployeeID($emp/ManagerID);
    set $mgrs := ($mgrs, $emp);
  }
  return value ($mgrs);
};
"#,
        )
        .unwrap();
    // 16 -> 8 -> 4 -> 2 -> 1: chain of 4 managers.
    let out = space
        .engine()
        .eval_expr_str(
            "for $m in tns:getManagementChain('16') return fn:data($m/EmployeeID)",
            &[("tns", "urn:tns")],
        )
        .unwrap();
    let ids: Vec<String> = out.iter().map(|i| i.string_value()).collect();
    assert_eq!(ids, vec!["8", "4", "2", "1"]);
    // The CEO has an empty chain.
    let out = space
        .engine()
        .eval_expr_str(
            "fn:count(tns:getManagementChain('1'))",
            &[("tns", "urn:tns")],
        )
        .unwrap();
    assert_eq!(out.string_value().unwrap(), "0");
    // The chain query itself is plan-cacheable across evaluations.
    assert_plan_cache_round_trip(
        &space,
        "declare namespace tns = \"urn:tns\"; \
         for $m in tns:getManagementChain('16') return fn:data($m/EmployeeID)",
    );
}

/// Use case 3: transform and copy across differently-shaped sources.
#[test]
fn use_case_3_transform_and_copy() {
    let src = employees(25);
    let dst = Database::new("warehouse");
    dst.create_table(TableSchema {
        name: "EMP2".into(),
        columns: vec![
            Column::required("EmpId", ColumnType::Integer),
            Column::nullable("FirstName", ColumnType::Varchar),
            Column::nullable("LastName", ColumnType::Varchar),
            Column::nullable("MgrName", ColumnType::Varchar),
            Column::nullable("Dept", ColumnType::Varchar),
        ],
        primary_key: vec!["EmpId".into()],
        foreign_keys: vec![],
    })
    .unwrap();
    let space = DataSpace::new();
    space.register_relational_source(&src).unwrap();
    space.register_relational_source(&dst).unwrap();
    space
        .xqse()
        .load(
            r#"
declare namespace tns = "urn:tns";
declare namespace ens1 = "ld:hr/EMPLOYEE";
declare namespace emp2 = "ld:warehouse/EMP2";
declare function tns:transformToEMP2($emp as element(EMPLOYEE)?)
  as element(EMP2)?
{
  for $emp1 in $emp return <EMP2>
    <EmpId>{fn:data($emp1/EmployeeID)}</EmpId>
    <FirstName>{fn:tokenize(fn:data($emp1/Name),' ')[1]}</FirstName>
    <LastName>{fn:tokenize(fn:data($emp1/Name),' ')[2]}</LastName>
    <MgrName>{fn:data(ens1:getByEmployeeID($emp1/ManagerID)/Name)}</MgrName>
    <Dept>{fn:data($emp1/DeptNo)}</Dept>
  </EMP2>
};
declare procedure tns:copyAllToEMP2() as xs:integer
{
  declare $backupCnt as xs:integer := 0;
  declare $emp2 as element(EMP2)?;
  iterate $emp1 over ens1:EMPLOYEE() {
    set $emp2 := tns:transformToEMP2($emp1);
    emp2:createEMP2($emp2);
    set $backupCnt := $backupCnt + 1;
  }
  return value ($backupCnt);
};
"#,
        )
        .unwrap();
    let mut env = Env::new();
    let copied = space
        .xqse()
        .call_procedure(
            &QName::with_ns("urn:tns", "copyAllToEMP2"),
            vec![],
            &mut env,
        )
        .unwrap();
    assert_eq!(copied.string_value().unwrap(), "25");
    assert_eq!(dst.row_count("EMP2").unwrap(), 25);
    // Spot-check the transform: employee 10 reports to 5.
    let row = dst
        .select("EMP2", &vec![("EmpId".into(), SqlValue::Int(10))])
        .unwrap();
    assert_eq!(row[0][1], SqlValue::Str("First10".into()));
    assert_eq!(row[0][2], SqlValue::Str("Last10".into()));
    assert_eq!(row[0][3], SqlValue::Str("First5 Last5".into()));
    // The boss has no manager: the transform emits an empty
    // <MgrName/>, which maps to the empty string on a VARCHAR column.
    let row = dst.select("EMP2", &vec![("EmpId".into(), SqlValue::Int(1))]).unwrap();
    assert_eq!(row[0][3], SqlValue::Str(String::new()));
    // Verifying the copy is a repeatable, plan-cacheable read.
    assert_plan_cache_round_trip(
        &space,
        "declare namespace emp2 = \"ld:warehouse/EMP2\"; \
         fn:count(emp2:EMP2())",
    );
}

/// Use case 4: replicating create with per-source error wrapping.
#[test]
fn use_case_4_replicating_create() {
    let schema = |t: &str| TableSchema {
        name: t.into(),
        columns: vec![
            Column::required("EmployeeID", ColumnType::Integer),
            Column::required("Name", ColumnType::Varchar),
        ],
        primary_key: vec!["EmployeeID".into()],
        foreign_keys: vec![],
    };
    let primary = Database::new("p1");
    primary.create_table(schema("EMPLOYEE")).unwrap();
    let backup = Database::new("p2");
    backup.create_table(schema("EMPLOYEE")).unwrap();
    let space = DataSpace::new();
    space.register_relational_source(&primary).unwrap();
    space.register_relational_source(&backup).unwrap();
    space
        .xqse()
        .load(
            r#"
declare namespace tns = "urn:tns";
declare namespace p = "ld:p1/EMPLOYEE";
declare namespace b = "ld:p2/EMPLOYEE";
declare procedure tns:create($newEmps as element(EMPLOYEE)*) as xs:integer
{
  declare $n := 0;
  iterate $newEmp over $newEmps {
    try { p:createEMPLOYEE($newEmp); }
    catch (* into $err, $msg) {
      fn:error(xs:QName("PRIMARY_CREATE_FAILURE"),
        fn:concat("Primary create failed due to: ", $err, $msg));
    };
    try { b:createEMPLOYEE($newEmp); }
    catch (* into $err, $msg) {
      fn:error(xs:QName("SECONDARY_CREATE_FAILURE"),
        fn:concat("Backup create failed due to: ", $err, $msg));
    };
    set $n := $n + 1;
  }
  return value $n;
};
"#,
        )
        .unwrap();
    let emp = |id: i64| -> Item {
        let xml =
            format!("<EMPLOYEE><EmployeeID>{id}</EmployeeID><Name>e{id}</Name></EMPLOYEE>");
        Item::Node(xqse_repro::xmlparse::parse(&xml).unwrap().children()[0].clone())
    };
    let create = QName::with_ns("urn:tns", "create");
    let mut env = Env::new();
    // Batch of 5 replicates.
    let batch: Sequence = (1..=5).map(emp).collect();
    let n = space.xqse().call_procedure(&create, vec![batch], &mut env).unwrap();
    assert_eq!(n.string_value().unwrap(), "5");
    assert_eq!(primary.row_count("EMPLOYEE").unwrap(), 5);
    assert_eq!(backup.row_count("EMPLOYEE").unwrap(), 5);
    // Primary failure surfaces with the wrapped code; nothing created.
    let err = space
        .xqse()
        .call_procedure(&create, vec![Sequence::one(emp(3))], &mut env)
        .unwrap_err();
    assert_eq!(err.code, QName::new("PRIMARY_CREATE_FAILURE"));
    assert_eq!(primary.row_count("EMPLOYEE").unwrap(), 5);
    // Backup-only conflict: primary create lands, secondary error is
    // raised — and per §III.B.13 the primary effect is NOT rolled back.
    backup.insert("EMPLOYEE", vec![SqlValue::Int(9), SqlValue::Str("x".into())]).unwrap();
    let err = space
        .xqse()
        .call_procedure(&create, vec![Sequence::one(emp(9))], &mut env)
        .unwrap_err();
    assert_eq!(err.code, QName::new("SECONDARY_CREATE_FAILURE"));
    assert_eq!(primary.row_count("EMPLOYEE").unwrap(), 6);
    // Auditing replica divergence is a plan-cacheable read.
    assert_plan_cache_round_trip(
        &space,
        "declare namespace p = \"ld:p1/EMPLOYEE\"; \
         declare namespace b = \"ld:p2/EMPLOYEE\"; \
         fn:count(b:EMPLOYEE()) - fn:count(p:EMPLOYEE())",
    );
}

/// The readonly management-chain procedure composes into optimizable
/// XQuery — the two worlds interoperate in one query (§III.A).
#[test]
fn xqse_and_xquery_interoperate() {
    let db = employees(8);
    let space = DataSpace::new();
    space.register_relational_source(&db).unwrap();
    space
        .xqse()
        .load(
            r#"
declare namespace tns = "urn:tns";
declare namespace ens1 = "ld:hr/EMPLOYEE";
declare xqse function tns:depth($id as xs:string) as xs:integer
{
  declare $d := 0;
  declare $emp := ens1:getByEmployeeID($id);
  while (fn:not(fn:empty($emp/ManagerID))) {
    set $emp := ens1:getByEmployeeID($emp/ManagerID);
    set $d := $d + 1;
  }
  return value $d;
};
"#,
        )
        .unwrap();
    // XQuery FLWOR over all employees, calling the XQSE function,
    // aggregated declaratively.
    let out = space
        .engine()
        .eval_expr_str(
            "fn:max(for $e in ens1:EMPLOYEE() \
                    return tns:depth(fn:data($e/EmployeeID)))",
            &[("tns", "urn:tns"), ("ens1", "ld:hr/EMPLOYEE")],
        )
        .unwrap();
    assert_eq!(out.string_value().unwrap(), "3"); // 8->4->2->1
    // The interop query re-runs from the plan cache.
    assert_plan_cache_round_trip(
        &space,
        "declare namespace tns = \"urn:tns\"; \
         declare namespace ens1 = \"ld:hr/EMPLOYEE\"; \
         fn:max(for $e in ens1:EMPLOYEE() \
                return tns:depth(fn:data($e/EmployeeID)))",
    );
}

/// A web-service-backed answer that changes after a procedure write:
/// the batch layer's persistent read-through response cache must not
/// keep serving the pre-write response on the normal (fresh) path.
/// The statement engine reports the write via
/// `Engine::note_source_write`, which bumps the service's
/// read-through epoch.
#[test]
fn procedure_write_invalidates_ws_read_through() {
    use std::cell::Cell;
    use std::rc::Rc;
    use xqse_repro::aldsp::ws::WebService;

    // A service whose answer depends on mutable backing state.
    let state = Rc::new(Cell::new(1i64));
    let mut svc = WebService::new("Mut", "urn:mut");
    let st = Rc::clone(&state);
    svc.add_operation(
        "val",
        "req",
        "resp",
        Rc::new(move |_req| Ok(Sequence::one(Item::string(st.get().to_string())))),
    );
    let space = DataSpace::new();
    space.register_web_service(svc).unwrap();
    let eng = space.engine();
    // Pin the batch layer on: CI re-runs this suite under the kill
    // switches, and the read-through cache only engages with it.
    eng.set_optimize(true);
    eng.set_batch(true);
    // A non-readonly external procedure standing in for a submission
    // that changes what the service would answer.
    let st = Rc::clone(&state);
    eng.register_external_procedure(
        QName::with_ns("urn:tns", "poke"),
        0,
        false,
        Rc::new(move |_e, _a| {
            st.set(st.get() + 1);
            Ok(Sequence::empty())
        }),
    );

    let read = "declare namespace mut = \"ld:ws/Mut\"; mut:val(\"k\")";
    let mut env = Env::new();
    let a = space.xqse().run_with_env(read, &mut env).unwrap();
    assert_eq!(a.items()[0].string_value(), "1");
    // Warm repeat: served without re-invoking the handler.
    eng.reset_opt_stats();
    let b = space.xqse().run_with_env(read, &mut env).unwrap();
    assert_eq!(b.items()[0].string_value(), "1");
    assert_eq!(eng.opt_stats().ws_issued, 0, "repeat was coalesced");

    // The write, through statement context (the ALDSP entry point).
    space
        .xqse()
        .call_procedure(&QName::with_ns("urn:tns", "poke"), vec![], &mut env)
        .unwrap();

    let c = space.xqse().run_with_env(read, &mut env).unwrap();
    assert_eq!(
        c.items()[0].string_value(),
        "2",
        "the fresh read path must observe the post-write answer"
    );
}
