//! Table-driven language conformance suite: each case is an XQSE (or
//! plain XQuery) program plus its expected serialized result or
//! expected error code. Covers surface area that the per-crate unit
//! tests exercise only indirectly.

use xqse_repro::xmlparse::serialize_sequence;
use xqse_repro::xqse::Xqse;

fn check_ok(src: &str, expected: &str) {
    let xqse = Xqse::new();
    match xqse.run(src) {
        Ok(seq) => {
            let got = serialize_sequence(&seq);
            assert_eq!(got, expected, "program: {src}");
        }
        Err(e) => panic!("program failed: {src}\nerror: {e}"),
    }
}

fn check_err(src: &str, code_local: &str) {
    let xqse = Xqse::new();
    match xqse.run(src) {
        Ok(seq) => panic!(
            "expected error {code_local} but got {:?} for {src}",
            serialize_sequence(&seq)
        ),
        Err(e) => assert_eq!(e.code.local, code_local, "program: {src}\nerror: {e}"),
    }
}

macro_rules! conformance {
    ($($name:ident: $src:expr => $expected:expr;)*) => {
        $(#[test] fn $name() { check_ok($src, $expected); })*
    };
}

macro_rules! conformance_err {
    ($($name:ident: $src:expr => $code:expr;)*) => {
        $(#[test] fn $name() { check_err($src, $code); })*
    };
}

conformance! {
    // ------------------------------------------------------ sequences
    seq_flatten: "((1, 2), (), (3))" => "1 2 3";
    seq_range_desc_empty: "3 to 1" => "";
    seq_singleton_range: "4 to 4" => "4";
    // ---------------------------------------------------- arithmetic
    arith_precedence: "2 + 3 * 4 - 1" => "13";
    arith_unary_double_neg: "--5" => "5";
    arith_decimal_exact: "0.1 + 0.2 + 0.3" => "0.6";
    arith_idiv_negative: "-7 idiv 2" => "-3";
    arith_mod_negative: "-7 mod 2" => "-1";
    arith_double_inf: "1e0 div 0" => "INF";
    arith_double_neg_inf: "-1e0 div 0" => "-INF";
    arith_empty_propagates: "fn:count(() + 1)" => "0";
    // --------------------------------------------------- comparisons
    cmp_string_collation: "'apple' lt 'banana'" => "true";
    cmp_general_existential_empty: "() = ()" => "false";
    cmp_untyped_numeric: "<a>10</a> > 9" => "true";
    cmp_untyped_string: "<a>10</a> = '10'" => "true";
    cmp_value_empty_is_empty: "fn:count(() eq 1)" => "0";
    cmp_ne_nan: "fn:number('x') = fn:number('x')" => "false";
    // --------------------------------------------------------- logic
    logic_ebv_node: "if (<a/>) then 'y' else 'n'" => "y";
    logic_ebv_zero_string: "if ('0') then 'y' else 'n'" => "y";
    logic_ebv_empty_string: "if ('') then 'y' else 'n'" => "n";
    // --------------------------------------------------------- flwor
    flwor_let_shadowing: "for $x in 1 let $x := $x + 1 return $x" => "2";
    flwor_where_false_empty: "for $x in (1,2) where fn:false() return $x" => "";
    flwor_order_stable:
        "for $p in ('b1','a1','a2','b2') order by fn:substring($p,1,1) return $p"
        => "a1 a2 b1 b2";
    flwor_nested_positional:
        "for $x at $i in ('a','b') for $y at $j in ('c','d') \
         return fn:concat($i, $j)" => "11 12 21 22";
    // --------------------------------------------------------- paths
    path_attribute_exists: "fn:exists(<e id=\"1\"/>/@id)" => "true";
    path_text_node_count: "fn:count(<a>x<b/>y</a>/text())" => "2";
    path_descendant_or_self: "fn:count(<a><a><a/></a></a>/descendant-or-self::a)" => "3";
    path_union_order:
        "for $r in <r><a/><b/></r> \
         return fn:string-join(for $n in ($r/b | $r/a) return fn:local-name($n), ',')"
        => "a,b";
    path_predicate_last: "fn:string((<r><x>1</x><x>2</x></r>/x)[fn:last()])" => "2";
    path_parent_of_attr:
        "for $a in <e id=\"1\"/>/@id return fn:local-name($a/..)" => "e";
    // --------------------------------------------------- constructors
    ctor_nested_interpolation:
        "<o>{for $i in 1 to 2 return <i n=\"{$i}\"/>}</o>"
        => "<o><i n=\"1\"/><i n=\"2\"/></o>";
    ctor_attr_sequence_joined: "<e a=\"{1 to 3}\"/>" => "<e a=\"1 2 3\"/>";
    ctor_comment: "<a><!--note--></a>" => "<a><!--note--></a>";
    ctor_computed_nested:
        "element a { element b { attribute c { 1 } } }" => "<a><b c=\"1\"/></a>";
    ctor_text_between_exprs: "<a>{1}{2}</a>" => "<a>12</a>";
    // ----------------------------------------------------- functions
    fun_string_join_empty: "fn:string-join((), ',')" => "";
    fun_substring_clipping: "fn:substring('hello', 0, 2)" => "h";
    fun_substring_neg_len: "fn:substring('hello', 2, -1)" => "";
    fun_avg_decimal: "fn:avg((1, 2))" => "1.5";
    fun_min_dates:
        "fn:string(fn:min((xs:date('2008-01-01'), xs:date('2007-12-07'))))"
        => "2007-12-07";
    fun_deep_equal_whitespace: "fn:deep-equal(<a>x</a>, <a>x </a>)" => "false";
    fun_index_of_none: "fn:count(fn:index-of((1,2,3), 9))" => "0";
    fun_tokenize_multichar: "fn:tokenize('a::b::c', '::')" => "a b c";
    fun_translate_delete: "fn:translate('abcd', 'bd', '')" => "ac";
    fun_name_functions:
        "for $e in <p:x xmlns:p=\"urn:p\"/> \
         return (fn:local-name($e), fn:namespace-uri($e))" => "x urn:p";
    fun_number_empty_nan: "fn:string(fn:number(()))" => "NaN";
    fun_round_half_up: "(fn:round(0.5), fn:round(1.5), fn:round(-0.5))" => "1 2 0";
    fun_boolean_of_node: "fn:boolean(<a/>)" => "true";
    // --------------------------------------------------------- types
    ty_instance_sequence: "(1, 'a') instance of xs:integer*" => "false";
    ty_instance_mixed_item: "(1, 'a') instance of item()+" => "true";
    ty_castable_date: "'2007-02-29' castable as xs:date" => "false";
    ty_cast_chain: "fn:string(xs:integer(xs:string(42)))" => "42";
    ty_typeswitch_order:
        "typeswitch (1) case xs:double return 'd' case xs:decimal return 'dec' \
         default return 'o'" => "dec";
    // ---------------------------------------------------- statements
    stmt_nested_while:
        "{ declare $i := 0, $total := 0; \
           while ($i lt 3) { \
             declare $j := 0; \
             while ($j lt 3) { set $total := $total + 1; set $j := $j + 1; } \
             set $i := $i + 1; \
           } \
           return value $total; }" => "9";
    stmt_iterate_over_constructed:
        "{ declare $sum := 0; \
           iterate $n over <r><v>1</v><v>2</v><v>3</v></r>/v { \
             set $sum := $sum + fn:number($n); \
           } \
           return value $sum; }" => "6";
    stmt_try_in_loop_continues:
        "{ declare $ok := 0; \
           iterate $i over (1, 2, 3) { \
             try { if ($i = 2) then fn:error(xs:QName('E'), 'skip'); \
                   set $ok := $ok + 1; } \
             catch (*) { } \
           } \
           return value $ok; }" => "2";
    stmt_return_from_nested_block:
        "{ { { return value 'deep'; } } return value 'never'; }" => "deep";
    stmt_update_constructed_tree:
        "{ declare $d := <r><a>1</a></r>; \
           (rename node $d/a as 'z', replace value of node $d/a with '9'); \
           return value $d; }" => "<r><z>9</z></r>";
    stmt_if_without_else_noop:
        "{ declare $x := 1; if (2 lt 1) then set $x := 99; return value $x; }" => "1";
    stmt_procedure_block_scope:
        "{ declare $x := 1; \
           declare $y := procedure { declare $x := 10; return value $x * 2; }; \
           return value ($x, $y); }" => "1 20";
    stmt_while_cond_sees_updates:
        "{ declare $d := <r><i/><i/></r>; declare $n := 0; \
           while (fn:count($d/i) gt 0) { \
             delete node ($d/i)[1]; \
             set $n := $n + 1; \
           } \
           return value $n; }" => "2";
    // ----------------------------------------------------- procedures
    proc_multiple_params:
        "declare namespace t = \"urn:t\"; \
         declare readonly procedure t:clamp($v as xs:integer, $lo as xs:integer, \
                                            $hi as xs:integer) as xs:integer { \
           if ($v lt $lo) then return value $lo; \
           if ($v gt $hi) then return value $hi; \
           return value $v; \
         }; \
         (t:clamp(5, 1, 3), t:clamp(0, 1, 3), t:clamp(2, 1, 3))" => "3 1 2";
    proc_mutual_recursion:
        "declare namespace t = \"urn:t\"; \
         declare readonly procedure t:even($n as xs:integer) as xs:boolean { \
           if ($n = 0) then return value fn:true(); \
           return value t:odd($n - 1); \
         }; \
         declare readonly procedure t:odd($n as xs:integer) as xs:boolean { \
           if ($n = 0) then return value fn:false(); \
           return value t:even($n - 1); \
         }; \
         (t:even(10), t:odd(7))" => "true true";
    // ------------------------------------------------ xuf expressions
    xuf_insert_attributes:
        "{ declare $d := <e/>; \
           insert node (attribute a { 1 }, attribute b { 2 }) into $d; \
           return value $d; }" => "<e a=\"1\" b=\"2\"/>";
    xuf_transform_in_expression:
        "for $c in (copy $x := <v n=\"1\"/> \
                    modify rename node $x as 'w' \
                    return $x) \
         return fn:local-name($c)" => "w";
    xuf_delete_all_children:
        "{ declare $d := <r><a/><b/>text</r>; \
           delete nodes $d/node(); \
           return value fn:count($d/node()); }" => "0";
}

conformance_err! {
    err_div_by_zero: "1 div 0" => "FOAR0001";
    err_undefined_var: "$nope" => "XPST0008";
    err_unknown_function: "fn:nope()" => "XPST0017";
    err_type_in_arith: "'a' * 2" => "XPTY0004";
    err_cast_failure: "'abc' cast as xs:integer" => "FORG0001";
    err_treat_as: "(1,2) treat as xs:integer" => "XPDY0050";
    err_user_error_code:
        "{ fn:error(xs:QName('APP_ERR'), 'oops'); }" => "APP_ERR";
    err_updating_in_expression: "fn:count(delete node <a/>)" => "XUST0001";
    err_break_at_top: "{ break(); }" => "XQSE0003";
    err_set_readonly:
        "for $x in 1 return (for $y in ({ set $x := 2; return value 1; }) return $y)"
        => "XPST0003"; // blocks are not expressions: parse error
    err_uninitialized_use: "{ declare $x; return value fn:count($x); }" => "XQSE0002";
    err_assign_type_mismatch:
        "{ declare $x as xs:integer := 1; set $x := 'no'; }" => "XPTY0004";
    err_iterate_var_assignment:
        "{ iterate $v over (1,2) { set $v := 0; } }" => "XQSE0001";
    err_context_item_absent: "." => "XPDY0002";
    err_effective_boolean_multi: "if ((1,2)) then 1 else 2" => "FORG0006";
}

/// Statement/expression boundary: the same `while` text is a statement
/// in XQSE and has no value; `fn:trace` effects still happen in order.
#[test]
fn statement_effects_are_ordered() {
    let xqse = Xqse::new();
    let mut env = xqse_repro::xqeval::Env::new();
    let out = xqse
        .run_with_env(
            "{ declare $i := 0; \
               while ($i lt 3) { fn:trace(fn:concat('step', $i)); set $i := $i + 1; } \
               return value $i; }",
            &mut env,
        )
        .unwrap();
    assert_eq!(serialize_sequence(&out), "3");
    assert_eq!(env.trace_messages(), vec!["step0", "step1", "step2"]);
}

/// Static validation agrees with runtime on the conformance corpus.
#[test]
fn validator_consistent_with_runtime() {
    for (src, expect_static) in [
        ("{ break(); }", true),
        ("{ declare $x; return value $x; }", true),
        ("{ set $ghost := 1; }", true),
        ("{ declare $x := 1; set $x := 2; return value $x; }", false),
    ] {
        let module = xqse_repro::xqparser::parse_module(src).unwrap();
        let diags = xqse_repro::xqse::validate_module(&module);
        assert_eq!(
            !diags.is_empty(),
            expect_static,
            "validator disagreement on {src:?}: {diags:?}"
        );
    }
}
