//! Offline shim for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors a small, API-compatible benchmarking harness covering the
//! subset the `xqse-bench` crate uses: `Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `Bencher::{iter, iter_with_setup}`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up, then the iteration
//! count is auto-scaled until a batch takes ≳2 ms; `sample_size`
//! batches are timed and the median/min/max per-iteration times are
//! printed. No plotting, no statistics beyond that — enough to compare
//! hot paths (e.g. resilience overhead vs the seed baseline) offline.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Throughput annotation (recorded, displayed with the result line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the scheduled number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` only, re-running `setup` (untimed) per iteration.
    pub fn iter_with_setup<I, R, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Auto-scale the per-sample iteration count to ≳2 ms.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 22 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut per_iter: Vec<f64> = (0..samples.max(3))
        .map(|_| {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = per_iter[per_iter.len() / 2];
    let (min, max) = (per_iter[0], per_iter[per_iter.len() - 1]);
    let tp = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:.1} MiB/s", n as f64 / (median / 1e9) / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:.1} elem/s", n as f64 / (median / 1e9))
        }
        None => String::new(),
    };
    println!(
        "bench {label:<48} {median:>12.1} ns/iter (min {min:.1} .. max {max:.1}, {iters} iters/sample){tp}"
    );
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.throughput, self.samples, &mut f);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.throughput, self.samples, &mut |b| f(b, input));
        self
    }

    /// Finish the group (no-op beyond matching the real API).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Match real criterion's builder entry point (no-op here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            throughput: None,
            _parent: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), None, 10, &mut f);
        self
    }
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_function("noop", |b| b.iter(|| count += 1));
        g.bench_with_input(BenchmarkId::new("with", 4), &4u64, |b, &n| {
            b.iter_with_setup(|| n, |v| v * 2)
        });
        g.finish();
        assert!(count > 0);
    }
}
