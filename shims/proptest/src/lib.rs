//! Offline shim for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors a small, deterministic, API-compatible subset of proptest:
//! the [`Strategy`] trait (`prop_map`, `prop_recursive`, `boxed`),
//! `Just`, unions (`prop_oneof!`), tuple and range strategies, a
//! regex-subset string strategy, `collection::vec`, `bool::ANY`, and
//! the `proptest!` / `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its seed and case number;
//!   cases are deterministic (seeded from the test name), so failures
//!   reproduce exactly on re-run.
//! - **Regex strategies** support the subset used here: character
//!   classes with ranges (`[A-Za-z0-9_ ]`), literal characters, and
//!   `{m,n}` / `{n}` / `+` / `*` / `?` quantifiers.

use std::rc::Rc;

/// Deterministic split-mix / xorshift RNG used by all strategies.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed | 1)
    }

    /// Next raw 64 bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`; `lo < hi` required.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform signed value in `[lo, hi)`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        let span = (hi as i128 - lo as i128) as u64;
        (lo as i128 + (self.next_u64() % span) as i128) as i64
    }

    /// Uniform bool.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A value-generation strategy (proptest's core abstraction, minus
/// shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<U, F: Fn(Self::Value) -> U + 'static>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive strategy: at each of `depth` levels, either stay with
    /// the leaf strategy or expand once via `recurse`.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let expanded = recurse(level).boxed();
            level = Union::new(vec![leaf.clone(), expanded]).boxed();
        }
        level
    }
}

/// A type-erased, cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn StrategyDyn<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

trait StrategyDyn<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyDyn<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between alternative strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Build from boxed alternatives (must be non-empty).
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one arm");
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range_u64(0, self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range_i64(self.start as i64, self.end as i64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range_i64(*self.start() as i64, *self.end() as i64 + 1) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, u8, u16, u32, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ------------------------------------------------------- regex subset

#[derive(Debug, Clone)]
enum PatItem {
    Class(Vec<char>),
    Lit(char),
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    let mut pending: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => {
                if let Some(p) = pending {
                    out.push(p);
                }
                return out;
            }
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let lo = pending.take().expect("checked");
                if let Some(hi) = chars.next() {
                    for v in lo as u32..=hi as u32 {
                        if let Some(ch) = char::from_u32(v) {
                            out.push(ch);
                        }
                    }
                }
            }
            c => {
                if let Some(p) = pending.take() {
                    out.push(p);
                }
                pending = Some(c);
            }
        }
    }
    if let Some(p) = pending {
        out.push(p);
    }
    out
}

fn parse_pattern(pat: &str) -> Vec<(PatItem, usize, usize)> {
    let mut items = Vec::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        let item = match c {
            '[' => PatItem::Class(parse_class(&mut chars)),
            '\\' => PatItem::Lit(chars.next().unwrap_or('\\')),
            c => PatItem::Lit(c),
        };
        // Optional quantifier.
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for q in chars.by_ref() {
                    if q == '}' {
                        break;
                    }
                    spec.push(q);
                }
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().unwrap_or(0),
                        b.trim().parse().unwrap_or(8),
                    ),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        items.push((item, lo, hi));
    }
    items
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (item, lo, hi) in parse_pattern(self) {
            let n = if lo == hi {
                lo
            } else {
                rng.gen_range_u64(lo as u64, hi as u64 + 1) as usize
            };
            for _ in 0..n {
                match &item {
                    PatItem::Lit(c) => out.push(*c),
                    PatItem::Class(set) => {
                        if !set.is_empty() {
                            let i = rng.gen_range_u64(0, set.len() as u64) as usize;
                            out.push(set[i]);
                        }
                    }
                }
            }
        }
        out
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy producing `Vec`s with length drawn from `len` and
    /// elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// `proptest::collection::vec(strategy, range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, lo: len.start, hi: len.end }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.lo >= self.hi {
                self.lo
            } else {
                rng.gen_range_u64(self.lo as u64, self.hi as u64) as usize
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// The uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool()
        }
    }
}

/// Runner configuration and failure types (`proptest::test_runner`).
pub mod test_runner {
    /// Number-of-cases configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Construct from a message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Seed derivation: deterministic per test name.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The glob-import prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
    };
    pub use crate::{BoxedStrategy, Just, Strategy, TestRng, Union};
}

/// `prop_oneof![a, b, c]` — uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// `prop_assert!(cond, "fmt", ..)` — fail the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b, ..)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{} ({:?} != {:?})", format!($($fmt)*), a, b);
    }};
}

/// `prop_assert_ne!(a, b, ..)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: both sides equal {:?}", a);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{} (both {:?})", format!($($fmt)*), a);
    }};
}

/// The `proptest! { ... }` test-definition macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        // Note: callers write `#[test]` themselves inside `proptest!`
        // (real-proptest convention), so the metas are passed through
        // verbatim rather than adding another `#[test]`.
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategies = ($($strat,)+);
            let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::new(
                    seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let ($($arg,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                let outcome: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "property {} failed at case {}/{} (seed {:#x}): {}",
                        stringify!($name), case, config.cases, seed, e,
                    );
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_regex_are_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        let s: String = "[a-z]{1,5}".generate(&mut a);
        let s2: String = "[a-z]{1,5}".generate(&mut b);
        assert_eq!(s, s2);
        assert!((1..=5).contains(&s.len()));
        assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        let n = (10i64..20).generate(&mut a);
        assert!((10..20).contains(&n));
    }

    #[test]
    fn class_with_leading_literal_and_tail() {
        let mut rng = TestRng::new(7);
        for _ in 0..50 {
            let s: String = "[A-Za-z][A-Za-z0-9_]{0,6}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().is_some_and(|c| c.is_ascii_alphabetic()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_roundtrip(v in collection::vec(0i64..10, 0..4), b in bool::ANY) {
            prop_assert!(v.len() < 4);
            prop_assert_eq!(i64::from(b) * i64::from(!b), 0);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_recursive(x in prop_oneof![Just(1i64), 5i64..9]) {
            prop_assert!(x == 1 || (5..9).contains(&x));
        }
    }
}
