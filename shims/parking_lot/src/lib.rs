//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access and no vendored
//! registry, so this workspace ships a tiny API-compatible subset of
//! `parking_lot` backed by `std::sync`. Only the surface the workspace
//! actually uses is provided: `Mutex`/`MutexGuard` and
//! `RwLock`/`RwLockReadGuard`/`RwLockWriteGuard` with the
//! non-poisoning `lock()/read()/write()` signatures.
//!
//! Poisoning semantics: `parking_lot` locks are not poisoned by
//! panics. The shim recovers the inner guard from a poisoned std lock
//! (`into_inner` on the error), which matches `parking_lot`'s
//! behaviour closely enough for in-process simulators.

use std::fmt;
use std::sync;

/// A non-poisoning mutex (subset of `parking_lot::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(g),
            Err(p) => MutexGuard(p.into_inner()),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A non-poisoning reader-writer lock (subset of
/// `parking_lot::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(p) => RwLockReadGuard(p.into_inner()),
        }
    }

    /// Acquire an exclusive write lock. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(p) => RwLockWriteGuard(p.into_inner()),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
