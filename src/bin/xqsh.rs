//! xqsh — a small driver for XQSE programs.
//!
//! Usage:
//!   xqsh <file.xqse> [--trace] [--xqueryp] [--explain] [--no-opt] [--no-batch] [--no-graft] [--no-lazy] [--doc URI=FILE]...
//!   echo '{ return value 1 + 1; }' | xqsh -
//!   xqsh --repl < lines.xqse
//!   xqsh --serve-bench N [--requests R] [--delay-us D] [--explain]
//!
//! Runs the module (expression or block body) and prints the
//! serialized result. `--trace` also prints `fn:trace` output;
//! `--xqueryp` executes in XQueryP sequential mode (the §IV baseline);
//! `--explain` prints the optimizer's hit/miss/invalidation counters
//! (join cache, materialization cache, pushdown rewrites, plan cache,
//! web-service coalescing) plus the XA crash-recovery totals to
//! stderr after the run; `--no-opt`
//! disables the pushdown/caching layer (equivalent to
//! XQSE_DISABLE_OPT=1); `--no-batch` disables only the prepared-plan
//! and source-batching layer (equivalent to XQSE_DISABLE_BATCH=1);
//! `--no-graft` disables zero-copy subtree adoption in constructors
//! (equivalent to XQSE_DISABLE_GRAFT=1 — the E16 ablation);
//! `--no-lazy` disables pipelined lazy FLWOR evaluation (equivalent
//! to XQSE_DISABLE_LAZY=1 — the E17 ablation);
//! `--doc` registers an XML file so `fn:doc("URI")` resolves.
//!
//! In script mode the result is serialized **incrementally**: items
//! are written (and stdout flushed) as the lazy stream yields them,
//! so time-to-first-byte tracks the first tuple, not the last. A
//! mid-stream error can therefore leave partial output on stdout
//! before the error report on stderr (see DESIGN.md §11).
//!
//! `--repl` reads stdin line by line, evaluating each non-empty line
//! as its own program against one shared engine and context. Repeated
//! lines hit the engine's prepared-plan cache instead of re-parsing —
//! `--explain` after a repeated line shows `plan cache hits` climbing.
//!
//! `--serve-bench N` starts the concurrent serving layer
//! (`aldsp::pool::ServePool`) with N workers over the demo dataspace
//! and replays a closed-loop read workload (`getProfileById` over
//! distinct customers, each call paying `--delay-us` microseconds of
//! simulated web-service latency), printing queries/sec. Under the
//! pool, `--explain` prints the **aggregated** per-worker counters as
//! one totals line. The env kill switch `XQSE_SERVE_WORKERS`
//! overrides N (EXPERIMENTS.md E14 uses `XQSE_SERVE_WORKERS=1` to
//! reproduce single-threaded numbers).
//!
//! `--deadline-ms MS` / `--fuel N` attach a per-request budget: in
//! script/repl mode the whole program runs under one budget (real
//! elapsed time); under `--serve-bench` every pool request gets its
//! own. Exhaustion surfaces as the XQSE-catchable errors
//! `aldsp:DEADLINE_EXCEEDED` / `aldsp:FUEL_EXHAUSTED` (see
//! docs/LIMITS.md). `--overload` switches `--serve-bench` to the
//! load-shedding driver: clients submit at 4× pool concurrency
//! without back-pressure and excess arrivals are shed fast with
//! `aldsp:OVERLOADED`; the report line prints
//! offered/completed/shed/cancelled. `XQSE_DISABLE_BUDGETS=1` is the
//! budget kill switch.

use std::io::{BufRead, Read};
use std::process::ExitCode;
use std::rc::Rc;

use xqeval::{Engine, Env, OptStats};
use xqse::xqueryp::XqueryP;
use xqse::Xqse;

fn usage() -> ExitCode {
    eprintln!(
        "usage: xqsh <file.xqse | - | --repl> [--trace] [--xqueryp] [--explain] \
         [--no-opt] [--no-batch] [--no-graft] [--no-lazy] [--deadline-ms MS] \
         [--fuel N] [--doc URI=FILE]...\n       \
         xqsh --serve-bench N [--requests R] [--delay-us D] [--overload] \
         [--deadline-ms MS] [--fuel N] [--explain]"
    );
    ExitCode::from(2)
}

fn print_explain_stats(s: &OptStats, optimize: bool, batch: bool, graft: bool, lazy: bool) {
    // Every feature flag and every counter group prints
    // unconditionally — zero-valued counters included — so bench
    // scripts can parse the explain block without first guessing
    // which features were engaged on this run.
    eprintln!("explain: optimize = {optimize}");
    eprintln!("explain: batch    = {batch}");
    eprintln!("explain: graft    = {graft}");
    eprintln!("explain: lazy     = {lazy}");
    eprintln!(
        "explain: join cache     hits={} misses={} invalidations={}",
        s.join_hits, s.join_misses, s.join_invalidations
    );
    eprintln!(
        "explain: mat cache      hits={} misses={} invalidations={}",
        s.mat_hits, s.mat_misses, s.mat_invalidations
    );
    eprintln!(
        "explain: pushdown       rewrites={} indexed-selects={}",
        s.pushdown_rewrites, s.indexed_selects
    );
    eprintln!(
        "explain: plan cache     hits={} misses={}",
        s.plan_hits, s.plan_misses
    );
    eprintln!(
        "explain: web service    requests={} issued={} coalesced={} batches={}",
        s.ws_requests, s.ws_issued, s.ws_coalesced, s.ws_batches
    );
    eprintln!(
        "explain: xa recovery    runs={} in-doubt={} rolled-forward={} \
         rolled-back={} replays-skipped={}",
        s.xa_recovery_runs,
        s.xa_in_doubt,
        s.xa_rolled_forward,
        s.xa_rolled_back,
        s.xa_replays_skipped
    );
    eprintln!(
        "explain: budgets        shed={} cancelled={} deadline={} fuel={} memory={}",
        s.budget_shed, s.budget_cancelled, s.budget_deadline, s.budget_fuel, s.budget_memory
    );
    eprintln!(
        "explain: xdm            nodes-built={} subtrees-grafted={} \
         deep-copy-nodes-avoided={} interned-hits={}",
        s.nodes_built, s.subtrees_grafted, s.deep_copy_nodes_avoided, s.interned_hits
    );
    eprintln!(
        "explain: streaming      tuples-pulled={} early-exits={} items-never-built={}",
        s.tuples_pulled, s.early_exits, s.items_never_built
    );
}

fn print_explain(engine: &Engine) {
    print_explain_stats(
        &engine.opt_stats(),
        engine.optimize_enabled(),
        engine.batch_enabled(),
        engine.graft_enabled(),
        engine.lazy_enabled(),
    );
}

/// The `--serve-bench` mode: the E14 closed-loop throughput driver,
/// or (with `overload`) the E15 load-shedding driver.
#[allow(clippy::too_many_arguments)]
fn serve_bench(
    workers: usize,
    requests: usize,
    delay_us: u64,
    explain: bool,
    overload: bool,
    deadline_ms: Option<u64>,
    fuel: Option<u64>,
    no_graft: bool,
    no_lazy: bool,
) -> ExitCode {
    use aldsp::demo;
    use aldsp::pool::{
        drive_closed_loop, drive_open_loop, ServeArg, ServePool, ServeRequest, ServeSpec,
    };
    use aldsp::ws::WebService;

    // One distinct customer per request so the per-worker response
    // caches cannot swallow the simulated wire latency.
    let demo = match demo::build(requests, 1, 1) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xqsh: serve-bench fixture failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (db1, db2) = (demo.db1.clone(), demo.db2.clone());
    let mut spec = ServeSpec::new(workers);
    if overload {
        // Admission control needs a bound to enforce: cap the queue at
        // one waiting request per worker so the 4× offered load
        // actually overflows it and sheds, instead of parking in an
        // effectively unbounded queue.
        spec.queue_capacity = workers.max(1);
    }
    if let Some(ms) = deadline_ms {
        spec = spec.with_deadline_ms(ms);
    }
    if let Some(steps) = fuel {
        spec = spec.with_fuel(steps);
    }
    let pool = ServePool::start(spec, move |_worker| {
        let space = demo::assemble(
            &db1,
            &db2,
            WebService::credit_rating_delayed(demo::CREDIT_TYPES_NS, delay_us),
        );
        // Per-worker engines read XQSE_DISABLE_GRAFT / _LAZY themselves
        // at construction; the --no-graft/--no-lazy flags have to
        // reach them here.
        if let Ok(s) = &space {
            if no_graft {
                s.engine().set_graft(false);
            }
            if no_lazy {
                s.engine().set_lazy(false);
            }
        }
        space
    });
    let reqs: Vec<ServeRequest> = (0..requests)
        .map(|i| ServeRequest::Get {
            service: "CustomerProfile".to_string(),
            method: "getProfileById".to_string(),
            args: vec![ServeArg::Str((i + 1).to_string())],
        })
        .collect();
    // Overload mode offers 4× the pool's concurrency without
    // back-pressure; the closed loop stays at the E14 shape.
    let clients = if overload { pool.workers() * 4 } else { pool.workers() * 2 };
    let (replies, elapsed) = if overload {
        drive_open_loop(&pool, &reqs, clients)
    } else {
        drive_closed_loop(&pool, &reqs, clients)
    };
    // Budget-governed outcomes (sheds, deadline/fuel/memory
    // terminations, cancels) are expected under overload or tight
    // budgets and are reported via the pool counters, not as errors.
    let budget_outcomes = replies
        .iter()
        .filter(|r| {
            use aldsp::errors::AldspCode as C;
            matches!(
                r.result.as_ref().err().and_then(C::of),
                Some(
                    C::Overloaded
                        | C::DeadlineExceeded
                        | C::FuelExhausted
                        | C::MemoryLimit
                        | C::Cancelled
                )
            )
        })
        .count();
    let errors = replies.iter().filter(|r| r.result.is_err()).count() - budget_outcomes;
    let report = pool.shutdown();
    let qps = replies.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "serve-bench: workers={} clients={} requests={} errors={} elapsed_ms={:.1} qps={:.1}",
        report.workers,
        clients,
        replies.len(),
        errors,
        elapsed.as_secs_f64() * 1e3,
        qps
    );
    if overload {
        // Goodput = completed work per second; sheds fail fast and are
        // reported separately, not as errors.
        let goodput = report.completed as f64 / elapsed.as_secs_f64().max(1e-9);
        println!(
            "serve-bench: mode=overload offered={} completed={} shed={} cancelled={} goodput_qps={:.1}",
            report.offered, report.completed, report.shed, report.cancelled, goodput
        );
    }
    for (i, err) in report.init_errors.iter().enumerate() {
        if let Some(err) = err {
            eprintln!("xqsh: worker {i} failed to initialize: {err}");
        }
    }
    if errors > 0 {
        if let Some(e) = replies.iter().find_map(|r| r.result.as_ref().err()) {
            eprintln!("xqsh: first request error: {e}");
        }
    }
    if explain {
        // Aggregated per-worker counters, one totals block. The pool
        // has no single engine to query, so the feature lines mirror
        // what the per-worker engines computed: env kill switch
        // combined with the CLI flag.
        let env_on = |k: &str| !matches!(std::env::var(k).as_deref(), Ok("1"));
        print_explain_stats(
            &report.stats,
            env_on("XQSE_DISABLE_OPT"),
            env_on("XQSE_DISABLE_BATCH"),
            !no_graft && env_on("XQSE_DISABLE_GRAFT"),
            !no_lazy && env_on("XQSE_DISABLE_LAZY"),
        );
    }
    if errors > 0 || report.init_errors.iter().any(Option::is_some) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut source_arg: Option<String> = None;
    let mut trace = false;
    let mut sequential = false;
    let mut explain = false;
    let mut no_opt = false;
    let mut no_batch = false;
    let mut no_graft = false;
    let mut no_lazy = false;
    let mut repl = false;
    let mut serve_workers: Option<usize> = None;
    let mut serve_requests: usize = 64;
    let mut serve_delay_us: u64 = 2000;
    let mut overload = false;
    let mut deadline_ms: Option<u64> = None;
    let mut fuel: Option<u64> = None;
    let mut docs: Vec<(String, String)> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => trace = true,
            "--xqueryp" => sequential = true,
            "--explain" => explain = true,
            "--no-opt" => no_opt = true,
            "--no-batch" => no_batch = true,
            "--no-graft" => no_graft = true,
            "--no-lazy" => no_lazy = true,
            "--repl" => repl = true,
            "--overload" => overload = true,
            "--deadline-ms" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => deadline_ms = Some(n),
                _ => return usage(),
            },
            "--fuel" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n >= 1 => fuel = Some(n),
                _ => return usage(),
            },
            "--serve-bench" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => serve_workers = Some(n),
                _ => return usage(),
            },
            "--requests" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => serve_requests = n,
                _ => return usage(),
            },
            "--delay-us" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) => serve_delay_us = n,
                _ => return usage(),
            },
            "--doc" => match it.next().and_then(|d| {
                d.split_once('=').map(|(u, f)| (u.to_string(), f.to_string()))
            }) {
                Some(pair) => docs.push(pair),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            other if source_arg.is_none() => source_arg = Some(other.to_string()),
            _ => return usage(),
        }
    }
    if let Some(workers) = serve_workers {
        if source_arg.is_some() || repl || sequential {
            return usage();
        }
        return serve_bench(
            workers,
            serve_requests,
            serve_delay_us,
            explain,
            overload,
            deadline_ms,
            fuel,
            no_graft,
            no_lazy,
        );
    }
    if overload || (repl && (source_arg.is_some() || sequential)) {
        return usage();
    }

    let engine = Rc::new(Engine::new());
    if no_opt {
        engine.set_optimize(false);
    }
    if no_batch {
        engine.set_batch(false);
    }
    if no_graft {
        engine.set_graft(false);
    }
    if no_lazy {
        engine.set_lazy(false);
    }
    if deadline_ms.is_some() || fuel.is_some() {
        // One budget covers the whole script (or repl session), on
        // real elapsed time. `XQSE_DISABLE_BUDGETS=1` makes this a
        // no-op inside set_budget.
        let t0 = std::time::Instant::now();
        let clock: xqeval::BudgetClock =
            std::sync::Arc::new(move || t0.elapsed().as_millis() as u64);
        let mut budget = xqeval::Budget::with_clock(clock);
        if let Some(ms) = deadline_ms {
            budget = budget.deadline_in(ms);
        }
        if let Some(steps) = fuel {
            budget = budget.limit_fuel(steps);
        }
        engine.set_budget(Some(std::sync::Arc::new(budget)));
    }
    for (uri, file) in docs {
        let xml = match std::fs::read_to_string(&file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xqsh: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match xmlparse::parse(&xml) {
            Ok(doc) => engine.register_document(uri, doc),
            Err(e) => {
                eprintln!("xqsh: cannot parse {file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if repl {
        // One engine, one context: every line is its own program, but
        // repeated program texts re-execute the cached prepared plan
        // instead of being parsed and prolog-loaded again.
        let xqse = Xqse::with_engine(engine.clone());
        let mut env = Env::new();
        let mut failed = false;
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("xqsh: failed to read stdin: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let program = line.trim();
            if program.is_empty() || program.starts_with('#') {
                continue;
            }
            match xqse.run_with_env(program, &mut env) {
                Ok(seq) => println!("{}", xmlparse::serialize_sequence(&seq)),
                Err(e) => {
                    eprintln!("xqsh: {e}");
                    failed = true;
                }
            }
        }
        if trace {
            for line in env.trace_messages() {
                eprintln!("trace: {line}");
            }
        }
        if explain {
            print_explain(&engine);
        }
        return if failed { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }

    let Some(path) = source_arg else { return usage() };

    let src = if path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("xqsh: failed to read stdin");
            return ExitCode::FAILURE;
        }
        buf
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xqsh: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut env = Env::new();
    let status = if sequential {
        // The XQueryP baseline stays fully eager: it is the §IV
        // comparison point, so its output path is the batch one.
        let xp = XqueryP::with_engine(engine.clone());
        match xp.run_with_env(&src, &mut env) {
            Ok(seq) => {
                println!("{}", xmlparse::serialize_sequence(&seq));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("xqsh: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let xqse = Xqse::with_engine(engine.clone());
        match xqse.run_lazy_with_env(&src, &mut env) {
            Ok(seq) => emit_streaming(&seq),
            Err(e) => {
                eprintln!("xqsh: {e}");
                ExitCode::FAILURE
            }
        }
    };
    // Trace and explain print after the drain: a lazy result only
    // runs (and only bumps the streaming counters) while it is being
    // serialized above.
    if trace {
        for line in env.trace_messages() {
            eprintln!("trace: {line}");
        }
    }
    if explain {
        print_explain(&engine);
    }
    status
}

/// Drain a (possibly lazy) result sequence to stdout incrementally,
/// flushing after every item so the first tuple is visible before the
/// last one is computed. A mid-stream error leaves the already-emitted
/// prefix on stdout and reports the error on stderr — the documented
/// streaming deviation (DESIGN.md §11).
fn emit_streaming(seq: &xdm::Sequence) -> ExitCode {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut ser = xmlparse::IncrementalSerializer::new();
    let mut i = 0usize;
    loop {
        match seq.try_item(i) {
            Ok(Some(item)) => {
                ser.write_item(&item);
                if out.write_all(ser.take_delta().as_bytes()).is_err() || out.flush().is_err() {
                    eprintln!("xqsh: failed to write stdout");
                    return ExitCode::FAILURE;
                }
                i += 1;
            }
            Ok(None) => {
                let _ = out.write_all(b"\n");
                let _ = out.flush();
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                if i > 0 {
                    // Terminate the partial line before reporting.
                    let _ = out.write_all(b"\n");
                    let _ = out.flush();
                }
                eprintln!("xqsh: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
}
