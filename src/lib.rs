//! Umbrella crate for the XQSE reproduction workspace.
//!
//! Re-exports the public surface of every subsystem so that examples and
//! integration tests can use a single dependency. See the individual
//! crates for documentation:
//!
//! - [`xdm`] — XQuery Data Model
//! - [`xmlparse`] — XML parsing and serialization
//! - [`xqparser`] — XQuery + XQSE parser
//! - [`xqeval`] — XQuery expression evaluator and update facility
//! - [`xqse`] — the XQSE statement execution engine (the paper's contribution)
//! - [`aldsp`] — the AquaLogic Data Services Platform substrate

pub use aldsp;
pub use xdm;
pub use xmlparse;
pub use xqeval;
pub use xqparser;
pub use xqse;
