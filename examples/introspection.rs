//! Source introspection end to end (§II.A): point the platform at a
//! relational source defined by its SQL DDL and a web service defined
//! by its WSDL, and get data services — read methods, generated C/U/D
//! procedures, navigation functions from foreign keys, and library
//! methods per WSDL operation — ready for XQuery/XQSE composition.
//!
//! Run with: `cargo run --example introspection`

use std::collections::HashMap;
use std::rc::Rc;

use aldsp::ddl::apply_ddl;
use aldsp::rel::{Database, SqlValue};
use aldsp::service::DataSpace;
use aldsp::ws::WsHandler;
use aldsp::wsdl::{parse_wsdl, CREDIT_RATING_WSDL};
use xdm::sequence::{Item, Sequence};

const DDL: &str = r#"
-- the paper's customer database, as its DBA would define it
CREATE TABLE CUSTOMER (
    CID INTEGER PRIMARY KEY,
    FIRST_NAME VARCHAR(40) NOT NULL,
    LAST_NAME VARCHAR(40) NOT NULL,
    SSN VARCHAR(11)
);
CREATE TABLE "ORDER" (
    OID INTEGER PRIMARY KEY,
    CID INTEGER NOT NULL,
    STATUS VARCHAR(16),
    CONSTRAINT FK_ORDER_CUSTOMER
        FOREIGN KEY (CID) REFERENCES CUSTOMER (CID)
);
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Relational source from DDL.
    let db = Database::new("db1");
    let created = apply_ddl(&db, DDL)?;
    println!("DDL created tables: {}", created.join(", "));
    db.insert(
        "CUSTOMER",
        vec![
            SqlValue::Int(7),
            SqlValue::Str("Michael".into()),
            SqlValue::Str("Carey".into()),
            SqlValue::Str("123-45-6789".into()),
        ],
    )?;
    db.insert(
        "ORDER",
        vec![SqlValue::Int(1), SqlValue::Int(7), SqlValue::Str("OPEN".into())],
    )?;

    // 2. Web service from WSDL, with an in-process handler standing in
    //    for the remote endpoint.
    let wsdl = parse_wsdl(CREDIT_RATING_WSDL)?;
    println!(
        "WSDL service {} ({}): operations {}",
        wsdl.name,
        wsdl.target_namespace,
        wsdl.operations
            .iter()
            .map(|o| o.name.clone())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let mut handlers: HashMap<String, WsHandler> = HashMap::new();
    handlers.insert(
        "getCreditRating".into(),
        Rc::new(|_req: &Sequence| Ok(Sequence::one(Item::string("720")))),
    );
    let ws = wsdl.into_web_service(handlers)?;

    // 3. Register both; introspection builds the data services.
    let space = DataSpace::new();
    space.register_relational_source(&db)?;
    space.register_web_service(ws)?;
    for name in space.service_names() {
        println!("\n{}", space.describe(&name)?.trim_end());
    }

    // 4. Everything is immediately queryable.
    let out = space.engine().eval_expr_str(
        "for $c in cus:CUSTOMER() \
         return <Summary name=\"{fn:data($c/LAST_NAME)}\" \
                         orders=\"{fn:count(cus:getORDER($c))}\" \
                         rating=\"{ws:getCreditRating(<q/>)}\"/>",
        &[("cus", "ld:db1/CUSTOMER"), ("ws", "ld:ws/CreditRating")],
    )?;
    println!("\nquery result: {}", xmlparse::serialize_sequence(&out));
    Ok(())
}
