//! Use case 4 (§III.D.4): a replicating create method — XQSE replaces
//! the system-provided create for a logical service that "fronts" two
//! sources, invoking create on both and wrapping failures in
//! application-level error codes via try/catch.
//!
//! Run with: `cargo run --example replicated_create`

use aldsp::rel::{Column, ColumnType, Database, SqlValue, TableSchema};
use aldsp::service::DataSpace;
use xdm::qname::QName;
use xdm::sequence::{Item, Sequence};
use xqeval::Env;

fn employee_schema(table: &str) -> TableSchema {
    TableSchema {
        name: table.into(),
        columns: vec![
            Column::required("EmployeeID", ColumnType::Integer),
            Column::required("Name", ColumnType::Varchar),
        ],
        primary_key: vec!["EmployeeID".into()],
        foreign_keys: vec![],
    }
}

const REPLICATING_CREATE: &str = r#"
declare namespace tns = "ld:ReplicatedEmployees";
declare namespace p = "ld:primary/EMPLOYEE";
declare namespace b = "ld:backup/EMPLOYEE";

declare procedure tns:create($newEmps as element(EMPLOYEE)*)
  as element(EMPLOYEE_KEY)*
{
  declare $keys as element(EMPLOYEE_KEY)* := ();
  iterate $newEmp over $newEmps {
    declare $key as element(EMPLOYEE_KEY)?;
    try { set $key := p:createEMPLOYEE($newEmp); }
    catch (* into $err, $msg) {
      fn:error(xs:QName("PRIMARY_CREATE_FAILURE"),
        fn:concat("Primary create failed due to: ", $err, " ", $msg));
    };
    try { b:createEMPLOYEE($newEmp); }
    catch (* into $err, $msg) {
      fn:error(xs:QName("SECONDARY_CREATE_FAILURE"),
        fn:concat("Backup create failed due to: ", $err, " ", $msg));
    };
    set $keys := ($keys, $key);
  }
  return value $keys;
};
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let primary = Database::new("primary");
    primary.create_table(employee_schema("EMPLOYEE"))?;
    let backup = Database::new("backup");
    backup.create_table(employee_schema("EMPLOYEE"))?;

    let space = DataSpace::new();
    space.register_relational_source(&primary)?;
    space.register_relational_source(&backup)?;
    space.xqse().load(REPLICATING_CREATE)?;

    let create = QName::with_ns("ld:ReplicatedEmployees", "create");
    let emp = |id: i64, name: &str| -> Sequence {
        let xml = format!(
            "<EMPLOYEE><EmployeeID>{id}</EmployeeID><Name>{name}</Name></EMPLOYEE>"
        );
        let doc = xmlparse::parse(&xml).unwrap();
        Sequence::one(Item::Node(doc.children()[0].clone()))
    };

    // Happy path: a batch of three replicates to both sources.
    let mut env = Env::new();
    let batch = emp(1, "Ann").concat(emp(2, "Bob")).concat(emp(3, "Cid"));
    let keys = space.xqse().call_procedure(&create, vec![batch], &mut env)?;
    println!(
        "created {} employees on both sources (primary={}, backup={})",
        keys.len(),
        primary.row_count("EMPLOYEE")?,
        backup.row_count("EMPLOYEE")?
    );

    // Failure injection: a conflicting row already exists only on the
    // backup, so the primary create succeeds and the backup create
    // fails — surfaced as SECONDARY_CREATE_FAILURE.
    backup.insert("EMPLOYEE", vec![SqlValue::Int(4), SqlValue::Str("Ghost".into())])?;
    match space.xqse().call_procedure(&create, vec![emp(4, "Dee")], &mut env) {
        Err(e) => {
            println!("\nreplication failure surfaced as: {}", e.code);
            println!("  message: {}", e.message);
            // The paper notes try/catch does NOT roll back prior side
            // effects: the primary row remains — an at-least-once
            // replication design the application must reconcile.
            println!(
                "  primary now has {} rows, backup {} rows (no rollback by design)",
                primary.row_count("EMPLOYEE")?,
                backup.row_count("EMPLOYEE")?
            );
        }
        Ok(_) => println!("unexpected success"),
    }

    // Duplicate id on the primary: PRIMARY_CREATE_FAILURE.
    match space.xqse().call_procedure(&create, vec![emp(1, "Dup")], &mut env) {
        Err(e) => println!("\nduplicate detected: {} — {}", e.code, e.message),
        Ok(_) => println!("unexpected success"),
    }

    Ok(())
}
