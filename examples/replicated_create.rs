//! Use case 4 (§III.D.4): a replicating create method — XQSE replaces
//! the system-provided create for a logical service that "fronts" two
//! sources, invoking create on both and wrapping failures in
//! application-level error codes via try/catch.
//!
//! Run with: `cargo run --example replicated_create`

use aldsp::rel::{Column, ColumnType, Database, SqlValue, TableSchema};
use aldsp::service::DataSpace;
use aldsp::{FaultInjector, FaultKind, FaultPlan, FaultRule, Op, Policy, Resilience};
use xdm::qname::QName;
use xdm::sequence::{Item, Sequence};
use xqeval::Env;

fn employee_schema(table: &str) -> TableSchema {
    TableSchema {
        name: table.into(),
        columns: vec![
            Column::required("EmployeeID", ColumnType::Integer),
            Column::required("Name", ColumnType::Varchar),
        ],
        primary_key: vec!["EmployeeID".into()],
        foreign_keys: vec![],
    }
}

const REPLICATING_CREATE: &str = r#"
declare namespace tns = "ld:ReplicatedEmployees";
declare namespace p = "ld:primary/EMPLOYEE";
declare namespace b = "ld:backup/EMPLOYEE";

declare procedure tns:create($newEmps as element(EMPLOYEE)*)
  as element(EMPLOYEE_KEY)*
{
  declare $keys as element(EMPLOYEE_KEY)* := ();
  iterate $newEmp over $newEmps {
    declare $key as element(EMPLOYEE_KEY)?;
    try { set $key := p:createEMPLOYEE($newEmp); }
    catch (* into $err, $msg) {
      fn:error(xs:QName("PRIMARY_CREATE_FAILURE"),
        fn:concat("Primary create failed due to: ", $err, " ", $msg));
    };
    try { b:createEMPLOYEE($newEmp); }
    catch (* into $err, $msg) {
      fn:error(xs:QName("SECONDARY_CREATE_FAILURE"),
        fn:concat("Backup create failed due to: ", $err, " ", $msg));
    };
    set $keys := ($keys, $key);
  }
  return value $keys;
};
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let primary = Database::new("primary");
    primary.create_table(employee_schema("EMPLOYEE"))?;
    let backup = Database::new("backup");
    backup.create_table(employee_schema("EMPLOYEE"))?;

    let space = DataSpace::new();
    space.register_relational_source(&primary)?;
    space.register_relational_source(&backup)?;
    space.xqse().load(REPLICATING_CREATE)?;

    let create = QName::with_ns("ld:ReplicatedEmployees", "create");
    let emp = |id: i64, name: &str| -> Sequence {
        let xml = format!(
            "<EMPLOYEE><EmployeeID>{id}</EmployeeID><Name>{name}</Name></EMPLOYEE>"
        );
        let doc = xmlparse::parse(&xml).unwrap();
        Sequence::one(Item::Node(doc.children()[0].clone()))
    };

    // Happy path: a batch of three replicates to both sources.
    let mut env = Env::new();
    let batch = emp(1, "Ann").concat(emp(2, "Bob")).concat(emp(3, "Cid"));
    let keys = space.xqse().call_procedure(&create, vec![batch], &mut env)?;
    println!(
        "created {} employees on both sources (primary={}, backup={})",
        keys.len(),
        primary.row_count("EMPLOYEE")?,
        backup.row_count("EMPLOYEE")?
    );

    // Failure injection: a conflicting row already exists only on the
    // backup, so the primary create succeeds and the backup create
    // fails — surfaced as SECONDARY_CREATE_FAILURE.
    backup.insert("EMPLOYEE", vec![SqlValue::Int(4), SqlValue::Str("Ghost".into())])?;
    match space.xqse().call_procedure(&create, vec![emp(4, "Dee")], &mut env) {
        Err(e) => {
            println!("\nreplication failure surfaced as: {}", e.code);
            println!("  message: {}", e.message);
            // The paper notes try/catch does NOT roll back prior side
            // effects: the primary row remains — an at-least-once
            // replication design the application must reconcile.
            println!(
                "  primary now has {} rows, backup {} rows (no rollback by design)",
                primary.row_count("EMPLOYEE")?,
                backup.row_count("EMPLOYEE")?
            );
        }
        Ok(_) => println!("unexpected success"),
    }

    // Duplicate id on the primary: PRIMARY_CREATE_FAILURE.
    match space.xqse().call_procedure(&create, vec![emp(1, "Dup")], &mut env) {
        Err(e) => println!("\nduplicate detected: {} — {}", e.code, e.message),
        Ok(_) => println!("unexpected success"),
    }

    // -----------------------------------------------------------------
    // Injected infrastructure faults + resilience: the backup replica
    // times out twice; the resilience layer retries (with exponential
    // backoff on a *virtual* clock — no real sleeping) and the create
    // succeeds without the script ever seeing a failure.
    // -----------------------------------------------------------------
    println!("\n--- fault injection: backup times out twice, retries absorb it ---");
    let inj = space.install_fault_injector(FaultInjector::new(
        FaultPlan::new()
            .rule(FaultRule::new("backup", Op::Execute, FaultKind::Timeout).times(2)),
    ));
    let res = space.install_resilience(Resilience::new(Policy::default()));

    let keys = space.xqse().call_procedure(&create, vec![emp(5, "Eve")], &mut env)?;
    let stats = res.lock().stats();
    println!(
        "create succeeded ({} key) despite {} injected timeouts; retries={}, \
         virtual backoff elapsed={}ms",
        keys.len(),
        inj.lock().injected_count(),
        stats.retries,
        res.lock().clock().now_ms(),
    );
    for ev in inj.lock().events() {
        println!("  injected: {}/{} -> {:?}", ev.source, ev.op, ev.injected);
    }

    // Now the backup goes down hard. With a low breaker threshold the
    // circuit opens after two failed creates and the third fails fast
    // without touching the source at all.
    println!("\n--- permanent outage: circuit breaker opens ---");
    space.install_fault_injector(FaultInjector::new(
        FaultPlan::new()
            .rule(FaultRule::new("backup", Op::Execute, FaultKind::Permanent).times(2)),
    ));
    let res = space.install_resilience(Resilience::new(Policy {
        max_retries: 0,
        breaker_threshold: 2,
        breaker_cooldown_ms: 5_000,
        ..Policy::default()
    }));
    for (id, name) in [(6, "Fay"), (7, "Gus"), (8, "Hal")] {
        match space.xqse().call_procedure(&create, vec![emp(id, name)], &mut env) {
            Err(e) => println!(
                "create #{id} failed: {} (breaker on backup: {})",
                e.code,
                res.lock().breaker_state("backup")
            ),
            Ok(_) => println!("create #{id} unexpectedly succeeded"),
        }
    }
    println!(
        "fast failures (source never called): {}",
        res.lock().stats().fast_failures
    );

    // After the cooldown (advanced on the virtual clock) the breaker
    // half-opens, the probe succeeds — the fault budget is spent — and
    // the breaker closes again. Replication is back.
    res.lock().clock().advance(5_000);
    space.xqse().call_procedure(&create, vec![emp(9, "Ivy")], &mut env)?;
    space.xqse().call_procedure(&create, vec![emp(10, "Jo")], &mut env)?;
    println!("\nafter cooldown the probe succeeds and replication resumes:");
    for t in res.lock().transitions() {
        println!("  {t}");
    }
    println!(
        "primary={} rows, backup={} rows",
        primary.row_count("EMPLOYEE")?,
        backup.row_count("EMPLOYEE")?
    );

    Ok(())
}
