//! Use case 2 (§III.D.2): imperative computation — walking a
//! management hierarchy with a `while` loop inside a readonly XQSE
//! procedure ("XQSE function"), then composing it into plain XQuery.
//!
//! Run with: `cargo run --example management_chain`

use aldsp::rel::{Column, ColumnType, Database, SqlValue, TableSchema};
use aldsp::service::DataSpace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An org chart: employee i reports to i/2; employee 1 is the CEO.
    let db = Database::new("hr");
    db.create_table(TableSchema {
        name: "EMPLOYEE".into(),
        columns: vec![
            Column::required("EmployeeID", ColumnType::Integer),
            Column::required("Name", ColumnType::Varchar),
            Column::nullable("Title", ColumnType::Varchar),
            Column::nullable("ManagerID", ColumnType::Integer),
        ],
        primary_key: vec!["EmployeeID".into()],
        foreign_keys: vec![],
    })?;
    for i in 1..=30i64 {
        db.insert(
            "EMPLOYEE",
            vec![
                SqlValue::Int(i),
                SqlValue::Str(format!("Employee {i}")),
                SqlValue::Str(
                    match i {
                        1 => "CEO".to_string(),
                        2..=3 => format!("VP {i}"),
                        _ => format!("IC {i}"),
                    },
                ),
                if i == 1 { SqlValue::Null } else { SqlValue::Int(i / 2) },
            ],
        )?;
    }

    let space = DataSpace::new();
    space.register_relational_source(&db)?;

    // The paper's getManagementChain, verbatim modulo namespaces: a
    // while-loop walking up via the generated keyed read.
    space.xqse().load(
        r#"
declare namespace tns = "ld:Employees";
declare namespace ens1 = "ld:hr/EMPLOYEE";

declare xqse function tns:getManagementChain($id as xs:string)
  as element(EMPLOYEE)*
{
  declare $mgrs as element(EMPLOYEE)* := ();
  declare $emp as element(EMPLOYEE)? := ens1:getByEmployeeID($id);
  while (fn:not(fn:empty($emp))) {
    set $emp := ens1:getByEmployeeID($emp/ManagerID);
    set $mgrs := ($mgrs, $emp);
  }
  return value ($mgrs);
};
"#,
    )?;

    // Call it directly…
    let chain = space.engine().eval_expr_str(
        "for $m in tns:getManagementChain('29') \
         return fn:concat(fn:data($m/Name), ' (', fn:data($m/Title), ')')",
        &[("tns", "ld:Employees")],
    )?;
    println!("management chain of employee 29:");
    for item in chain.iter() {
        println!("  ↑ {item}");
    }

    // …and composed inside plain, optimizable XQuery — legal because
    // the procedure is readonly ("this procedure will then be callable
    // as a data service function from either XQSE or XQuery").
    let depths = space.engine().eval_expr_str(
        "for $e in ens1:EMPLOYEE() \
         let $depth := fn:count(tns:getManagementChain(fn:data($e/EmployeeID))) \
         order by $depth descending, fn:number($e/EmployeeID) \
         return fn:concat(fn:data($e/EmployeeID), ':', $depth)",
        &[("tns", "ld:Employees"), ("ens1", "ld:hr/EMPLOYEE")],
    )?;
    let rendered: Vec<String> = depths.iter().map(|i| i.string_value()).collect();
    println!("\nreporting depth per employee (deepest first):");
    println!("  {}", rendered.join(" "));
    Ok(())
}
