//! Use case 3 (§III.D.3): "lightweight ETL" — copy a sequence of data
//! out of one source, transform it (with an auxiliary lookup), and
//! insert it into a second source, using an XQSE `iterate` statement.
//!
//! Run with: `cargo run --example etl_lite`

use std::time::Instant;

use aldsp::rel::{Column, ColumnType, Database, SqlValue, TableSchema};
use aldsp::service::DataSpace;
use xdm::qname::QName;
use xdm::sequence::Sequence;
use xqeval::Env;

const ROWS: i64 = 500;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Source 1: EMPLOYEE(EmployeeID, Name "First Last", DeptNo, ManagerID).
    let db1 = Database::new("hr");
    db1.create_table(TableSchema {
        name: "EMPLOYEE".into(),
        columns: vec![
            Column::required("EmployeeID", ColumnType::Integer),
            Column::required("Name", ColumnType::Varchar),
            Column::nullable("DeptNo", ColumnType::Varchar),
            Column::nullable("ManagerID", ColumnType::Integer),
        ],
        primary_key: vec!["EmployeeID".into()],
        foreign_keys: vec![],
    })?;
    for i in 1..=ROWS {
        db1.insert(
            "EMPLOYEE",
            vec![
                SqlValue::Int(i),
                SqlValue::Str(format!("First{i} Last{i}")),
                SqlValue::Str(format!("D{}", i % 7)),
                if i == 1 { SqlValue::Null } else { SqlValue::Int(1) },
            ],
        )?;
    }

    // Source 2: the differently-shaped EMP2 target.
    let db2 = Database::new("backup");
    db2.create_table(TableSchema {
        name: "EMP2".into(),
        columns: vec![
            Column::required("EmpId", ColumnType::Integer),
            Column::nullable("FirstName", ColumnType::Varchar),
            Column::nullable("LastName", ColumnType::Varchar),
            Column::nullable("MgrName", ColumnType::Varchar),
            Column::nullable("Dept", ColumnType::Varchar),
        ],
        primary_key: vec!["EmpId".into()],
        foreign_keys: vec![],
    })?;

    let space = DataSpace::new();
    space.register_relational_source(&db1)?;
    space.register_relational_source(&db2)?;

    // The paper's transform function + copy procedure, verbatim modulo
    // namespaces (§III.D.3).
    space.xqse().load(
        r#"
declare namespace tns = "ld:Employees";
declare namespace ens1 = "ld:hr/EMPLOYEE";
declare namespace emp2 = "ld:backup/EMP2";

(: data transformation function :)
declare function tns:transformToEMP2($emp as element(EMPLOYEE)?)
  as element(EMP2)?
{
  for $emp1 in $emp return <EMP2>
    <EmpId>{fn:data($emp1/EmployeeID)}</EmpId>
    <FirstName>{fn:tokenize(fn:data($emp1/Name),' ')[1]}</FirstName>
    <LastName>{fn:tokenize(fn:data($emp1/Name),' ')[2]}</LastName>
    <MgrName>{fn:data(ens1:getByEmployeeID($emp1/ManagerID)/Name)}</MgrName>
    <Dept>{fn:data($emp1/DeptNo)}</Dept>
  </EMP2>
};

(: etl lite procedure :)
declare procedure tns:copyAllToEMP2() as xs:integer
{
  declare $backupCnt as xs:integer := 0;
  declare $emp2 as element(EMP2)?;
  iterate $emp1 over ens1:EMPLOYEE() {
    set $emp2 := tns:transformToEMP2($emp1);
    emp2:createEMP2($emp2);
    set $backupCnt := $backupCnt + 1;
  }
  return value ($backupCnt);
};
"#,
    )?;

    let mut env = Env::new();
    let started = Instant::now();
    let copied = space.xqse().call_procedure(
        &QName::with_ns("ld:Employees", "copyAllToEMP2"),
        Vec::<Sequence>::new(),
        &mut env,
    )?;
    let elapsed = started.elapsed();

    println!(
        "copied {} rows from hr.EMPLOYEE to backup.EMP2 in {:.1} ms \
         ({:.0} rows/s)",
        copied.string_value()?,
        elapsed.as_secs_f64() * 1e3,
        ROWS as f64 / elapsed.as_secs_f64()
    );
    println!("backup.EMP2 row count: {}", db2.row_count("EMP2")?);

    let sample = db2.select("EMP2", &vec![("EmpId".into(), SqlValue::Int(2))])?;
    println!(
        "sample transformed row: EmpId=2 FirstName={} LastName={} MgrName={} Dept={}",
        sample[0][1].lexical(),
        sample[0][2].lexical(),
        sample[0][3].lexical(),
        sample[0][4].lexical()
    );
    assert_eq!(sample[0][3].lexical(), "First1 Last1");
    Ok(())
}
