//! The paper's running example end to end (Figures 1–4): the
//! `CustomerProfile` logical data service integrating two relational
//! databases and a credit-rating web service, read through the
//! Figure-3 `getProfile()` XQuery, updated through the Figure-4
//! disconnected SDO programming model.
//!
//! Run with: `cargo run --example customer_profile`

use aldsp::demo;
use aldsp::OccPolicy;
use xdm::sequence::{Item, Sequence};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build the dataspace: db1 {CUSTOMER, ORDER}, db2 {CREDIT_CARD},
    // the credit-rating web service, and the logical service compiled
    // from the Figure-3 XQuery source.
    let d = demo::build(3, 2, 1)?;
    println!("data services registered:");
    for name in d.space.service_names() {
        let svc = d.space.service(&name).unwrap();
        println!("  {:<18} {:?}, {} methods", name, svc.kind, svc.methods.len());
    }

    // ---- read side: the integrated profile -------------------------
    let graph = d.space.get("CustomerProfile", "getProfile", vec![])?;
    println!("\ngetProfile() returned {} profiles; the first:", graph.len());
    println!("{}", xmlparse::serialize_pretty(&graph.instance(0)?));

    // A parameterized read method (the trivial-to-define secondary
    // read of Figure 3).
    let by_id = d.space.get(
        "CustomerProfile",
        "getProfileById",
        vec![Sequence::one(Item::string("2"))],
    )?;
    println!(
        "\ngetProfileById('2') -> {} {}",
        by_id.get_value(0, &["FIRST_NAME"])?,
        by_id.get_value(0, &["LAST_NAME"])?
    );

    // ---- update side: Figure 4's disconnected update ---------------
    // "Carrey" -> "Carey": fetch, mutate the SDO, submit.
    println!("\nlineage-based update decomposition (OCC = ReadValues):");
    d.space.set_occ_policy("CustomerProfile", OccPolicy::ReadValues)?;
    let graph = d.space.get("CustomerProfile", "getProfile", vec![])?;
    graph.set_value(0, &["LAST_NAME"], "Carrey")?;
    graph.set_value(0, &["Orders", "ORDER#1", "STATUS"], "SHIPPED")?;

    // The wire format of Figure 4: data + change summary.
    println!("\nthe serialized SDO datagraph sent back to the server:");
    println!("{}", xmlparse::serialize_pretty(&graph.to_datagraph_xml()?));

    d.space.submit(&graph)?;
    println!("\nSQL decomposed from the change summary:");
    for stmt in d.space.last_decomposition.borrow().iter() {
        println!("  {stmt}");
    }

    // Verify against the physical source.
    let rows = d.db1.select(
        "CUSTOMER",
        &vec![("CID".into(), aldsp::SqlValue::Int(1))],
    )?;
    println!("\ndb1.CUSTOMER row 1 after submit: LAST_NAME = {}", rows[0][2].lexical());

    // ---- conflict: optimistic concurrency --------------------------
    let graph = d.space.get("CustomerProfile", "getProfile", vec![])?;
    graph.set_value(0, &["LAST_NAME"], "Mine")?;
    // Someone else writes first…
    d.db1.execute(vec![aldsp::rel::WriteOp::Update {
        table: "CUSTOMER".into(),
        set: vec![("LAST_NAME".into(), aldsp::SqlValue::Str("Theirs".into()))],
        cond: vec![("CID".into(), aldsp::SqlValue::Int(1))],
        expect_rows: 1,
    }])?;
    match d.space.submit(&graph) {
        Err(e) => println!("\nconcurrent write detected as expected: {e}"),
        Ok(()) => println!("\nunexpected: conflicting update applied"),
    }

    Ok(())
}
