//! Quickstart: the XQSE language in five minutes.
//!
//! Run with: `cargo run --example quickstart`

use xqse::Xqse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let xqse = Xqse::new();

    // 1. The paper's "Hello, World" (§III.B.7): a block query body
    //    with a return statement.
    let out = xqse.run(r#"{ return value "Hello, World"; }"#)?;
    println!("1. {}", out.string_value()?);

    // 2. Plain XQuery still works unchanged — XQSE "loosely wraps"
    //    XQuery the way stored procedures wrap SQL.
    let out = xqse.run("fn:sum(for $i in 1 to 100 return $i)")?;
    println!("2. sum(1..100) = {}", out.string_value()?);

    // 3. Block variables are assignable; `while` loops have statement
    //    semantics (no value, effects via `set`).
    let out = xqse.run(
        r#"{
             declare $x := 1, $steps := 0;
             while ($x lt 1000) {
               set $x := $x * 3;
               set $steps := $steps + 1;
             }
             return value ($x, $steps);
           }"#,
    )?;
    println!(
        "3. first power of 3 over 1000: {} (after {} steps)",
        out.items()[0],
        out.items()[1]
    );

    // 4. Procedures: `declare procedure` for side-effecting logic,
    //    `declare xqse function` (readonly) for procedures callable
    //    from XQuery expressions.
    let out = xqse.run(
        r#"
        declare namespace t = "urn:quickstart";
        declare xqse function t:collatz-steps($n as xs:integer) as xs:integer
        {
          declare $x := $n, $steps := 0;
          while ($x gt 1) {
            if ($x mod 2 = 0) then set $x := $x idiv 2;
            else set $x := 3 * $x + 1;
            set $steps := $steps + 1;
          }
          return value $steps;
        };
        (: readonly, so it composes with FLWOR: :)
        fn:max(for $n in 1 to 30 return t:collatz-steps($n))
        "#,
    )?;
    println!("4. longest Collatz trajectory under 30: {} steps", out.string_value()?);

    // 5. try/catch with error-code name tests and `into` variables.
    let out = xqse.run(
        r#"{
             try {
               fn:error(xs:QName("DEMO_FAILURE"), "synthetic failure");
             } catch (DEMO_FAILURE into $code, $msg) {
               return value fn:concat("caught ", fn:string($code), ": ", $msg);
             } catch (*) {
               return value "wrong handler";
             }
           }"#,
    )?;
    println!("5. {}", out.string_value()?);

    // 6. Update statements: XQuery Update Facility expressions applied
    //    with snapshot semantics at statement boundaries.
    let out = xqse.run(
        r#"{
             declare $doc := <order status="OPEN"><item qty="2"/></order>;
             replace value of node $doc/@status with "SHIPPED";
             insert node <item qty="5"/> into $doc;
             return value $doc;
           }"#,
    )?;
    println!("6. {}", xmlparse::serialize_sequence(&out));

    Ok(())
}
