//! The XQSE statement interpreter.

use std::rc::Rc;

use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::qname::QName;
use xdm::sequence::Sequence;
use xdm::types::SequenceType;

use xqparser::ast::{
    Block, CatchClause, Expr, Module, ProcedureDecl, QueryBody, Statement,
    ValueStatement,
};

use xqeval::context::Env;
use xqeval::engine::{Engine, ProcKind};
use xqeval::update::Pul;
use xqeval::Evaluator;

/// Control flow out of a statement.
#[derive(Debug, Clone)]
pub enum Flow {
    /// Fall through to the next statement.
    Normal,
    /// A `return value` was executed.
    Return(Sequence),
    /// A `break()` was executed.
    Break,
    /// A `continue()` was executed.
    Continue,
}

/// The XQSE engine façade: an [`Engine`] plus the statement
/// interpreter, with the procedure-runner hook installed so that
/// readonly procedures ("XQSE functions") are callable from XQuery
/// expressions.
pub struct Xqse {
    engine: Rc<Engine>,
}

impl Default for Xqse {
    fn default() -> Self {
        Xqse::new()
    }
}

impl Xqse {
    /// Create a fresh engine with the statement layer installed.
    pub fn new() -> Xqse {
        Xqse::with_engine(Rc::new(Engine::new()))
    }

    /// Wrap an existing engine (e.g. one with ALDSP sources already
    /// registered).
    pub fn with_engine(engine: Rc<Engine>) -> Xqse {
        engine.install_proc_runner(Rc::new(
            |eng: &Engine, decl: &ProcedureDecl, args: Vec<Sequence>, env: &mut Env| {
                exec_procedure(eng, decl, args, env)
            },
        ));
        Xqse { engine }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Clone the shared engine handle.
    pub fn engine_rc(&self) -> Rc<Engine> {
        self.engine.clone()
    }

    /// Load a module's prolog (functions, procedures, variables).
    pub fn load(&self, src: &str) -> XdmResult<Module> {
        self.engine.load(src)
    }

    /// Load a module and run its query body. An expression body is
    /// evaluated; a block body is executed ("the entry point into the
    /// XQSE world", §III.B.3) and yields the value of the first
    /// `return value` executed, or the empty sequence.
    pub fn run(&self, src: &str) -> XdmResult<Sequence> {
        let mut env = Env::new();
        self.run_with_env(src, &mut env)
    }

    /// [`Xqse::run`] against a caller-provided context (lets callers
    /// inspect `fn:trace` output or pre-bind state).
    pub fn run_with_env(&self, src: &str, env: &mut Env) -> XdmResult<Sequence> {
        // Route through the prepared-plan cache: repeated evaluations
        // of the same source text (REPL lines, benchmark reps,
        // per-item `iterate` bodies) parse and prolog-load once, then
        // re-execute the cached plan. With plan caching disabled
        // (`XQSE_DISABLE_BATCH=1` / optimization off) `prepare`
        // degenerates to the old load-then-run path.
        let pq = self.engine.prepare(src)?;
        match &pq.module().body {
            QueryBody::None => Ok(Sequence::empty()),
            QueryBody::Expr(_) => self.engine.execute_prepared_in(&pq, env),
            QueryBody::Block(b) => match exec_block(&self.engine, b, env)? {
                Flow::Return(v) => Ok(v),
                Flow::Normal => Ok(Sequence::empty()),
                Flow::Break | Flow::Continue => Err(XdmError::new(
                    ErrorCode::XQSE0003,
                    "break()/continue() outside a loop",
                )),
            },
        }
    }

    /// [`Xqse::run_with_env`], but an expression body eligible for the
    /// pull pipeline comes back as a **lazy** sequence: tuples are
    /// produced as the caller consumes the result (fallible Sequence
    /// API — `try_item`, `into_forced`, or a streaming serializer), so
    /// paging/probing consumers and incremental reply paths stop the
    /// evaluation early. Block bodies are statements and stay strict.
    pub fn run_lazy_with_env(&self, src: &str, env: &mut Env) -> XdmResult<Sequence> {
        let pq = self.engine.prepare(src)?;
        match &pq.module().body {
            QueryBody::Expr(_) => self.engine.execute_prepared_lazy_in(&pq, env),
            _ => self.run_with_env(src, env),
        }
    }

    /// Call a procedure by name from *statement context* — side
    /// effects allowed. This is the entry ALDSP uses to invoke data
    /// service methods.
    pub fn call_procedure(
        &self,
        name: &QName,
        args: Vec<Sequence>,
        env: &mut Env,
    ) -> XdmResult<Sequence> {
        call_procedure_stmt(&self.engine, name, args, env)
    }
}

/// Execute a user-defined procedure: fresh local context (procedures
/// do not see the caller's local variables), parameters bound
/// read-only, body block executed, `return value` or empty sequence.
pub fn exec_procedure(
    engine: &Engine,
    decl: &ProcedureDecl,
    args: Vec<Sequence>,
    caller_env: &mut Env,
) -> XdmResult<Sequence> {
    if args.len() != decl.params.len() {
        return Err(XdmError::new(
            ErrorCode::XPST0017,
            format!(
                "procedure {} expects {} arguments, got {}",
                decl.name,
                decl.params.len(),
                args.len()
            ),
        ));
    }
    let body = decl.body.as_ref().ok_or_else(|| {
        XdmError::new(
            ErrorCode::XPST0017,
            format!("external procedure {} has no body", decl.name),
        )
    })?;
    // Fresh environment sharing only the trace sink.
    let mut env = Env::new();
    env.trace = caller_env.trace.clone();
    for (p, a) in decl.params.iter().zip(args) {
        let a = match &p.ty {
            Some(ty) => {
                ty.convert(a, &format!("parameter ${} of {}", p.name, decl.name))?
            }
            None => a,
        };
        env.bind(p.name.clone(), a);
    }
    let out = match exec_block(engine, body, &mut env)? {
        Flow::Return(v) => v,
        Flow::Normal => Sequence::empty(),
        Flow::Break | Flow::Continue => {
            return Err(XdmError::new(
                ErrorCode::XQSE0003,
                "break()/continue() escaped the procedure body",
            ))
        }
    };
    if let Some(ty) = &decl.return_type {
        if !ty.matches(&out) {
            return Err(XdmError::new(
                ErrorCode::XQSE0005,
                format!(
                    "result of procedure {} does not match declared type {ty}",
                    decl.name
                ),
            ));
        }
    }
    Ok(out)
}

/// Execute a block: declarations in order, then statements in order
/// (§III.B.5).
pub fn exec_block(engine: &Engine, block: &Block, env: &mut Env) -> XdmResult<Flow> {
    env.push_block_scope();
    let flow = exec_block_inner(engine, block, env);
    env.pop_scope();
    flow
}

fn exec_block_inner(engine: &Engine, block: &Block, env: &mut Env) -> XdmResult<Flow> {
    for decl in &block.decls {
        let init = match &decl.init {
            Some(vs) => {
                let v = eval_value_statement(engine, vs, env)?;
                let ty = decl.ty.clone().unwrap_or_else(SequenceType::any);
                ty.check(&v, &format!("declare ${}", decl.var))?;
                Some(v)
            }
            None => None,
        };
        env.declare_block_var(decl.var.clone(), init, decl.ty.clone());
    }
    for stmt in &block.statements {
        match exec_statement(engine, stmt, env)? {
            Flow::Normal => {}
            other => return Ok(other),
        }
    }
    Ok(Flow::Normal)
}

/// Execute one statement.
pub fn exec_statement(
    engine: &Engine,
    stmt: &Statement,
    env: &mut Env,
) -> XdmResult<Flow> {
    match stmt {
        Statement::Block(b) => exec_block(engine, b, env),
        Statement::Set { var, value } => {
            let v = eval_value_statement(engine, value, env)?;
            // "If the value statement raises an error, the variable is
            // left in its previous state" — guaranteed because we only
            // assign after successful evaluation.
            env.assign(var, v)?;
            Ok(Flow::Normal)
        }
        Statement::Return(value) => {
            let v = eval_value_statement(engine, value, env)?;
            Ok(Flow::Return(v))
        }
        Statement::If { cond, then, els } => {
            let b = Evaluator::new(engine).eval(cond, env)?.effective_boolean()?;
            if b {
                exec_statement(engine, then, env)
            } else if let Some(e) = els {
                exec_statement(engine, e, env)
            } else {
                Ok(Flow::Normal)
            }
        }
        Statement::While { cond, body } => {
            loop {
                // Cooperative budget point: `while` is what makes XQSE
                // Turing-complete, so every trip checks cancellation
                // (deadline strided — the clock read is the expensive
                // part) before re-evaluating the condition. Fuel is
                // charged inside the evaluator.
                engine.budget_loop_check()?;
                let b = Evaluator::new(engine)
                    .eval(cond, env)?
                    .effective_boolean()?;
                if !b {
                    break;
                }
                match exec_block(engine, body, env)? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => break,
                    ret @ Flow::Return(_) => return Ok(ret),
                }
            }
            // "The While statement does not return a value."
            Ok(Flow::Normal)
        }
        Statement::Iterate { var, pos, over, body } => {
            // "First, the Value statement is executed once. It returns
            // a sequence of items called a binding sequence."
            let binding = eval_value_statement(engine, over, env)?;
            let size = binding.len();
            for (i, item) in binding.into_iter().enumerate() {
                // Same cooperative point as `while`: iterate bodies
                // run updates/source calls per item.
                engine.budget_loop_check()?;
                env.push_scope();
                env.bind(var.clone(), Sequence::one(item));
                if let Some(p) = pos {
                    env.bind(
                        p.clone(),
                        Sequence::one(xdm::sequence::Item::integer(i as i64 + 1)),
                    );
                }
                let flow = exec_block(engine, body, env);
                env.pop_scope();
                match flow? {
                    Flow::Normal | Flow::Continue => {}
                    Flow::Break => break,
                    ret @ Flow::Return(_) => return Ok(ret),
                }
            }
            let _ = size;
            Ok(Flow::Normal)
        }
        Statement::Try { body, catches } => {
            match exec_block(engine, body, env) {
                Ok(flow) => Ok(flow),
                Err(e) => {
                    // "Note that executing the Try statement may have
                    // caused permanent side effects before the error
                    // was raised. Such side effects are not rolled
                    // back." — nothing to do; effects already landed.
                    for clause in catches {
                        if catch_matches(clause, &e) {
                            return exec_catch(engine, clause, &e, env);
                        }
                    }
                    Err(e)
                }
            }
        }
        Statement::Continue => Ok(Flow::Continue),
        Statement::Break => Ok(Flow::Break),
        Statement::Update(expr) => {
            exec_update_like(engine, expr, env)?;
            Ok(Flow::Normal)
        }
        Statement::ExprStatement(expr) => {
            // Per the EBNF this position holds procedure calls; the
            // paper's examples also use effectful function calls like
            // fn:trace here. A top-level procedure call executes in
            // statement context (side effects allowed); anything else
            // evaluates like an update statement so that updating
            // function calls also work, and the value is discarded.
            if let Expr::FunctionCall { name, args } = expr {
                if engine.procedure(name, args.len()).is_some() {
                    let mut argv = Vec::with_capacity(args.len());
                    for a in args {
                        argv.push(Evaluator::new(engine).eval(a, env)?);
                    }
                    call_procedure_stmt(engine, name, argv, env)?;
                    return Ok(Flow::Normal);
                }
            }
            exec_update_like(engine, expr, env)?;
            Ok(Flow::Normal)
        }
        Statement::ProcedureBlock(b) => {
            // In statement position the procedure block runs and its
            // return value (if any) is discarded.
            exec_procedure_block(engine, b, env)?;
            Ok(Flow::Normal)
        }
    }
}

/// Evaluate an expression with a fresh pending-update list open, then
/// apply the list — the snapshot semantics of the update statement
/// (§III.C.14): "Execution of the update statement therefore
/// constitutes a snapshot, and all applied changes are visible to
/// subsequent statements and expressions."
fn exec_update_like(engine: &Engine, expr: &Expr, env: &mut Env) -> XdmResult<()> {
    let saved = env.pul.take();
    env.pul = Some(Pul::new());
    let result = Evaluator::new(engine).eval(expr, env);
    let pul = env.pul.take().expect("pul still open");
    env.pul = saved;
    result?;
    let had_updates = !pul.is_empty();
    pul.apply()?;
    if had_updates {
        // Node-level updates may have mutated trees that memoized join
        // indexes and materialized XDM snapshots *share* — the heavy
        // hammer is correct here: drop everything and advance the
        // write epoch.
        env.invalidate_caches();
        engine.invalidate_materialization();
        engine.note_source_write();
    }
    Ok(())
}

/// Execute a value statement (§III.B.8): a non-updating ExprSingle, a
/// procedure call (side effects permitted — the paper's own example is
/// `set $z := ns:myprocedure($y);`), or a procedure block.
pub fn eval_value_statement(
    engine: &Engine,
    vs: &ValueStatement,
    env: &mut Env,
) -> XdmResult<Sequence> {
    match vs {
        ValueStatement::ProcedureBlock(b) => exec_procedure_block(engine, b, env),
        ValueStatement::Expr(expr) => {
            // A *top-level* procedure call in a value statement runs in
            // statement context.
            if let Expr::FunctionCall { name, args } = expr {
                if engine.procedure(name, args.len()).is_some()
                    && engine.function(name, args.len()).is_none()
                {
                    let mut argv = Vec::with_capacity(args.len());
                    for a in args {
                        argv.push(Evaluator::new(engine).eval(a, env)?);
                    }
                    return call_procedure_stmt(engine, name, argv, env);
                }
            }
            // Otherwise: ordinary expression evaluation — "the
            // expression must return an empty pending update list",
            // which the evaluator enforces (XUST0001) because no PUL
            // is open here.
            Evaluator::new(engine).eval(expr, env)
        }
    }
}

/// Execute an in-place `procedure { … }` block (§III.C.16): the block
/// runs once; a `return value` inside yields the block's value,
/// otherwise the value is the empty sequence.
pub fn exec_procedure_block(
    engine: &Engine,
    block: &Block,
    env: &mut Env,
) -> XdmResult<Sequence> {
    match exec_block(engine, block, env)? {
        Flow::Return(v) => Ok(v),
        Flow::Normal => Ok(Sequence::empty()),
        Flow::Break | Flow::Continue => Err(XdmError::new(
            ErrorCode::XQSE0003,
            "break()/continue() escaped a procedure block",
        )),
    }
}

/// Call a procedure in statement context: user-defined or external,
/// readonly or not.
pub fn call_procedure_stmt(
    engine: &Engine,
    name: &QName,
    args: Vec<Sequence>,
    env: &mut Env,
) -> XdmResult<Sequence> {
    match engine.procedure(name, args.len()) {
        Some(ProcKind::User(decl)) => {
            let out = exec_procedure(engine, &decl, args, env);
            if !decl.readonly {
                // The procedure may have written *some* source, but it
                // cannot have mutated already-materialized trees (its
                // effects land through source procedures, not PUL node
                // edits). Bump the write epoch only: version-stamped
                // cache entries over sources it did not touch survive.
                // Cross-call web-service read-through caches are
                // notified too (the per-Env ws_memo clear alone does
                // not reach them).
                env.note_write();
                engine.note_source_write();
            }
            out
        }
        Some(ProcKind::External { f, readonly }) => {
            let out = f(env, args);
            if !readonly {
                env.note_write();
                engine.note_source_write();
            }
            out
        }
        None => Err(XdmError::new(
            ErrorCode::XPST0017,
            format!("unknown procedure {name}#{}", args.len()),
        )),
    }
}

/// Does a catch clause's NameTest match the error code QName
/// (§III.B.13)?
fn catch_matches(clause: &CatchClause, e: &XdmError) -> bool {
    clause.test.matches_name(Some(&e.code))
}

fn exec_catch(
    engine: &Engine,
    clause: &CatchClause,
    e: &XdmError,
    env: &mut Env,
) -> XdmResult<Flow> {
    env.push_scope();
    // "up to three optional variables … will be assigned the QName
    // identifying the error, its message, and any diagnostic items".
    let provided: [Sequence; 3] = [
        Sequence::one(xdm::sequence::Item::Atomic(
            xdm::atomic::AtomicValue::QName(e.code.clone()),
        )),
        Sequence::one(xdm::sequence::Item::string(e.message.clone())),
        e.diagnostics
            .iter()
            .map(|d| xdm::sequence::Item::string(d.clone()))
            .collect(),
    ];
    for (var, value) in clause.into_vars.iter().zip(provided) {
        env.bind(var.clone(), value);
    }
    let flow = exec_block(engine, &clause.body, env);
    env.pop_scope();
    flow
}
