//! XQueryP "sequential mode" — the related-work baseline of §IV.
//!
//! XQueryP (Chamberlin et al., XIME-P 2006) took the opposite design
//! position from XQSE: procedural constructs *are* expressions,
//! freely composable inside any expression evaluated in *sequential
//! mode*, and every construct returns a value — "Even a While loop
//! returns a value in XQueryP — it returns the concatenation of the
//! results from the repeated sequential evaluation of its body
//! expression."
//!
//! We implement that semantics over the same statement AST so the
//! reproduction can measure the paper's two §IV claims:
//!
//! 1. **Composability changes meaning**: the same program text yields
//!    concatenated loop values under XQueryP where XQSE discards them
//!    (see the `while` tests);
//! 2. **Sequential mode blocks optimization**: in sequential mode the
//!    engine must preserve strict evaluation order, so the hash-join
//!    memoization that XQSE applies inside declarative cores is
//!    switched off for the whole program — the E7 experiment measures
//!    the resulting gap.

use std::rc::Rc;

use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::sequence::Sequence;
use xdm::types::SequenceType;

use xqparser::ast::{Block, Expr, QueryBody, Statement, ValueStatement};

use xqeval::context::Env;
use xqeval::engine::Engine;
use xqeval::update::Pul;
use xqeval::Evaluator;

/// The XQueryP-style sequential-mode interpreter.
pub struct XqueryP {
    engine: Rc<Engine>,
}

/// Result of sequentially executing one construct: the value it
/// contributes plus whether execution was cut by an explicit return.
struct SeqOut {
    value: Sequence,
    returned: bool,
}

impl XqueryP {
    /// Wrap an engine in sequential mode.
    pub fn with_engine(engine: Rc<Engine>) -> XqueryP {
        XqueryP { engine }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Load and run a module in sequential mode. Declarative
    /// optimizations are disabled for the duration — sequential mode
    /// pins the evaluation order.
    pub fn run(&self, src: &str) -> XdmResult<Sequence> {
        let mut env = Env::new();
        self.run_with_env(src, &mut env)
    }

    /// [`XqueryP::run`] with a caller-provided context.
    pub fn run_with_env(&self, src: &str, env: &mut Env) -> XdmResult<Sequence> {
        // Sequential mode pins the evaluation order: both the
        // pushdown/caching layer AND the hash-join memoization that
        // XQSE applies inside declarative cores are switched off for
        // the whole program — the E7 experiment measures the
        // resulting gap.
        let was_opt = self.engine.optimize_enabled();
        let was_join = self.engine.join_rewrite_enabled();
        self.engine.set_optimize(false);
        self.engine.set_join_rewrite(false);
        let result = (|| {
            let module = self.engine.load(src)?;
            match &module.body {
                QueryBody::None => Ok(Sequence::empty()),
                QueryBody::Expr(e) => Evaluator::new(&self.engine).eval(e, env),
                QueryBody::Block(b) => {
                    Ok(self.exec_block_value(b, env)?.value)
                }
            }
        })();
        self.engine.set_optimize(was_opt);
        self.engine.set_join_rewrite(was_join);
        result
    }

    /// Execute a block, concatenating the values of its statements
    /// (the composability semantics of XQueryP).
    fn exec_block_value(&self, block: &Block, env: &mut Env) -> XdmResult<SeqOut> {
        env.push_block_scope();
        let out = self.exec_block_inner(block, env);
        env.pop_scope();
        out
    }

    fn exec_block_inner(&self, block: &Block, env: &mut Env) -> XdmResult<SeqOut> {
        for decl in &block.decls {
            let init = match &decl.init {
                Some(vs) => {
                    let v = self.eval_value(vs, env)?;
                    let ty = decl.ty.clone().unwrap_or_else(SequenceType::any);
                    ty.check(&v, &format!("declare ${}", decl.var))?;
                    Some(v)
                }
                None => None,
            };
            env.declare_block_var(decl.var.clone(), init, decl.ty.clone());
        }
        let mut value = Sequence::empty();
        for stmt in &block.statements {
            let out = self.exec_statement_value(stmt, env)?;
            value.extend(out.value);
            if out.returned {
                return Ok(SeqOut { value, returned: true });
            }
        }
        Ok(SeqOut { value, returned: false })
    }

    fn exec_statement_value(&self, stmt: &Statement, env: &mut Env) -> XdmResult<SeqOut> {
        let normal = |value: Sequence| SeqOut { value, returned: false };
        match stmt {
            Statement::Block(b) => self.exec_block_value(b, env),
            Statement::Set { var, value } => {
                let v = self.eval_value(value, env)?;
                env.assign(var, v)?;
                Ok(normal(Sequence::empty()))
            }
            Statement::Return(value) => {
                let v = self.eval_value(value, env)?;
                Ok(SeqOut { value: v, returned: true })
            }
            Statement::If { cond, then, els } => {
                let b = Evaluator::new(&self.engine)
                    .eval(cond, env)?
                    .effective_boolean()?;
                if b {
                    self.exec_statement_value(then, env)
                } else if let Some(e) = els {
                    self.exec_statement_value(e, env)
                } else {
                    Ok(normal(Sequence::empty()))
                }
            }
            Statement::While { cond, body } => {
                // The XQueryP semantics: the while loop *returns the
                // concatenation* of its body's values.
                let mut acc = Sequence::empty();
                loop {
                    // Cooperative budget point (see interp.rs): the
                    // sequential mode is just as Turing-complete.
                    self.engine.budget_loop_check()?;
                    let b = Evaluator::new(&self.engine)
                        .eval(cond, env)?
                        .effective_boolean()?;
                    if !b {
                        break;
                    }
                    let out = self.exec_block_value(body, env)?;
                    acc.extend(out.value);
                    if out.returned {
                        return Ok(SeqOut { value: acc, returned: true });
                    }
                }
                Ok(normal(acc))
            }
            Statement::Iterate { var, pos, over, body } => {
                let binding = self.eval_value(over, env)?;
                let mut acc = Sequence::empty();
                for (i, item) in binding.into_iter().enumerate() {
                    self.engine.budget_loop_check()?;
                    env.push_scope();
                    env.bind(var.clone(), Sequence::one(item));
                    if let Some(p) = pos {
                        env.bind(
                            p.clone(),
                            Sequence::one(xdm::sequence::Item::integer(i as i64 + 1)),
                        );
                    }
                    let out = self.exec_block_value(body, env);
                    env.pop_scope();
                    let out = out?;
                    acc.extend(out.value);
                    if out.returned {
                        return Ok(SeqOut { value: acc, returned: true });
                    }
                }
                Ok(normal(acc))
            }
            Statement::Try { body, catches } => match self.exec_block_value(body, env) {
                Ok(out) => Ok(out),
                Err(e) => {
                    for clause in catches {
                        if clause.test.matches_name(Some(&e.code)) {
                            env.push_scope();
                            let vals: [Sequence; 2] = [
                                Sequence::one(xdm::sequence::Item::Atomic(
                                    xdm::atomic::AtomicValue::QName(e.code.clone()),
                                )),
                                Sequence::one(xdm::sequence::Item::string(
                                    e.message.clone(),
                                )),
                            ];
                            for (var, value) in
                                clause.into_vars.iter().zip(vals)
                            {
                                env.bind(var.clone(), value);
                            }
                            let out = self.exec_block_value(&clause.body, env);
                            env.pop_scope();
                            return out;
                        }
                    }
                    Err(e)
                }
            },
            Statement::Continue | Statement::Break => Err(XdmError::new(
                ErrorCode::XQSE0003,
                "XQueryP sequential mode has no break()/continue()",
            )),
            Statement::Update(expr) | Statement::ExprStatement(expr) => {
                // Sequential mode applies atomic updates immediately
                // after each expression.
                let saved = env.pul.take();
                env.pul = Some(Pul::new());
                let result = Evaluator::new(&self.engine).eval(expr, env);
                let pul = env.pul.take().expect("pul open");
                env.pul = saved;
                let value = result?;
                pul.apply()?;
                env.invalidate_caches();
                Ok(normal(value))
            }
            Statement::ProcedureBlock(b) => self.exec_block_value(b, env),
        }
    }

    fn eval_value(&self, vs: &ValueStatement, env: &mut Env) -> XdmResult<Sequence> {
        match vs {
            ValueStatement::ProcedureBlock(b) => Ok(self.exec_block_value(b, env)?.value),
            ValueStatement::Expr(e) => self.eval_seq_expr(e, env),
        }
    }

    /// In sequential mode even "procedure" calls compose in
    /// expressions; we delegate to the statement-context call path so
    /// side-effecting calls are allowed anywhere.
    fn eval_seq_expr(&self, expr: &Expr, env: &mut Env) -> XdmResult<Sequence> {
        if let Expr::FunctionCall { name, args } = expr {
            if self.engine.procedure(name, args.len()).is_some()
                && self.engine.function(name, args.len()).is_none()
            {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(Evaluator::new(&self.engine).eval(a, env)?);
                }
                return crate::interp::call_procedure_stmt(
                    &self.engine,
                    name,
                    argv,
                    env,
                );
            }
        }
        Evaluator::new(&self.engine).eval(expr, env)
    }
}
