//! Statement-engine tests: one or more tests per normative sentence of
//! §III.B/§III.C, plus the paper's verbatim programs.

use std::cell::RefCell;
use std::rc::Rc;

use xdm::atomic::AtomicValue;
use xdm::error::ErrorCode;
use xdm::qname::QName;
use xdm::sequence::{Item, Sequence};

use xqeval::context::Env;

use crate::interp::Xqse;
use crate::xqueryp::XqueryP;

fn run(src: &str) -> Sequence {
    Xqse::new().run(src).unwrap()
}

fn run_err(src: &str) -> xdm::error::XdmError {
    Xqse::new().run(src).unwrap_err()
}

fn ints(seq: &Sequence) -> Vec<i64> {
    seq.atomized()
        .iter()
        .map(|a| match a {
            AtomicValue::Integer(i) => *i,
            AtomicValue::Untyped(s) => s.parse().unwrap(),
            other => panic!("not an integer: {other:?}"),
        })
        .collect()
}

fn s(seq: &Sequence) -> String {
    xmlparse::serialize_sequence(seq)
}

// ------------------------------------------------------------ block

#[test]
fn hello_world() {
    // §III.B.7, verbatim (lowercased keywords).
    let out = run("{ return value \"Hello, World\"; }");
    assert_eq!(s(&out), "Hello, World");
}

#[test]
fn block_without_return_is_empty_sequence() {
    // "If the block statement constitutes the Query Body, and no
    // return statement is executed, then the result of the query is an
    // empty sequence."
    assert!(run("{ declare $x := 1; set $x := 2; }").is_empty());
}

#[test]
fn block_decls_execute_in_order() {
    // "each block variable declaration (if any) is executed once in
    // the order written" — $y can use $x.
    let out = run("{ declare $x := 10, $y := $x + 5; return value $y; }");
    assert_eq!(ints(&out), vec![15]);
}

#[test]
fn decl_scope_excludes_its_initializer() {
    // "The scope of the variable is the remainder of the Block, not
    // including its initializing statement."
    let e = run_err("{ declare $x := $x; return value $x; }");
    assert!(e.is(ErrorCode::XPST0008));
}

#[test]
fn untyped_decl_is_item_star() {
    let out = run("{ declare $x := (1, 'two', <three/>); return value fn:count($x); }");
    assert_eq!(ints(&out), vec![3]);
}

#[test]
fn typed_decl_checks_initializer() {
    let e = run_err("{ declare $x as xs:integer := 'nope'; }");
    assert!(e.is(ErrorCode::XPTY0004));
}

#[test]
fn uninitialized_variable_reference_is_error() {
    // "Any reference to such a variable, other than on the
    // left-hand-side of an assignment statement, is an error until it
    // has been initially assigned to."
    let e = run_err("{ declare $x; return value $x; }");
    assert!(e.is(ErrorCode::XQSE0002));
    // But assigning first is fine.
    let out = run("{ declare $x; set $x := 7; return value $x; }");
    assert_eq!(ints(&out), vec![7]);
}

#[test]
fn nested_blocks_scope() {
    let out = run(
        "{ declare $x := 1; \
           { declare $x := 2; set $x := 3; } \
           return value $x; }",
    );
    assert_eq!(ints(&out), vec![1]);
}

#[test]
fn inner_block_can_assign_outer_variable() {
    let out = run("{ declare $x := 1; { set $x := 2; } return value $x; }");
    assert_eq!(ints(&out), vec![2]);
}

// -------------------------------------------------------------- set

#[test]
fn set_replaces_value() {
    let out = run("{ declare $x := 1; set $x := $x + 1; set $x := $x * 10; return value $x; }");
    assert_eq!(ints(&out), vec![20]);
}

#[test]
fn set_type_mismatch_is_error_and_keeps_old_value() {
    // "The typed value returned by the value statement must match the
    // declared type of the variable … if not, an error is raised."
    let e = run_err("{ declare $x as xs:integer := 1; set $x := 'no'; }");
    assert!(e.is(ErrorCode::XPTY0004));
    // "If the value statement raises an error, the variable is left in
    // its previous state and the error is propagated."
    let out = run(
        "{ declare $x as xs:integer := 1; \
           try { set $x := fn:error(xs:QName('B'), 'boom'); } \
           catch (*) { } \
           return value $x; }",
    );
    assert_eq!(ints(&out), vec![1]);
}

#[test]
fn set_undeclared_is_xqse0001() {
    assert!(run_err("{ set $nope := 1; }").is(ErrorCode::XQSE0001));
}

// ------------------------------------------------------------ while

#[test]
fn while_loop_from_paper() {
    // §III.B.10 example, observable through $y.
    let out = run(
        "{ declare $y, $x := 3; \
           set $y := (); \
           while ($x lt 100) { \
             set $y := ($y, $x); \
             set $x := $x * 2; \
           } \
           return value $y; }",
    );
    assert_eq!(ints(&out), vec![3, 6, 12, 24, 48, 96]);
}

#[test]
fn while_false_never_executes() {
    let out = run(
        "{ declare $n := 0; while (1 = 2) { set $n := 99; } return value $n; }",
    );
    assert_eq!(ints(&out), vec![0]);
}

#[test]
fn while_statement_returns_no_value() {
    // XQSE: loop body values are discarded (vs XQueryP, below).
    let out = run("{ declare $x := 0; while ($x lt 3) { set $x := $x + 1; } }");
    assert!(out.is_empty());
}

#[test]
fn break_stops_loop() {
    let out = run(
        "{ declare $x := 0; \
           while (fn:true()) { \
             set $x := $x + 1; \
             if ($x ge 5) then break(); \
           } \
           return value $x; }",
    );
    assert_eq!(ints(&out), vec![5]);
}

#[test]
fn continue_skips_rest_of_body() {
    let out = run(
        "{ declare $x := 0, $sum := 0; \
           while ($x lt 6) { \
             set $x := $x + 1; \
             if ($x mod 2 = 1) then continue(); \
             set $sum := $sum + $x; \
           } \
           return value $sum; }",
    );
    assert_eq!(ints(&out), vec![12]); // 2 + 4 + 6
}

#[test]
fn break_outside_loop_is_error() {
    assert!(run_err("{ break(); }").is(ErrorCode::XQSE0003));
    assert!(run_err("{ continue(); }").is(ErrorCode::XQSE0003));
}

#[test]
fn return_inside_loop_exits_everything() {
    let out = run(
        "{ declare $x := 0; \
           while (fn:true()) { \
             set $x := $x + 1; \
             if ($x eq 3) then return value $x; \
           } \
           return value -1; }",
    );
    assert_eq!(ints(&out), vec![3]);
}

// ---------------------------------------------------------- iterate

#[test]
fn iterate_with_positional_variable() {
    let out = run(
        "{ declare $acc := (); \
           iterate $v at $i over ('a', 'b', 'c') { \
             set $acc := ($acc, fn:concat($i, ':', $v)); \
           } \
           return value $acc; }",
    );
    assert_eq!(s(&out), "1:a 2:b 3:c");
}

#[test]
fn iterate_binding_sequence_evaluated_once() {
    // Mutating $src inside the loop does not change the iteration.
    let out = run(
        "{ declare $src := (1, 2, 3), $n := 0; \
           iterate $v over $src { \
             set $src := (); \
             set $n := $n + 1; \
           } \
           return value $n; }",
    );
    assert_eq!(ints(&out), vec![3]);
}

#[test]
fn iterate_break_and_continue() {
    let out = run(
        "{ declare $acc := (); \
           iterate $v over (1, 2, 3, 4, 5) { \
             if ($v eq 2) then continue(); \
             if ($v eq 4) then break(); \
             set $acc := ($acc, $v); \
           } \
           return value $acc; }",
    );
    assert_eq!(ints(&out), vec![1, 3]);
}

#[test]
fn iterate_over_empty_is_noop() {
    let out = run("{ declare $n := 0; iterate $v over () { set $n := 1; } return value $n; }");
    assert_eq!(ints(&out), vec![0]);
}

#[test]
fn iteration_variable_is_not_assignable() {
    let e = run_err("{ iterate $v over (1, 2) { set $v := 9; } }");
    assert!(e.is(ErrorCode::XQSE0001));
}

// --------------------------------------------------------------- if

#[test]
fn if_statement_branches() {
    let out = run(
        "{ declare $r := ''; \
           if (1 lt 2) then set $r := 'yes'; else set $r := 'no'; \
           return value $r; }",
    );
    assert_eq!(s(&out), "yes");
    let out = run(
        "{ declare $r := 'unset'; \
           if (2 lt 1) then set $r := 'yes'; \
           return value $r; }",
    );
    assert_eq!(s(&out), "unset");
}

// -------------------------------------------------------- try/catch

#[test]
fn try_catch_from_paper_semantics() {
    // §III.B.13 example shape: error caught, vars bound, value
    // returned from the handler.
    let out = run(
        "{ declare $y := 0, $x := 0; \
           try { \
             set $x := $y div 0; \
             return value $x; \
           } catch (*:* into $e, $m) { \
             fn:trace($e, $m); \
             return value \"Error\"; \
           } \
         }",
    );
    assert_eq!(s(&out), "Error");
}

#[test]
fn catch_matches_specific_code_first() {
    let out = run(
        "{ try { fn:error(xs:QName('MINE'), 'mine!'); } \
           catch (OTHER) { return value 'other'; } \
           catch (MINE into $c, $m) { return value $m; } \
           catch (*) { return value 'wild'; } \
         }",
    );
    assert_eq!(s(&out), "mine!");
}

#[test]
fn catch_wildcard_families() {
    // *:local matches any-namespace code with that local name.
    let out = run(
        "{ try { fn:error(xs:QName('X'), 'm'); } \
           catch (*:X) { return value 'bylocal'; } }",
    );
    assert_eq!(s(&out), "bylocal");
    // err:* matches the err namespace (div by zero → err:FOAR0001).
    let out = run(
        "{ try { return value 1 div 0; } \
           catch (err:*) { return value 'errns'; } }",
    );
    assert_eq!(s(&out), "errns");
}

#[test]
fn unmatched_error_propagates() {
    let e = run_err(
        "{ try { fn:error(xs:QName('A'), 'nope'); } \
           catch (B) { return value 'no'; } }",
    );
    assert_eq!(e.code, QName::new("A"));
}

#[test]
fn try_side_effects_are_not_rolled_back() {
    // "Such side effects are not 'rolled back'."
    let out = run(
        "{ declare $x := 0; \
           try { set $x := 1; fn:error(xs:QName('E'), 'e'); set $x := 2; } \
           catch (*) { } \
           return value $x; }",
    );
    assert_eq!(ints(&out), vec![1]);
}

#[test]
fn catch_into_three_variables() {
    let out = run(
        "{ try { fn:error(xs:QName('C'), 'msg', ('d1', 'd2')); } \
           catch (* into $code, $msg, $diag) { \
             return value (fn:string($code), $msg, fn:count($diag)); \
           } }",
    );
    assert_eq!(s(&out), "C msg 2");
}

// ------------------------------------------------------- procedures

#[test]
fn procedure_declaration_and_call() {
    let xqse = Xqse::new();
    let out = xqse
        .run(
            "declare namespace t = \"urn:t\"; \
             declare procedure t:add($a as xs:integer, $b as xs:integer) as xs:integer { \
               return value $a + $b; \
             }; \
             { return value t:add(19, 23); }",
        )
        .unwrap();
    assert_eq!(ints(&out), vec![42]);
}

#[test]
fn procedure_without_return_yields_empty() {
    // "If no Return statement is executed when the last statement in
    // the Block is reached, the return value will instead be an empty
    // sequence."
    let out = run(
        "declare namespace t = \"urn:t\"; \
         declare procedure t:noop() { declare $x := 1; set $x := 2; }; \
         { declare $r; set $r := t:noop(); return value fn:count($r); }",
    );
    assert_eq!(ints(&out), vec![0]);
}

#[test]
fn procedure_return_type_checked() {
    let e = run_err(
        "declare namespace t = \"urn:t\"; \
         declare procedure t:bad() as xs:integer { return value 'str'; }; \
         { return value t:bad(); }",
    );
    assert!(e.is(ErrorCode::XQSE0005));
}

#[test]
fn procedures_do_not_see_caller_locals() {
    let e = run_err(
        "declare namespace t = \"urn:t\"; \
         declare procedure t:peek() { return value $secret; }; \
         { declare $secret := 42; return value t:peek(); }",
    );
    assert!(e.is(ErrorCode::XPST0008));
}

#[test]
fn readonly_procedure_callable_from_expression() {
    // An "XQSE function": readonly, so usable inside XQuery exprs.
    let out = run(
        "declare namespace t = \"urn:t\"; \
         declare readonly procedure t:sq($n as xs:integer) as xs:integer { \
           return value $n * $n; \
         }; \
         fn:sum(for $i in 1 to 3 return t:sq($i))",
    );
    assert_eq!(ints(&out), vec![14]);
}

#[test]
fn xqse_function_syntax_is_readonly_procedure() {
    let out = run(
        "declare namespace t = \"urn:t\"; \
         declare xqse function t:twice($n) { return value ($n, $n) ; }; \
         fn:count(t:twice('a'))",
    );
    assert_eq!(ints(&out), vec![2]);
}

#[test]
fn side_effecting_procedure_rejected_in_expression_context() {
    // §III.A: "Procedure calls cannot be used in place of function
    // calls in an XQuery expression unless the called procedure is
    // annotated as having no side effects."
    let e = run_err(
        "declare namespace t = \"urn:t\"; \
         declare procedure t:impure() { return value 1; }; \
         fn:sum(for $i in 1 to 3 return t:impure())",
    );
    assert!(e.is(ErrorCode::XQSE0004));
}

#[test]
fn side_effecting_procedure_ok_as_value_statement() {
    // But the §III.B.8 example does exactly this at statement level:
    // `set $z := ns:myprocedure($y);`.
    let out = run(
        "declare namespace t = \"urn:t\"; \
         declare procedure t:impure($y) { return value $y * 2; }; \
         { declare $z; set $z := t:impure(21); return value $z; }",
    );
    assert_eq!(ints(&out), vec![42]);
}

#[test]
fn procedure_call_as_statement() {
    let xqse = Xqse::new();
    let count = Rc::new(RefCell::new(0));
    let c2 = count.clone();
    xqse.engine().register_external_procedure(
        QName::with_ns("urn:x", "tick"),
        0,
        false,
        Rc::new(move |_env, _args| {
            *c2.borrow_mut() += 1;
            Ok(Sequence::empty())
        }),
    );
    xqse.run(
        "declare namespace x = \"urn:x\"; \
         { x:tick(); x:tick(); x:tick(); }",
    )
    .unwrap();
    assert_eq!(*count.borrow(), 3);
}

#[test]
fn procedure_arity_checked() {
    let e = run_err(
        "declare namespace t = \"urn:t\"; \
         declare procedure t:one($a) { return value $a; }; \
         { t:one(1, 2); }",
    );
    assert!(e.is(ErrorCode::XPST0017));
}

#[test]
fn recursive_procedure() {
    let out = run(
        "declare namespace t = \"urn:t\"; \
         declare readonly procedure t:fib($n as xs:integer) as xs:integer { \
           if ($n le 1) then return value $n; \
           return value t:fib($n - 1) + t:fib($n - 2); \
         }; \
         { return value t:fib(12); }",
    );
    assert_eq!(ints(&out), vec![144]);
}

// -------------------------------------------------- procedure blocks

#[test]
fn procedure_block_as_value_statement() {
    let out = run(
        "{ declare $x := procedure { \
             declare $t := 20; \
             return value $t + 1; \
           }; \
           return value $x * 2; }",
    );
    assert_eq!(ints(&out), vec![42]);
}

#[test]
fn procedure_block_without_return_is_empty() {
    // §III.C.16: "If the last statement in the body is executed, and
    // it is not a return statement, then the value of the Procedure
    // Block is an empty sequence."
    let out = run("{ declare $x := procedure { declare $t := 1; }; return value fn:count($x); }");
    assert_eq!(ints(&out), vec![0]);
}

#[test]
fn return_in_procedure_block_does_not_exit_outer() {
    // "If a return statement is executed within a Procedure Block
    // statement, then further execution of the sequence of statements
    // in the procedure block is interrupted" — only the block.
    let out = run(
        "{ declare $x := procedure { return value 1; return value 2; }; \
           return value ($x, 'after'); }",
    );
    assert_eq!(s(&out), "1 after");
}

// ---------------------------------------------------- update statement

#[test]
fn update_statement_snapshot_semantics() {
    // §III.C.14: all changes applied at statement end, visible to
    // subsequent statements.
    let out = run(
        "{ declare $d := <r><a>1</a><b>2</b></r>; \
           delete node $d/a; \
           return value fn:count($d/*); }",
    );
    assert_eq!(ints(&out), vec![1]);
}

#[test]
fn update_statement_multiple_primitives() {
    let out = run(
        "{ declare $d := <r><a>1</a></r>; \
           (insert node <b>2</b> into $d, replace value of node $d/a with '9'); \
           return value ($d/a, $d/b); }",
    );
    assert_eq!(s(&out), "<a>9</a><b>2</b>");
}

#[test]
fn updates_inside_value_statement_are_rejected() {
    // A value statement "must return an empty pending update list".
    let e = run_err("{ declare $d := <r><a/></r>; set $d := delete node $d/a; }");
    assert!(e.is(ErrorCode::XUST0001));
}

#[test]
fn update_visible_to_following_while_condition() {
    let out = run(
        "{ declare $d := <r><item/><item/><item/></r>, $n := 0; \
           while (fn:exists($d/item)) { \
             delete node ($d/item)[1]; \
             set $n := $n + 1; \
           } \
           return value $n; }",
    );
    assert_eq!(ints(&out), vec![3]);
}

// --------------------------------------------------------- use cases

/// Use case 2 (§III.D.2): the management chain, with an in-memory org
/// source registered as an external function.
fn org_xqse(depth: usize) -> Xqse {
    let xqse = Xqse::new();
    // Employee i is managed by i+1; the top employee has no manager.
    let employees: Vec<Item> = (0..=depth)
        .map(|i| {
            let mgr = if i == depth {
                String::new()
            } else {
                format!("<ManagerID>{}</ManagerID>", i + 1)
            };
            let xml = format!(
                "<Employee><EmployeeID>{i}</EmployeeID><Name>emp{i}</Name>{mgr}</Employee>"
            );
            Item::Node(xmlparse::parse(&xml).unwrap().children()[0].clone())
        })
        .collect();
    let all = Sequence::from_items(employees);
    xqse.engine().register_external_function(
        QName::with_ns("ld:emp1", "getByEmployeeID"),
        1,
        Rc::new(move |_env, args| {
            let id = args[0].string_value()?;
            Ok(all
                .iter()
                .find(|e| match e {
                    Item::Node(n) => {
                        n.children()
                            .iter()
                            .any(|c| {
                                c.name().map(|q| q.local) == Some("EmployeeID".into())
                                    && c.string_value() == id
                            })
                    }
                    _ => false,
                })
                .cloned()
                .map(Sequence::one)
                .unwrap_or_default())
        }),
    );
    xqse
}

const MGMT_CHAIN: &str = r#"
declare namespace tns = "ld:Employees";
declare namespace ens1 = "ld:emp1";
declare xqse function tns:getManagementChain($id as xs:string)
  as element(Employee)*
{
  declare $mgrs as element(Employee)*;
  declare $emp as element(Employee)? := ens1:getByEmployeeID($id);
  set $mgrs := ();
  while (fn:not(fn:empty($emp))) {
    set $emp := ens1:getByEmployeeID($emp/ManagerID);
    set $mgrs := ($mgrs, $emp);
  }
  return value ($mgrs);
};
{ return value tns:getManagementChain('0'); }
"#;

#[test]
fn use_case_2_management_chain() {
    let xqse = org_xqse(4);
    let out = xqse.run(MGMT_CHAIN).unwrap();
    // Managers of employee 0 are employees 1..=4.
    assert_eq!(out.len(), 4);
    let names: Vec<String> = out
        .iter()
        .map(|e| match e {
            Item::Node(n) => n
                .children()
                .iter()
                .find(|c| c.name().map(|q| q.local) == Some("Name".into()))
                .unwrap()
                .string_value(),
            _ => panic!(),
        })
        .collect();
    assert_eq!(names, vec!["emp1", "emp2", "emp3", "emp4"]);
}

#[test]
fn use_case_2_chain_is_callable_from_xquery() {
    // Readonly, so callable as a plain function from XQuery.
    let xqse = org_xqse(3);
    let src = MGMT_CHAIN.replace(
        "{ return value tns:getManagementChain('0'); }",
        "fn:count(tns:getManagementChain('0'))",
    );
    let out = xqse.run(&src).unwrap();
    assert_eq!(ints(&out), vec![3]);
}

/// Use case 3 (§III.D.3): ETL lite — iterate + transform + per-row
/// create against a sink procedure.
#[test]
fn use_case_3_etl_lite() {
    let xqse = Xqse::new();
    let rows: Vec<Item> = (0..5)
        .map(|i| {
            let xml = format!(
                "<Employee><EmployeeID>{i}</EmployeeID>\
                 <Name>First{i} Last{i}</Name><DeptNo>D{i}</DeptNo>\
                 <ManagerID>0</ManagerID></Employee>"
            );
            Item::Node(xmlparse::parse(&xml).unwrap().children()[0].clone())
        })
        .collect();
    let all = Sequence::from_items(rows);
    xqse.engine().register_external_function(
        QName::with_ns("ld:emp1", "getAll"),
        0,
        Rc::new(move |_e, _a| Ok(all.clone())),
    );
    xqse.engine().register_external_function(
        QName::with_ns("ld:emp1", "getByEmployeeID"),
        1,
        Rc::new(|_e, _a| {
            let xml = "<Employee><Name>The Boss</Name></Employee>";
            Ok(Sequence::one(Item::Node(
                xmlparse::parse(xml).unwrap().children()[0].clone(),
            )))
        }),
    );
    let sink: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let sink2 = sink.clone();
    xqse.engine().register_external_procedure(
        QName::with_ns("ld:emp2", "createEMP2"),
        1,
        false,
        Rc::new(move |_env, args| {
            for it in args[0].iter() {
                if let Item::Node(n) = it {
                    sink2.borrow_mut().push(xmlparse::serialize(n));
                }
            }
            Ok(Sequence::empty())
        }),
    );
    let src = r#"
declare namespace tns = "ld:Employees";
declare namespace ens1 = "ld:emp1";
declare namespace emp2 = "ld:emp2";
declare function tns:transformToEMP2($emp as element(Employee)?)
  as element(EMP2)?
{
  for $emp1 in $emp return <EMP2>
    <EmpId>{fn:data($emp1/EmployeeID)}</EmpId>
    <FirstName>{fn:tokenize(fn:data($emp1/Name),' ')[1]}</FirstName>
    <LastName>{fn:tokenize(fn:data($emp1/Name),' ')[2]}</LastName>
    <MgrName>{fn:data(ens1:getByEmployeeID($emp1/ManagerID)/Name)}</MgrName>
    <Dept>{fn:data($emp1/DeptNo)}</Dept>
  </EMP2>
};
declare procedure tns:copyAllToEMP2() as xs:integer
{
  declare $backupCnt as xs:integer := 0;
  declare $emp2 as element(EMP2)?;
  iterate $emp1 over ens1:getAll() {
    set $emp2 := tns:transformToEMP2($emp1);
    emp2:createEMP2($emp2);
    set $backupCnt := $backupCnt + 1;
  }
  return value ($backupCnt);
};
{ return value tns:copyAllToEMP2(); }
"#;
    let out = xqse.run(src).unwrap();
    assert_eq!(ints(&out), vec![5]);
    let created = sink.borrow();
    assert_eq!(created.len(), 5);
    assert!(created[0].contains("<FirstName>First0</FirstName>"));
    assert!(created[0].contains("<LastName>Last0</LastName>"));
    assert!(created[0].contains("<MgrName>The Boss</MgrName>"));
}

/// Use case 4 (§III.D.4): replicating create with error wrapping.
#[test]
fn use_case_4_replicating_create_error_wrapping() {
    let xqse = Xqse::new();
    // Primary create succeeds; secondary fails → the procedure wraps
    // the failure into SECONDARY_CREATE_FAILURE.
    xqse.engine().register_external_procedure(
        QName::with_ns("urn:p", "createPrimary"),
        1,
        false,
        Rc::new(|_e, _a| Ok(Sequence::empty())),
    );
    xqse.engine().register_external_procedure(
        QName::with_ns("urn:p", "createSecondary"),
        1,
        false,
        Rc::new(|_e, _a| {
            Err(xdm::error::XdmError::new(
                ErrorCode::DSP0003,
                "unique key violated",
            ))
        }),
    );
    let src = r#"
declare namespace t = "urn:t";
declare namespace p = "urn:p";
declare procedure t:create($newEmps as element(Employee)*)
{
  iterate $newEmp over $newEmps {
    try { p:createPrimary($newEmp); }
    catch (* into $err, $msg) {
      fn:error(xs:QName("PRIMARY_CREATE_FAILURE"),
        fn:concat("Primary create failed due to: ", $err, $msg));
    };
    try { p:createSecondary($newEmp); }
    catch (* into $err, $msg) {
      fn:error(xs:QName("SECONDARY_CREATE_FAILURE"),
        fn:concat("Backup create failed due to: ", $err, $msg));
    };
  }
};
{ t:create(<Employee><Name>X</Name></Employee>); }
"#;
    let e = xqse.run(src).unwrap_err();
    assert_eq!(e.code, QName::new("SECONDARY_CREATE_FAILURE"));
    assert!(e.message.contains("unique key violated"));
}

// ---------------------------------------------------- XQueryP mode

#[test]
fn xqueryp_while_returns_concatenation() {
    // The §IV semantic difference: "Even a While loop returns a value
    // in XQueryP — it returns the concatenation of the results from
    // the repeated sequential evaluation of its body expression."
    let src = "{ declare $x := 0; \
                while ($x lt 3) { \
                  set $x := $x + 1; \
                  fn:string($x); \
                } }";
    // XQSE: statement values are discarded.
    let xqse_out = Xqse::new().run(src).unwrap();
    assert!(xqse_out.is_empty());
    // XQueryP sequential mode: values concatenate.
    let xp = XqueryP::with_engine(Rc::new(xqeval::Engine::new()));
    let xp_out = xp.run(src).unwrap();
    assert_eq!(s(&xp_out), "1 2 3");
}

#[test]
fn xqueryp_block_concatenates_statement_values() {
    let xp = XqueryP::with_engine(Rc::new(xqeval::Engine::new()));
    let out = xp.run("{ 'a'; 'b'; 'c'; }").unwrap();
    assert_eq!(s(&out), "a b c");
}

#[test]
fn xqueryp_disables_optimizer_during_run() {
    let engine = Rc::new(xqeval::Engine::new());
    // Pin the starting state: Engine::new honors XQSE_DISABLE_OPT, and
    // this test must pass in both CI modes.
    engine.set_optimize(true);
    assert!(engine.optimize_enabled());
    assert!(engine.join_rewrite_enabled());
    let xp = XqueryP::with_engine(engine.clone());
    xp.run("{ 1; }").unwrap();
    // Restored afterwards — both the pushdown/caching kill-switch and
    // the hash-join rewrite knob (sequential mode disables both).
    assert!(engine.optimize_enabled());
    assert!(engine.join_rewrite_enabled());
}

#[test]
fn xqueryp_and_xqse_agree_on_final_state() {
    // For programs whose result is read from a variable, both models
    // agree — the difference is only in what loops *return*.
    let src = "{ declare $sum := 0; \
                iterate $i over (1 to 10) { set $sum := $sum + $i; } \
                return value $sum; }";
    let a = Xqse::new().run(src).unwrap();
    let xp = XqueryP::with_engine(Rc::new(xqeval::Engine::new()));
    let b = xp.run(src).unwrap();
    assert_eq!(ints(&a), vec![55]);
    // XQueryP's block value includes the return value.
    assert_eq!(ints(&b), vec![55]);
}

// ------------------------------------------------------------- misc

#[test]
fn trace_statement_effects_visible() {
    let xqse = Xqse::new();
    let mut env = Env::new();
    xqse.run_with_env(
        "{ declare $x := 3; while ($x lt 100) { fn:trace($x); set $x := $x * 4; } }",
        &mut env,
    )
    .unwrap();
    assert_eq!(env.trace_messages(), vec!["3", "12", "48"]);
}

#[test]
fn expression_body_still_works() {
    let out = run("for $i in 1 to 3 return $i * $i");
    assert_eq!(ints(&out), vec![1, 4, 9]);
}

#[test]
fn sequential_visibility_between_statements() {
    // §III.A: "the subsequent execution of another statement … will
    // observe the results of any side effects, variable bindings, and
    // changes to the dynamic context from the statements that precede
    // it."
    let xqse = Xqse::new();
    let log: Rc<RefCell<Vec<i64>>> = Rc::new(RefCell::new(Vec::new()));
    let l2 = log.clone();
    let counter = Rc::new(RefCell::new(0i64));
    xqse.engine().register_external_procedure(
        QName::with_ns("urn:x", "next"),
        0,
        false,
        Rc::new(move |_env, _args| {
            let mut c = counter.borrow_mut();
            *c += 1;
            l2.borrow_mut().push(*c);
            Ok(Sequence::one(Item::integer(*c)))
        }),
    );
    let out = xqse
        .run(
            "declare namespace x = \"urn:x\"; \
             { declare $a; declare $b; \
               set $a := x:next(); set $b := x:next(); \
               return value ($a, $b); }",
        )
        .unwrap();
    assert_eq!(ints(&out), vec![1, 2]);
    assert_eq!(*log.borrow(), vec![1, 2]);
}
