//! Static validation of XQSE programs.
//!
//! The paper defines several constraints that are statically decidable
//! but which a naive interpreter only discovers at runtime (possibly
//! *after* earlier statements have caused side effects):
//!
//! - `break()`/`continue()` must appear inside a `while` or `iterate`
//!   body (§III.C.15) — `XQSE0003`;
//! - `set $v` may only target a variable introduced by a block
//!   variable declaration (§III.B.6) — `XQSE0001`;
//! - a block variable may not be referenced before its first
//!   assignment on *every* path (§III.B.5) — `XQSE0002` (we check the
//!   definite-assignment approximation: flag only uses where no
//!   assignment can possibly precede them);
//! - procedure calls inside expressions must target `readonly`
//!   procedures (§III.A) — `XQSE0004` (checkable for procedures
//!   declared in the same module).
//!
//! [`validate_module`] returns *all* violations, so IDE-style callers
//! (the paper's Figure 1 design view) can surface them together.

use std::collections::{HashMap, HashSet};

use xdm::error::{ErrorCode, XdmError};
use xdm::qname::QName;

use xqparser::ast::*;

/// A static diagnostic.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The error family this would raise at runtime.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    fn new(code: ErrorCode, message: impl Into<String>) -> Diagnostic {
        Diagnostic { code, message: message.into() }
    }

    /// Convert into a runtime-style error.
    pub fn into_error(self) -> XdmError {
        XdmError::new(self.code, self.message)
    }
}

/// Validate a whole module; returns every violation found.
pub fn validate_module(module: &Module) -> Vec<Diagnostic> {
    let mut v = Validator::new(module);
    for p in &module.prolog.procedures {
        if let Some(body) = &p.body {
            let mut scope = Scope::new();
            for param in &p.params {
                scope.declare_readonly(param.name.clone());
            }
            v.check_block(body, &mut scope, 0);
        }
    }
    for f in &module.prolog.functions {
        if let Some(body) = &f.body {
            let mut bound: HashSet<QName> =
                f.params.iter().map(|p| p.name.clone()).collect();
            v.check_expr(body, &mut bound);
        }
    }
    if let QueryBody::Block(b) = &module.body {
        let mut scope = Scope::new();
        v.check_block(b, &mut scope, 0);
    }
    if let QueryBody::Expr(e) = &module.body {
        let mut bound = HashSet::new();
        v.check_expr(e, &mut bound);
    }
    v.diagnostics
}

/// Validate and fail on the first violation (library convenience).
pub fn validate_module_strict(module: &Module) -> Result<(), XdmError> {
    match validate_module(module).into_iter().next() {
        None => Ok(()),
        Some(d) => Err(d.into_error()),
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum VarState {
    /// Read-only binding (param, for/let, iterate var).
    ReadOnly,
    /// Block variable, definitely assigned.
    Assigned,
    /// Block variable declared without initializer, not yet assigned
    /// on any path.
    Unassigned,
}

struct Scope {
    frames: Vec<HashMap<QName, VarState>>,
}

impl Scope {
    fn new() -> Scope {
        Scope { frames: vec![HashMap::new()] }
    }

    fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    fn declare_readonly(&mut self, name: QName) {
        self.frames.last_mut().expect("frame").insert(name, VarState::ReadOnly);
    }

    fn declare_block(&mut self, name: QName, initialized: bool) {
        self.frames.last_mut().expect("frame").insert(
            name,
            if initialized { VarState::Assigned } else { VarState::Unassigned },
        );
    }

    fn get(&self, name: &QName) -> Option<VarState> {
        self.frames.iter().rev().find_map(|f| f.get(name).copied())
    }

    /// Mark a block variable as assigned (innermost match).
    fn mark_assigned(&mut self, name: &QName) {
        for f in self.frames.iter_mut().rev() {
            if let Some(s) = f.get_mut(name) {
                if *s == VarState::Unassigned {
                    *s = VarState::Assigned;
                }
                return;
            }
        }
    }

    fn visible(&self) -> HashSet<QName> {
        self.frames.iter().flat_map(|f| f.keys().cloned()).collect()
    }
}

struct Validator<'m> {
    diagnostics: Vec<Diagnostic>,
    /// Procedures declared in this module: name/arity → readonly.
    procedures: HashMap<(QName, usize), bool>,
    /// Functions declared in this module (to avoid false procedure
    /// hits when a function shadows nothing).
    functions: HashSet<(QName, usize)>,
    _module: &'m Module,
}

impl<'m> Validator<'m> {
    fn new(module: &'m Module) -> Validator<'m> {
        Validator {
            diagnostics: Vec::new(),
            procedures: module
                .prolog
                .procedures
                .iter()
                .map(|p| ((p.name.clone(), p.params.len()), p.readonly))
                .collect(),
            functions: module
                .prolog
                .functions
                .iter()
                .map(|f| (f.name.clone(), f.params.len()))
                .collect(),
            _module: module,
        }
    }

    fn check_block(&mut self, block: &Block, scope: &mut Scope, loop_depth: usize) {
        scope.push();
        for d in &block.decls {
            if let Some(init) = &d.init {
                self.check_value_statement(init, scope);
            }
            scope.declare_block(d.var.clone(), d.init.is_some());
        }
        for s in &block.statements {
            self.check_statement(s, scope, loop_depth);
        }
        scope.pop();
    }

    fn check_statement(&mut self, s: &Statement, scope: &mut Scope, loop_depth: usize) {
        match s {
            Statement::Block(b) => self.check_block(b, scope, loop_depth),
            Statement::Set { var, value } => {
                self.check_value_statement(value, scope);
                match scope.get(var) {
                    Some(VarState::ReadOnly) => self.diagnostics.push(Diagnostic::new(
                        ErrorCode::XQSE0001,
                        format!("${var} is not a block variable and cannot be assigned"),
                    )),
                    Some(_) => scope.mark_assigned(var),
                    None => self.diagnostics.push(Diagnostic::new(
                        ErrorCode::XQSE0001,
                        format!("assignment to undeclared variable ${var}"),
                    )),
                }
            }
            Statement::Return(v) => self.check_value_statement(v, scope),
            Statement::If { cond, then, els } => {
                self.check_scoped_expr(cond, scope);
                // Branches may assign; conservatively treat post-state
                // as the meet — we only *report* definite errors, so
                // checking each branch against the pre-state is sound.
                self.check_statement(then, scope, loop_depth);
                if let Some(e) = els {
                    self.check_statement(e, scope, loop_depth);
                }
            }
            Statement::While { cond, body } => {
                self.check_scoped_expr(cond, scope);
                self.check_block(body, scope, loop_depth + 1);
            }
            Statement::Iterate { var, pos, over, body } => {
                self.check_value_statement(over, scope);
                scope.push();
                scope.declare_readonly(var.clone());
                if let Some(p) = pos {
                    scope.declare_readonly(p.clone());
                }
                self.check_block(body, scope, loop_depth + 1);
                scope.pop();
            }
            Statement::Try { body, catches } => {
                self.check_block(body, scope, loop_depth);
                for c in catches {
                    scope.push();
                    for v in &c.into_vars {
                        scope.declare_readonly(v.clone());
                    }
                    self.check_block(&c.body, scope, loop_depth);
                    scope.pop();
                }
            }
            Statement::Continue => {
                if loop_depth == 0 {
                    self.diagnostics.push(Diagnostic::new(
                        ErrorCode::XQSE0003,
                        "continue() outside a while/iterate body",
                    ));
                }
            }
            Statement::Break => {
                if loop_depth == 0 {
                    self.diagnostics.push(Diagnostic::new(
                        ErrorCode::XQSE0003,
                        "break() outside a while/iterate body",
                    ));
                }
            }
            Statement::Update(e) => self.check_scoped_expr(e, scope),
            Statement::ExprStatement(e) => {
                // Top-level procedure calls are fine in statement
                // position; check nested expressions.
                if let Expr::FunctionCall { args, .. } = e {
                    for a in args {
                        self.check_scoped_expr(a, scope);
                    }
                } else {
                    self.check_scoped_expr(e, scope);
                }
            }
            Statement::ProcedureBlock(b) => self.check_block(b, scope, 0),
        }
    }

    fn check_value_statement(&mut self, v: &ValueStatement, scope: &mut Scope) {
        match v {
            ValueStatement::ProcedureBlock(b) => self.check_block(b, scope, 0),
            ValueStatement::Expr(e) => {
                // Top-level procedure call allowed (§III.B.8 example).
                if let Expr::FunctionCall { args, .. } = e {
                    for a in args {
                        self.check_scoped_expr(a, scope);
                    }
                } else {
                    self.check_scoped_expr(e, scope);
                }
            }
        }
    }

    fn check_scoped_expr(&mut self, e: &Expr, scope: &Scope) {
        // Uninitialized-use check against the current scope state.
        let mut bound = scope.visible();
        // Variables that are declared-but-unassigned are *not* usable.
        for q in scope.visible() {
            if scope.get(&q) == Some(VarState::Unassigned) {
                bound.remove(&q);
                self.flag_use(e, &q);
            }
        }
        let mut b = bound;
        self.check_expr(e, &mut b);
    }

    fn flag_use(&mut self, e: &Expr, var: &QName) {
        let mut used = false;
        walk(e, &mut |x| {
            if matches!(x, Expr::VarRef(v) if v == var) {
                used = true;
            }
        });
        if used {
            self.diagnostics.push(Diagnostic::new(
                ErrorCode::XQSE0002,
                format!("block variable ${var} referenced before assignment"),
            ));
        }
    }

    /// Expression checks: side-effecting module-local procedures may
    /// not be called from (nested) expression positions.
    fn check_expr(&mut self, e: &Expr, _bound: &mut HashSet<QName>) {
        walk(e, &mut |x| {
            if let Expr::FunctionCall { name, args } = x {
                let key = (name.clone(), args.len());
                if !self.functions.contains(&key) {
                    if let Some(readonly) = self.procedures.get(&key) {
                        if !readonly {
                            self.diagnostics.push(Diagnostic::new(
                                ErrorCode::XQSE0004,
                                format!(
                                    "procedure {name} has side effects and cannot be \
                                     called from an expression"
                                ),
                            ));
                        }
                    }
                }
            }
        });
    }
}

/// Generic expression walker (pre-order).
fn walk(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Literal(_) | Expr::VarRef(_) | Expr::ContextItem => {}
        Expr::Comma(v) => v.iter().for_each(|x| walk(x, f)),
        Expr::Range(a, b)
        | Expr::Binary(_, a, b)
        | Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::General(_, a, b)
        | Expr::Value(_, a, b)
        | Expr::Node(_, a, b)
        | Expr::Set(_, a, b) => {
            walk(a, f);
            walk(b, f);
        }
        Expr::Unary(_, a)
        | Expr::ComputedText(a)
        | Expr::ComputedComment(a)
        | Expr::ComputedDocument(a)
        | Expr::Delete(a) => walk(a, f),
        Expr::If(c, t, e2) => {
            walk(c, f);
            walk(t, f);
            walk(e2, f);
        }
        Expr::Flwor { clauses, ret } => {
            for c in clauses {
                match c {
                    FlworClause::For { source, .. } => walk(source, f),
                    FlworClause::Let { value, .. } => walk(value, f),
                    FlworClause::Where(w) => walk(w, f),
                    FlworClause::OrderBy(specs) => {
                        specs.iter().for_each(|s| walk(&s.key, f))
                    }
                }
            }
            walk(ret, f);
        }
        Expr::Quantified { bindings, satisfies, .. } => {
            bindings.iter().for_each(|(_, s)| walk(s, f));
            walk(satisfies, f);
        }
        Expr::Typeswitch { operand, cases } => {
            walk(operand, f);
            cases.iter().for_each(|c| walk(&c.body, f));
        }
        Expr::Path { start, steps } => {
            if let PathStart::Expr(b) = start {
                walk(b, f);
            }
            steps
                .iter()
                .for_each(|s| s.predicates.iter().for_each(|p| walk(p, f)));
        }
        Expr::Filter { base, predicates } => {
            walk(base, f);
            predicates.iter().for_each(|p| walk(p, f));
        }
        Expr::FunctionCall { args, .. } => args.iter().for_each(|a| walk(a, f)),
        Expr::DirectElement(de) => walk_direct(de, f),
        Expr::ComputedElement(n, c)
        | Expr::ComputedAttribute(n, c)
        | Expr::ComputedPi(n, c) => {
            if let NameExpr::Computed(e2) = n {
                walk(e2, f);
            }
            if let Some(c) = c {
                walk(c, f);
            }
        }
        Expr::InstanceOf(a, _)
        | Expr::TreatAs(a, _)
        | Expr::CastAs(a, _, _)
        | Expr::CastableAs(a, _, _) => walk(a, f),
        Expr::Insert { source, target, .. } => {
            walk(source, f);
            walk(target, f);
        }
        Expr::Replace { target, with, .. } => {
            walk(target, f);
            walk(with, f);
        }
        Expr::Rename { target, new_name } => {
            walk(target, f);
            walk(new_name, f);
        }
        Expr::Transform { copies, modify, ret } => {
            copies.iter().for_each(|(_, e2)| walk(e2, f));
            walk(modify, f);
            walk(ret, f);
        }
    }
}

fn walk_direct(de: &DirectElement, f: &mut impl FnMut(&Expr)) {
    for (_, parts) in &de.attributes {
        for p in parts {
            if let AttrContent::Expr(e) = p {
                walk(e, f);
            }
        }
    }
    for c in &de.content {
        match c {
            DirectContent::Expr(e) => walk(e, f),
            DirectContent::Element(child) => walk_direct(child, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqparser::parse_module;

    fn diag_codes(src: &str) -> Vec<ErrorCode> {
        let m = parse_module(src).unwrap();
        validate_module(&m)
            .into_iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_programs_have_no_diagnostics() {
        for src in [
            "{ return value 1; }",
            "{ declare $x := 1; set $x := $x + 1; return value $x; }",
            "{ while (1 = 2) { break(); continue(); } }",
            "{ iterate $v over (1,2) { if ($v = 1) then break(); } }",
            "declare namespace t = \"urn:t\"; \
             declare readonly procedure t:p() { return value 1; }; \
             fn:sum(for $i in 1 to 3 return t:p())",
            "{ declare $x; set $x := 1; return value $x; }",
        ] {
            assert!(diag_codes(src).is_empty(), "spurious diagnostics for {src:?}");
        }
    }

    #[test]
    fn break_outside_loop_flagged() {
        assert_eq!(diag_codes("{ break(); }"), vec![ErrorCode::XQSE0003]);
        assert_eq!(diag_codes("{ continue(); }"), vec![ErrorCode::XQSE0003]);
        // Inside an if that is not inside a loop: still flagged.
        assert_eq!(
            diag_codes("{ if (1) then break(); }"),
            vec![ErrorCode::XQSE0003]
        );
        // A procedure block resets loop context (order of diagnostics
        // is discovery order: the break is found while evaluating the
        // value statement, before the set-target check).
        let mut codes =
            diag_codes("{ while (1=2) { set $x := procedure { break(); }; } }");
        codes.sort_by_key(|c| c.local());
        assert_eq!(codes, vec![ErrorCode::XQSE0001, ErrorCode::XQSE0003]);
    }

    #[test]
    fn assignment_violations_flagged() {
        // Undeclared target.
        assert_eq!(diag_codes("{ set $nope := 1; }"), vec![ErrorCode::XQSE0001]);
        // Iteration variables are read-only.
        assert_eq!(
            diag_codes("{ iterate $v over (1,2) { set $v := 3; } }"),
            vec![ErrorCode::XQSE0001]
        );
        // Procedure parameters are read-only.
        let src = "declare namespace t = \"urn:t\"; \
                   declare procedure t:p($a) { set $a := 1; };";
        assert_eq!(diag_codes(src), vec![ErrorCode::XQSE0001]);
    }

    #[test]
    fn use_before_assignment_flagged() {
        assert_eq!(
            diag_codes("{ declare $x; return value $x; }"),
            vec![ErrorCode::XQSE0002]
        );
        // Assignment on the LHS is not a use; a following use is fine.
        assert!(diag_codes("{ declare $x; set $x := 5; return value $x; }").is_empty());
        // Using the variable inside its own first assignment's RHS.
        assert_eq!(
            diag_codes("{ declare $x; set $x := $x + 1; }"),
            vec![ErrorCode::XQSE0002]
        );
    }

    #[test]
    fn impure_procedure_call_in_expression_flagged() {
        let src = "declare namespace t = \"urn:t\"; \
                   declare procedure t:mut() { return value 1; }; \
                   fn:sum(for $i in 1 to 3 return t:mut())";
        assert_eq!(diag_codes(src), vec![ErrorCode::XQSE0004]);
        // The same call at statement level is fine.
        let src = "declare namespace t = \"urn:t\"; \
                   declare procedure t:mut() { return value 1; }; \
                   { t:mut(); }";
        assert!(diag_codes(src).is_empty());
        // And as a top-level value statement (the §III.B.8 example).
        let src = "declare namespace t = \"urn:t\"; \
                   declare procedure t:mut() { return value 1; }; \
                   { declare $z; set $z := t:mut(); }";
        assert!(diag_codes(src).is_empty());
    }

    #[test]
    fn multiple_diagnostics_collected() {
        let src = "{ break(); set $a := 1; declare $b; }";
        // Note: decls syntactically precede statements, so write it
        // the grammar's way:
        let src2 = "{ declare $b; break(); set $a := $b; }";
        let _ = src;
        let codes = diag_codes(src2);
        assert!(codes.contains(&ErrorCode::XQSE0003));
        assert!(codes.contains(&ErrorCode::XQSE0001));
        assert!(codes.contains(&ErrorCode::XQSE0002));
    }

    #[test]
    fn strict_mode_fails_fast() {
        let m = parse_module("{ break(); }").unwrap();
        assert!(validate_module_strict(&m).is_err());
        let m = parse_module("{ return value 1; }").unwrap();
        assert!(validate_module_strict(&m).is_ok());
    }

    #[test]
    fn paper_use_cases_validate_cleanly() {
        let src = r#"
declare namespace tns = "ld:Employees";
declare namespace ens1 = "ld:emp1";
declare xqse function tns:getManagementChain($id as xs:string)
  as element(Employee)*
{
  declare $mgrs as element(Employee)* := ();
  declare $emp as element(Employee)? := ens1:getByEmployeeID($id);
  while (fn:not(fn:empty($emp))) {
    set $emp := ens1:getByEmployeeID($emp/ManagerID);
    set $mgrs := ($mgrs, $emp);
  }
  return value ($mgrs);
};
"#;
        assert!(diag_codes(src).is_empty());
    }
}
