//! # xqse — the XQuery Scripting Extension engine
//!
//! This crate is the reproduction of the paper's primary contribution:
//! the **statement execution** layer that XQSE adds on top of XQuery
//! (Borkar et al., *"XQSE: An XQuery Scripting Extension for the
//! AquaLogic Data Services Platform"*, ICDE 2008).
//!
//! The processing model follows §III.B.1: *"Statement execution
//! consists of sequential atomic operations that include evaluation of
//! an XQuery expression, making changes to instances of XDM by
//! applying a pending update list, assigning variables, and executing
//! user-defined or external procedures. An operation may have side
//! effects that are visible to subsequent operations."*
//!
//! Statements implemented (§III.B.4–13 and §III.C.14–16): Block and
//! block variable declarations, Assignment (`set`), Return, Value
//! statement, Procedure declaration/call, While, Iterate, If,
//! Try-Catch, Update statement, Continue, Break, and Procedure Block.
//!
//! ## Quick start
//!
//! ```
//! use xqse::Xqse;
//!
//! let xqse = Xqse::new();
//! // The paper's "Hello, World" (§III.B.7).
//! let out = xqse.run("{ return value \"Hello, World\"; }").unwrap();
//! assert_eq!(out.string_value().unwrap(), "Hello, World");
//! ```
//!
//! The crate also provides [`xqueryp`], an implementation of the
//! *XQueryP* "sequential mode" semantics the paper compares against in
//! §IV — procedural constructs that compose inside expressions and
//! return concatenated values — used by the reproduction's ablation
//! experiments.

pub mod interp;
pub mod validate;
pub mod xqueryp;

pub use interp::{exec_procedure, Flow, Xqse};
pub use validate::{validate_module, validate_module_strict, Diagnostic};

#[cfg(test)]
mod tests;
