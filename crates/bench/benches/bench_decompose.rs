//! E5: update decomposition — change summary + lineage → conditioned
//! SQL plan, by scenario shape.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aldsp::decompose::{decompose_update, OccPolicy};
use xqse_bench::demo;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_decompose");
    // One top-level field.
    let d = demo::build(200, 2, 1).expect("demo");
    let lineage = d.space.lineage("CustomerProfile").expect("lineage");
    let graph = d.space.get("CustomerProfile", "getProfile", vec![]).expect("get");
    graph.set_value(0, &["LAST_NAME"], "X").expect("set");
    g.bench_function("one_field", |b| {
        b.iter(|| {
            black_box(
                decompose_update(&lineage, &graph, &OccPolicy::UpdatedValues)
                    .expect("plan")
                    .statement_count(),
            )
        })
    });
    // Cross-source change set.
    let graph2 = d.space.get("CustomerProfile", "getProfile", vec![]).expect("get");
    graph2.set_value(0, &["LAST_NAME"], "X").expect("set");
    graph2
        .set_value(0, &["CreditCards", "CREDIT_CARD", "BRAND"], "Y")
        .expect("set");
    graph2.set_value(0, &["Orders", "ORDER", "STATUS"], "Z").expect("set");
    g.bench_function("three_rows_two_sources", |b| {
        b.iter(|| {
            black_box(
                decompose_update(&lineage, &graph2, &OccPolicy::UpdatedValues)
                    .expect("plan")
                    .statement_count(),
            )
        })
    });
    // Many instances changed (bulk).
    let graph3 = d.space.get("CustomerProfile", "getProfile", vec![]).expect("get");
    for i in 0..50 {
        graph3.set_value(i, &["LAST_NAME"], "Bulk").expect("set");
    }
    g.bench_function("fifty_instances", |b| {
        b.iter(|| {
            black_box(
                decompose_update(&lineage, &graph3, &OccPolicy::UpdatedValues)
                    .expect("plan")
                    .statement_count(),
            )
        })
    });
    // Policy width comparison on the same change.
    for (name, policy) in [
        ("policy_updated_values", OccPolicy::UpdatedValues),
        ("policy_read_values", OccPolicy::ReadValues),
        ("policy_chosen_subset", OccPolicy::ChosenSubset(vec!["FIRST_NAME".into()])),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    decompose_update(&lineage, &graph, &policy)
                        .expect("plan")
                        .statement_count(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
