//! E10: use case 1 (user-defined delete) — XQSE wrapper (lookup +
//! default delete) vs direct generated delete, by table size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xdm::qname::QName;
use xdm::sequence::{Item, Sequence};
use xqse_bench::demo;

const DELETE_BY_CID: &str = r#"
declare namespace uc1 = "urn:uc1";
declare namespace cus = "ld:db1/CUSTOMER";
declare procedure uc1:deleteByCID($cid as xs:string) as empty-sequence()
{
  declare $cust := cus:getByCID($cid);
  if (fn:not(fn:empty($cust))) then cus:deleteCUSTOMER($cust);
};
"#;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_udelete");
    g.sample_size(10);
    for n in [100usize, 1000] {
        g.bench_with_input(BenchmarkId::new("xqse_wrapper", n), &n, |b, &n| {
            b.iter_with_setup(
                || {
                    let d = demo::build(n, 0, 0).expect("demo");
                    d.space.xqse().load(DELETE_BY_CID).expect("load");
                    d
                },
                |d| {
                    let mut env = xqeval::Env::new();
                    black_box(
                        d.space
                            .xqse()
                            .call_procedure(
                                &QName::with_ns("urn:uc1", "deleteByCID"),
                                vec![Sequence::one(Item::string((n / 2).to_string()))],
                                &mut env,
                            )
                            .expect("call"),
                    )
                },
            )
        });
        g.bench_with_input(BenchmarkId::new("direct_default", n), &n, |b, &n| {
            b.iter_with_setup(
                || demo::build(n, 0, 0).expect("demo"),
                |d| {
                    let key = xmlparse::parse(&format!(
                        "<CUSTOMER><CID>{}</CID></CUSTOMER>",
                        n / 2
                    ))
                    .expect("xml");
                    let mut env = xqeval::Env::new();
                    black_box(
                        d.space
                            .xqse()
                            .call_procedure(
                                &QName::with_ns("ld:db1/CUSTOMER", "deleteCUSTOMER"),
                                vec![Sequence::one(Item::Node(key.children()[0].clone()))],
                                &mut env,
                            )
                            .expect("call"),
                    )
                },
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
