//! E1: Figure-3 `getProfile()` integration read — latency vs customer
//! count (2 relational sources + 1 web service, nested joins).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xqse_bench::demo;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_getprofile");
    g.sample_size(10);
    for n in [10usize, 100, 1000] {
        let d = demo::build(n, 3, 2).expect("demo");
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let graph = d
                    .space
                    .get("CustomerProfile", "getProfile", vec![])
                    .expect("get");
                black_box(graph.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
