//! E7: the §IV ablation — the same join-heavy program under XQSE
//! (statements wrap an optimizable declarative core) vs XQueryP
//! sequential mode (strict order, no join rewriting). The gap grows
//! with data size: O(n) vs O(n²).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xqse_bench::{demo, join_program_xqse, join_program_xqueryp};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_xqueryp");
    g.sample_size(10);
    for n in [20usize, 100, 400] {
        let d = demo::build(n, 0, 2).expect("demo");
        g.bench_with_input(BenchmarkId::new("xqse", n), &n, |b, _| {
            b.iter(|| black_box(join_program_xqse(&d.space)))
        });
        g.bench_with_input(BenchmarkId::new("xqueryp_sequential", n), &n, |b, _| {
            b.iter(|| black_box(join_program_xqueryp(&d.space)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
