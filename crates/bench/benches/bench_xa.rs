//! E9: XA two-phase commit — protocol cost per crash-injection point
//! (recovery included), plus the journaled coordinator's overhead on
//! the no-fault path (the <5% budget guarded by
//! `tests/chaos.rs::xa_journal_overhead_guard_under_5pct`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use aldsp::journal::CoordinatorJournal;
use aldsp::rel::{CrashPoint, SqlValue, TwoPhaseCoordinator, WriteOp};
use xqse_bench::demo;

fn ops(t: u64) -> (Vec<WriteOp>, Vec<WriteOp>) {
    (
        vec![WriteOp::Update {
            table: "CUSTOMER".into(),
            set: vec![("LAST_NAME".into(), SqlValue::Str(format!("t{t}")))],
            cond: vec![("CID".into(), SqlValue::Int(1))],
            expect_rows: 1,
        }],
        vec![WriteOp::Update {
            table: "CREDIT_CARD".into(),
            set: vec![("CC_BRAND".into(), SqlValue::Str(format!("b{t}")))],
            cond: vec![("CCID".into(), SqlValue::Int(1))],
            expect_rows: 1,
        }],
    )
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_xa");
    g.sample_size(20);
    for (name, crash) in [
        ("no_crash", None),
        ("crash_after_first_prepare", Some(CrashPoint::AfterFirstPrepare)),
        ("crash_after_all_prepares", Some(CrashPoint::AfterAllPrepares)),
        ("crash_after_first_commit", Some(CrashPoint::AfterFirstCommit)),
    ] {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let d = demo::build(1, 1, 1).expect("demo");
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                let (o1, o2) = ops(t);
                let coord = TwoPhaseCoordinator::new(vec![
                    (d.db1.clone(), o1),
                    (d.db2.clone(), o2),
                ]);
                black_box(coord.run_with_crash(crash))
            })
        });
    }
    // Journaled vs plain on the no-fault path: the delta is the pure
    // cost of writing the 2N+2 protocol records.
    g.bench_function(BenchmarkId::from_parameter("no_crash_journaled"), |b| {
        let d = demo::build(1, 1, 1).expect("demo");
        let journal = CoordinatorJournal::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let (o1, o2) = ops(t);
            let coord = TwoPhaseCoordinator::new(vec![
                (d.db1.clone(), o1),
                (d.db2.clone(), o2),
            ]);
            black_box(coord.run_journaled(&journal, None, None))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
