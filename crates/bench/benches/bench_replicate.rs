//! E4: use case 4 (replicating create) — try/catch handler overhead
//! and failure-injection cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use aldsp::rel::SqlValue;
use xqse_bench::{employee_batch, replicate_run, replicate_space};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_replicate");
    g.sample_size(10);
    let batch = 200i64;
    g.bench_function(BenchmarkId::new("with_handlers", batch), |b| {
        b.iter_with_setup(
            || replicate_space(true),
            |f| black_box(replicate_run(&f, employee_batch(1, batch))),
        )
    });
    g.bench_function(BenchmarkId::new("no_handlers", batch), |b| {
        b.iter_with_setup(
            || replicate_space(false),
            |f| black_box(replicate_run(&f, employee_batch(1, batch))),
        )
    });
    g.bench_function(BenchmarkId::new("with_midpoint_failure", batch), |b| {
        b.iter_with_setup(
            || {
                let f = replicate_space(true);
                f.backup
                    .insert(
                        "EMPLOYEE",
                        vec![SqlValue::Int(batch / 2), SqlValue::Str("ghost".into())],
                    )
                    .expect("poison");
                f
            },
            |f| black_box(replicate_run(&f, employee_batch(1, batch))),
        )
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
