//! E6: optimistic-concurrency policies — end-to-end submit cost per
//! policy (WHERE width translates into condition-evaluation work).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aldsp::decompose::OccPolicy;
use xqse_bench::demo;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_occ");
    g.sample_size(10);
    for (name, policy) in [
        ("read_values", OccPolicy::ReadValues),
        ("updated_values", OccPolicy::UpdatedValues),
        ("chosen_subset", OccPolicy::ChosenSubset(vec!["FIRST_NAME".into()])),
    ] {
        g.bench_function(name, |b| {
            b.iter_with_setup(
                || {
                    let d = demo::build(100, 1, 1).expect("demo");
                    d.space
                        .set_occ_policy("CustomerProfile", policy.clone())
                        .expect("policy");
                    let graph = d
                        .space
                        .get("CustomerProfile", "getProfile", vec![])
                        .expect("get");
                    graph.set_value(0, &["LAST_NAME"], "X").expect("set");
                    (d, graph)
                },
                |(d, graph)| {
                    let _: () = d.space.submit(&graph).expect("submit");
                    black_box(());
                },
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
