//! E8: parser throughput over the paper's listings (XQuery + the full
//! XQSE statement grammar).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use xqse_bench::demo;

const HELLO: &str = "{ return value \"Hello, World\"; }";

const USE_CASE_3: &str = r#"
declare namespace tns = "ld:Employees";
declare namespace ens1 = "ld:emp1";
declare namespace emp2 = "ld:emp2";
declare namespace empl = "urn:empl";
declare function tns:transformToEMP2($emp as element(empl:Employee)?)
  as element(emp2:EMP2)?
{
  for $emp1 in $emp return <emp2:EMP2>
    <EmpId>{fn:data($emp1/EmployeeID)}</EmpId>
    <FirstName>{fn:tokenize(fn:data($emp1/Name),' ')[1]}</FirstName>
    <LastName>{fn:tokenize(fn:data($emp1/Name),' ')[2]}</LastName>
    <MgrName>{fn:data(ens1:getByEmployeeID($emp1/ManagerID)/Name)}</MgrName>
    <Dept>{fn:data($emp1/DeptNo)}</Dept>
  </emp2:EMP2>
};
declare procedure tns:copyAllToEMP2() as xs:integer
{
  declare $backupCnt as xs:integer := 0;
  declare $emp2 as element(emp2:EMP2)?;
  iterate $emp1 over ens1:getAll() {
    set $emp2 := tns:transformToEMP2($emp1);
    emp2:createEMP2($emp2);
    set $backupCnt := $backupCnt + 1;
  }
  return value ($backupCnt);
};
"#;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_parser");
    for (name, src) in [
        ("hello_world", HELLO.to_string()),
        ("use_case_3", USE_CASE_3.to_string()),
        ("figure3_getprofile", demo::GET_PROFILE_SRC.to_string()),
    ] {
        g.throughput(Throughput::Bytes(src.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(name), &src, |b, s| {
            b.iter(|| black_box(xqparser::parse_module(s).expect("parse")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
