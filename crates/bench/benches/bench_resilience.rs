//! E10: resilience-layer overhead on the no-fault hot path.
//!
//! The `Access` handle sits on every source call, so its cost when
//! nothing is installed (pass-through) and when a resilience policy is
//! installed but no faults fire must be negligible — the target is
//! <5% over the seed `bench_getprofile` figure. A third case measures
//! the cost of actually riding out a probabilistic transient storm.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aldsp::{FaultInjector, FaultKind, FaultPlan, FaultRule, Op, Policy, Resilience};
use xqse_bench::demo;

const N: usize = 100;

fn read_once(d: &demo::Demo) -> usize {
    d.space
        .get("CustomerProfile", "getProfile", vec![])
        .expect("get")
        .len()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_resilience");
    g.sample_size(10);

    // Baseline: Access::none() — the seed hot path.
    let passthrough = demo::build(N, 3, 2).expect("demo");
    g.bench_function("passthrough", |b| {
        b.iter(|| black_box(read_once(&passthrough)))
    });

    // Resilience installed, zero faults: pure bookkeeping overhead
    // (breaker admission + success recording per source call).
    let guarded = demo::build(N, 3, 2).expect("demo");
    guarded.space.install_resilience(Resilience::new(Policy::default()));
    g.bench_function("resilience_no_faults", |b| {
        b.iter(|| black_box(read_once(&guarded)))
    });

    // A seeded 10% transient rate on db2 scans: every blip is retried
    // away (virtual-clock backoff, so no real sleeping), and the reads
    // still all succeed.
    let stormy = demo::build(N, 3, 2).expect("demo");
    stormy.space.install_fault_injector(FaultInjector::new(FaultPlan::seeded(42).rule(
        FaultRule::new("db2", Op::Scan, FaultKind::Transient).with_probability(0.10),
    )));
    // A generous retry budget keeps the storm statistically invisible
    // (P[7 consecutive 10% blips] ~ 1e-7 per scan).
    stormy.space.install_resilience(Resilience::new(Policy {
        max_retries: 6,
        ..Policy::default()
    }));
    g.bench_function("transient_storm_p10", |b| {
        b.iter(|| black_box(read_once(&stormy)))
    });

    // PR 8 budget guard, same <5% target: (a) no budget installed —
    // the hot loop pays one Cell read per eval step; (b) a fully
    // armed budget (far-future deadline + fuel ceiling) that never
    // trips — the full bookkeeping path. Compare both against
    // `resilience_no_faults` above.
    let unbudgeted = demo::build(N, 3, 2).expect("demo");
    unbudgeted.space.install_resilience(Resilience::new(Policy::default()));
    g.bench_function("budget_none", |b| {
        b.iter(|| black_box(read_once(&unbudgeted)))
    });

    let budgeted = demo::build(N, 3, 2).expect("demo");
    budgeted.space.install_resilience(Resilience::new(Policy::default()));
    let t0 = std::time::Instant::now();
    let clock: xqeval::BudgetClock =
        std::sync::Arc::new(move || t0.elapsed().as_millis() as u64);
    budgeted.space.engine().force_budget(Some(std::sync::Arc::new(
        xqeval::Budget::with_clock(clock)
            .deadline_in(3_600_000)
            .limit_fuel(u64::MAX / 4),
    )));
    g.bench_function("budget_armed_never_trips", |b| {
        b.iter(|| black_box(read_once(&budgeted)))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
