//! E10: resilience-layer overhead on the no-fault hot path.
//!
//! The `Access` handle sits on every source call, so its cost when
//! nothing is installed (pass-through) and when a resilience policy is
//! installed but no faults fire must be negligible — the target is
//! <5% over the seed `bench_getprofile` figure. A third case measures
//! the cost of actually riding out a probabilistic transient storm.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aldsp::{FaultInjector, FaultKind, FaultPlan, FaultRule, Op, Policy, Resilience};
use xqse_bench::demo;

const N: usize = 100;

fn read_once(d: &demo::Demo) -> usize {
    d.space
        .get("CustomerProfile", "getProfile", vec![])
        .expect("get")
        .len()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_resilience");
    g.sample_size(10);

    // Baseline: Access::none() — the seed hot path.
    let passthrough = demo::build(N, 3, 2).expect("demo");
    g.bench_function("passthrough", |b| {
        b.iter(|| black_box(read_once(&passthrough)))
    });

    // Resilience installed, zero faults: pure bookkeeping overhead
    // (breaker admission + success recording per source call).
    let guarded = demo::build(N, 3, 2).expect("demo");
    guarded.space.install_resilience(Resilience::new(Policy::default()));
    g.bench_function("resilience_no_faults", |b| {
        b.iter(|| black_box(read_once(&guarded)))
    });

    // A seeded 10% transient rate on db2 scans: every blip is retried
    // away (virtual-clock backoff, so no real sleeping), and the reads
    // still all succeed.
    let stormy = demo::build(N, 3, 2).expect("demo");
    stormy.space.install_fault_injector(FaultInjector::new(FaultPlan::seeded(42).rule(
        FaultRule::new("db2", Op::Scan, FaultKind::Transient).with_probability(0.10),
    )));
    // A generous retry budget keeps the storm statistically invisible
    // (P[7 consecutive 10% blips] ~ 1e-7 per scan).
    stormy.space.install_resilience(Resilience::new(Policy {
        max_retries: 6,
        ..Policy::default()
    }));
    g.bench_function("transient_storm_p10", |b| {
        b.iter(|| black_box(read_once(&stormy)))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
