//! E2: use case 2 (management chain) — XQSE while-loop vs recursive
//! XQuery vs native Rust, by chain depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xqse_bench::{mgmt_chain_native, mgmt_chain_recursive, mgmt_chain_xqse, mgmt_space};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_mgmtchain");
    for depth in [4usize, 16, 64] {
        let space = mgmt_space(depth);
        let db = space.database("hr").expect("db");
        g.bench_with_input(BenchmarkId::new("xqse_while", depth), &depth, |b, _| {
            b.iter(|| black_box(mgmt_chain_xqse(&space)))
        });
        g.bench_with_input(
            BenchmarkId::new("recursive_xquery", depth),
            &depth,
            |b, _| b.iter(|| black_box(mgmt_chain_recursive(&space))),
        );
        g.bench_with_input(BenchmarkId::new("native_rust", depth), &depth, |b, _| {
            b.iter(|| black_box(mgmt_chain_native(&db)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
