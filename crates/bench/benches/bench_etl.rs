//! E3: use case 3 (ETL lite) — XQSE iterate + per-row create vs the
//! native ("Java override") baseline, by row count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use xqse_bench::{etl_run_native, etl_run_xqse, etl_space};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_etl");
    g.sample_size(10);
    for rows in [10i64, 100, 1000] {
        g.bench_with_input(BenchmarkId::new("xqse_iterate", rows), &rows, |b, &n| {
            b.iter_with_setup(|| etl_space(n), |f| black_box(etl_run_xqse(&f)))
        });
        g.bench_with_input(BenchmarkId::new("native_baseline", rows), &rows, |b, &n| {
            b.iter_with_setup(|| etl_space(n), |f| black_box(etl_run_native(&f)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
