//! Shared workloads and helpers for the constructed evaluation.
//!
//! The paper has no quantitative evaluation section; every experiment
//! here is derived from a specific claim or listing (see DESIGN.md §4
//! for the per-experiment index, and EXPERIMENTS.md for measured
//! results). This crate provides the workload builders used by both
//! the Criterion benches (`benches/`) and the table-printing harness
//! (`src/bin/exptab.rs`).


use std::time::Instant;

use aldsp::rel::{Column, ColumnType, Database, SqlValue, TableSchema};
use aldsp::service::DataSpace;
use xdm::qname::QName;
use xdm::sequence::Sequence;
use xqeval::Env;

pub use aldsp::demo;

/// The E14 read workload: one `getProfileById` request per distinct
/// customer (`1..=n`), so per-worker response caches cannot swallow
/// the simulated source latency — every request pays the wire.
pub fn serve_profile_requests(n: usize) -> Vec<aldsp::pool::ServeRequest> {
    (0..n.max(1))
        .map(|i| aldsp::pool::ServeRequest::Get {
            service: "CustomerProfile".to_string(),
            method: "getProfileById".to_string(),
            args: vec![aldsp::pool::ServeArg::Str((i + 1).to_string())],
        })
        .collect()
}

/// Queries per second from a request count and an elapsed duration.
pub fn qps(requests: usize, elapsed: std::time::Duration) -> f64 {
    requests as f64 / elapsed.as_secs_f64().max(1e-9)
}

/// Time a closure, returning (result, seconds).
pub fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64())
}

/// Median-of-`n` timing of a closure (fresh invocation each round).
pub fn median_secs(n: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..n.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    samples[samples.len() / 2]
}

/// Pretty table row printing for the exptab harness.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

// ---------------------------------------------------------------------
// E2: management chain (use case 2)
// ---------------------------------------------------------------------

/// Build an HR dataspace with a management chain of the given depth:
/// employee `i` is managed by `i+1`; the top employee has no manager.
pub fn mgmt_space(depth: usize) -> DataSpace {
    let db = Database::new("hr");
    db.create_table(TableSchema {
        name: "EMPLOYEE".into(),
        columns: vec![
            Column::required("EmployeeID", ColumnType::Integer),
            Column::required("Name", ColumnType::Varchar),
            Column::nullable("ManagerID", ColumnType::Integer),
        ],
        primary_key: vec!["EmployeeID".into()],
        foreign_keys: vec![],
    })
    .expect("schema");
    for i in 0..=depth as i64 {
        db.insert(
            "EMPLOYEE",
            vec![
                SqlValue::Int(i),
                SqlValue::Str(format!("emp{i}")),
                if i == depth as i64 { SqlValue::Null } else { SqlValue::Int(i + 1) },
            ],
        )
        .expect("insert");
    }
    let space = DataSpace::new();
    space.register_relational_source(&db).expect("introspect");
    space
        .xqse()
        .load(
            r#"
declare namespace tns = "ld:Employees";
declare namespace ens1 = "ld:hr/EMPLOYEE";
declare xqse function tns:getManagementChain($id as xs:string)
  as element(EMPLOYEE)*
{
  declare $mgrs as element(EMPLOYEE)* := ();
  declare $emp as element(EMPLOYEE)? := ens1:getByEmployeeID($id);
  while (fn:not(fn:empty($emp))) {
    set $emp := ens1:getByEmployeeID($emp/ManagerID);
    set $mgrs := ($mgrs, $emp);
  }
  return value ($mgrs);
};
(: the declarative baseline: recursive XQuery :)
declare function tns:chainRecursive($id as xs:string)
  as element(EMPLOYEE)*
{
  for $m in ens1:getByEmployeeID(fn:data(ens1:getByEmployeeID($id)/ManagerID))
  return ($m, tns:chainRecursive(fn:data($m/EmployeeID)))
};
"#,
        )
        .expect("load");
    space
}

/// Run the XQSE while-loop chain; returns chain length.
pub fn mgmt_chain_xqse(space: &DataSpace) -> usize {
    let out = space
        .engine()
        .eval_expr_str(
            "fn:count(tns:getManagementChain('0'))",
            &[("tns", "ld:Employees")],
        )
        .expect("chain");
    out.string_value().expect("len").parse().expect("count")
}

/// Run the recursive-XQuery baseline; returns chain length.
pub fn mgmt_chain_recursive(space: &DataSpace) -> usize {
    let out = space
        .engine()
        .eval_expr_str(
            "fn:count(tns:chainRecursive('0'))",
            &[("tns", "ld:Employees")],
        )
        .expect("chain");
    out.string_value().expect("len").parse().expect("count")
}

/// The native-Rust baseline: walk the same table directly.
pub fn mgmt_chain_native(db: &Database) -> usize {
    let mut count = 0usize;
    let mut id = 0i64;
    loop {
        let rows = db
            .select("EMPLOYEE", &vec![("EmployeeID".into(), SqlValue::Int(id))])
            .expect("select");
        let Some(row) = rows.first() else { break };
        match &row[2] {
            SqlValue::Int(m) => {
                id = *m;
                count += 1;
            }
            _ => break,
        }
    }
    count
}

// ---------------------------------------------------------------------
// E3: ETL lite (use case 3)
// ---------------------------------------------------------------------

/// Source/target pair + the paper's copy procedure, with `rows`
/// employees in the source.
pub struct EtlFixture {
    /// The dataspace.
    pub space: DataSpace,
    /// Source database.
    pub src: Database,
    /// Target database.
    pub dst: Database,
}

/// Build the ETL fixture.
pub fn etl_space(rows: i64) -> EtlFixture {
    let src = Database::new("hr");
    src.create_table(TableSchema {
        name: "EMPLOYEE".into(),
        columns: vec![
            Column::required("EmployeeID", ColumnType::Integer),
            Column::required("Name", ColumnType::Varchar),
            Column::nullable("DeptNo", ColumnType::Varchar),
            Column::nullable("ManagerID", ColumnType::Integer),
        ],
        primary_key: vec!["EmployeeID".into()],
        foreign_keys: vec![],
    })
    .expect("schema");
    for i in 1..=rows {
        src.insert(
            "EMPLOYEE",
            vec![
                SqlValue::Int(i),
                SqlValue::Str(format!("First{i} Last{i}")),
                SqlValue::Str(format!("D{}", i % 7)),
                if i == 1 { SqlValue::Null } else { SqlValue::Int(1) },
            ],
        )
        .expect("insert");
    }
    let dst = Database::new("backup");
    dst.create_table(TableSchema {
        name: "EMP2".into(),
        columns: vec![
            Column::required("EmpId", ColumnType::Integer),
            Column::nullable("FirstName", ColumnType::Varchar),
            Column::nullable("LastName", ColumnType::Varchar),
            Column::nullable("MgrName", ColumnType::Varchar),
            Column::nullable("Dept", ColumnType::Varchar),
        ],
        primary_key: vec!["EmpId".into()],
        foreign_keys: vec![],
    })
    .expect("schema");
    let space = DataSpace::new();
    space.register_relational_source(&src).expect("introspect");
    space.register_relational_source(&dst).expect("introspect");
    space
        .xqse()
        .load(
            r#"
declare namespace tns = "ld:Employees";
declare namespace ens1 = "ld:hr/EMPLOYEE";
declare namespace emp2 = "ld:backup/EMP2";
declare function tns:transformToEMP2($emp as element(EMPLOYEE)?)
  as element(EMP2)?
{
  for $emp1 in $emp return <EMP2>
    <EmpId>{fn:data($emp1/EmployeeID)}</EmpId>
    <FirstName>{fn:tokenize(fn:data($emp1/Name),' ')[1]}</FirstName>
    <LastName>{fn:tokenize(fn:data($emp1/Name),' ')[2]}</LastName>
    <MgrName>{fn:data(ens1:getByEmployeeID($emp1/ManagerID)/Name)}</MgrName>
    <Dept>{fn:data($emp1/DeptNo)}</Dept>
  </EMP2>
};
declare procedure tns:copyAllToEMP2() as xs:integer
{
  declare $backupCnt as xs:integer := 0;
  declare $emp2 as element(EMP2)?;
  iterate $emp1 over ens1:EMPLOYEE() {
    set $emp2 := tns:transformToEMP2($emp1);
    emp2:createEMP2($emp2);
    set $backupCnt := $backupCnt + 1;
  }
  return value ($backupCnt);
};
"#,
        )
        .expect("load");
    EtlFixture { space, src, dst }
}

/// Run the XQSE copy procedure; returns the copied-row count.
pub fn etl_run_xqse(f: &EtlFixture) -> i64 {
    let mut env = Env::new();
    let out = f
        .space
        .xqse()
        .call_procedure(
            &QName::with_ns("ld:Employees", "copyAllToEMP2"),
            Vec::<Sequence>::new(),
            &mut env,
        )
        .expect("copy");
    out.string_value().expect("count").parse().expect("int")
}

/// The "Java update override" baseline: the same ETL written natively
/// against the source APIs (what ALDSP 2.5 customers wrote).
pub fn etl_run_native(f: &EtlFixture) -> i64 {
    let rows = f.src.scan("EMPLOYEE").expect("scan");
    // The manager lookup the transform performs per row.
    let boss = f
        .src
        .select("EMPLOYEE", &vec![("EmployeeID".into(), SqlValue::Int(1))])
        .expect("select");
    let boss_name = boss
        .first()
        .map(|r| r[1].lexical())
        .unwrap_or_default();
    let mut n = 0i64;
    for row in rows {
        let id = match row[0] {
            SqlValue::Int(i) => i,
            _ => continue,
        };
        let name = row[1].lexical();
        let mut parts = name.splitn(2, ' ');
        let first = parts.next().unwrap_or("").to_string();
        let last = parts.next().unwrap_or("").to_string();
        let mgr = match &row[3] {
            SqlValue::Int(m) => {
                if *m == 1 {
                    boss_name.clone()
                } else {
                    let r = f
                        .src
                        .select("EMPLOYEE", &vec![("EmployeeID".into(), SqlValue::Int(*m))])
                        .expect("select");
                    r.first().map(|x| x[1].lexical()).unwrap_or_default()
                }
            }
            _ => String::new(),
        };
        f.dst
            .insert(
                "EMP2",
                vec![
                    SqlValue::Int(id),
                    SqlValue::Str(first),
                    SqlValue::Str(last),
                    SqlValue::Str(mgr),
                    row[2].clone(),
                ],
            )
            .expect("insert");
        n += 1;
    }
    n
}

// ---------------------------------------------------------------------
// E4: replicating create (use case 4)
// ---------------------------------------------------------------------

/// Primary + backup sources with the paper's replicating create
/// procedure loaded.
pub struct ReplicateFixture {
    /// Dataspace.
    pub space: DataSpace,
    /// Primary source.
    pub primary: Database,
    /// Backup source.
    pub backup: Database,
}

/// Build the replication fixture; `with_handlers` controls whether the
/// procedure wraps each create in try/catch (for overhead measurement).
pub fn replicate_space(with_handlers: bool) -> ReplicateFixture {
    let schema = |t: &str| TableSchema {
        name: t.into(),
        columns: vec![
            Column::required("EmployeeID", ColumnType::Integer),
            Column::required("Name", ColumnType::Varchar),
        ],
        primary_key: vec!["EmployeeID".into()],
        foreign_keys: vec![],
    };
    let primary = Database::new("primary");
    primary.create_table(schema("EMPLOYEE")).expect("schema");
    let backup = Database::new("backup");
    backup.create_table(schema("EMPLOYEE")).expect("schema");
    let space = DataSpace::new();
    space.register_relational_source(&primary).expect("introspect");
    space.register_relational_source(&backup).expect("introspect");
    let src = if with_handlers {
        r#"
declare namespace tns = "ld:Rep";
declare namespace p = "ld:primary/EMPLOYEE";
declare namespace b = "ld:backup/EMPLOYEE";
declare procedure tns:create($newEmps as element(EMPLOYEE)*) as xs:integer
{
  declare $n := 0;
  iterate $newEmp over $newEmps {
    try { p:createEMPLOYEE($newEmp); }
    catch (* into $err, $msg) {
      fn:error(xs:QName("PRIMARY_CREATE_FAILURE"),
        fn:concat("Primary create failed due to: ", $err, $msg));
    };
    try { b:createEMPLOYEE($newEmp); }
    catch (* into $err, $msg) {
      fn:error(xs:QName("SECONDARY_CREATE_FAILURE"),
        fn:concat("Backup create failed due to: ", $err, $msg));
    };
    set $n := $n + 1;
  }
  return value $n;
};
"#
    } else {
        r#"
declare namespace tns = "ld:Rep";
declare namespace p = "ld:primary/EMPLOYEE";
declare namespace b = "ld:backup/EMPLOYEE";
declare procedure tns:create($newEmps as element(EMPLOYEE)*) as xs:integer
{
  declare $n := 0;
  iterate $newEmp over $newEmps {
    p:createEMPLOYEE($newEmp);
    b:createEMPLOYEE($newEmp);
    set $n := $n + 1;
  }
  return value $n;
};
"#
    };
    space.xqse().load(src).expect("load");
    ReplicateFixture { space, primary, backup }
}

/// A batch of employee elements `[start, start+n)`.
pub fn employee_batch(start: i64, n: i64) -> Sequence {
    let mut seq = Sequence::empty();
    for i in start..start + n {
        let xml =
            format!("<EMPLOYEE><EmployeeID>{i}</EmployeeID><Name>emp{i}</Name></EMPLOYEE>");
        let doc = xmlparse::parse(&xml).expect("xml");
        seq.push(xdm::sequence::Item::Node(doc.children()[0].clone()));
    }
    seq
}

/// Run the replicating create over a batch; returns Ok(created) or the
/// wrapped error code's local name.
pub fn replicate_run(f: &ReplicateFixture, batch: Sequence) -> Result<i64, String> {
    let mut env = Env::new();
    match f.space.xqse().call_procedure(
        &QName::with_ns("ld:Rep", "create"),
        vec![batch],
        &mut env,
    ) {
        Ok(v) => Ok(v.string_value().unwrap_or_default().parse().unwrap_or(0)),
        Err(e) => Err(e.code.local.to_string()),
    }
}

// ---------------------------------------------------------------------
// E7: XQSE vs XQueryP sequential mode
// ---------------------------------------------------------------------

/// A join-heavy read over the demo dataspace executed as an XQSE
/// program (statement wrapper, declarative core stays optimizable).
pub const XQSE_JOIN_PROGRAM: &str = r#"
declare namespace cus = "ld:db1/CUSTOMER";
declare namespace cre = "ld:db2/CREDIT_CARD";
{
  declare $total := 0;
  declare $matches :=
    for $c in cus:CUSTOMER()
    return fn:count(for $k in cre:CREDIT_CARD()
                    where $c/CID eq $k/CID
                    return $k);
  iterate $m over $matches {
    set $total := $total + $m;
  }
  return value $total;
}
"#;

/// Run the join program under XQSE (optimizations on).
pub fn join_program_xqse(space: &DataSpace) -> i64 {
    let result = space.xqse().run(XQSE_JOIN_PROGRAM).expect("run");
    result.string_value().expect("total").parse().expect("int")
}

/// Run the same program under XQueryP sequential mode (strict order,
/// optimizations off for the whole program).
pub fn join_program_xqueryp(space: &DataSpace) -> i64 {
    let xp = xqse::xqueryp::XqueryP::with_engine(space.xqse().engine_rc());
    let result = xp.run(XQSE_JOIN_PROGRAM).expect("run");
    result.string_value().expect("total").parse().expect("int")
}
