//! exptab — regenerate every table/figure of the constructed
//! evaluation (DESIGN.md §4) and print them in row form.
//!
//! Usage: `cargo run --release -p xqse-bench --bin exptab [quick|full] [--json] [--out DIR]`
//!
//! `quick` (default) uses smaller scales so the whole suite finishes
//! in well under a minute; `full` uses the scales recorded in
//! EXPERIMENTS.md. `--json` additionally writes one machine-readable
//! `BENCH_<ID>.json` per experiment (to the current directory, or to
//! `--out DIR`) — `scripts/check.sh` diffs these against the
//! checked-in baselines to flag perf regressions.


use std::path::PathBuf;

use aldsp::decompose::OccPolicy;
use aldsp::rel::{CrashPoint, SqlValue, TwoPhaseCoordinator, TxOutcome, WriteOp};
use xdm::qname::QName;
use xdm::sequence::{Item, Sequence};
use xqse_bench::*;

/// Emits each experiment table to stdout and (optionally) to
/// `BENCH_<ID>.json`.
struct Reporter {
    json_dir: Option<PathBuf>,
    mode: &'static str,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Reporter {
    fn table(&self, id: &str, title: &str, header: &[&str], rows: &[Vec<String>]) {
        print_table(title, header, rows);
        let Some(dir) = &self.json_dir else { return };
        let mut json = String::new();
        json.push_str(&format!(
            "{{\n  \"id\": \"{}\",\n  \"title\": \"{}\",\n  \"mode\": \"{}\",\n  \"header\": [",
            json_escape(id),
            json_escape(title),
            self.mode,
        ));
        json.push_str(
            &header
                .iter()
                .map(|h| format!("\"{}\"", json_escape(h)))
                .collect::<Vec<_>>()
                .join(", "),
        );
        json.push_str("],\n  \"rows\": [\n");
        let body = rows
            .iter()
            .map(|row| {
                format!(
                    "    [{}]",
                    row.iter()
                        .map(|c| format!("\"{}\"", json_escape(c)))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        json.push_str(&body);
        json.push_str("\n  ]\n}\n");
        let path = dir.join(format!("BENCH_{id}.json"));
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("exptab: cannot write {}: {e}", path.display());
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "full");
    let mut json = false;
    let mut out_dir = PathBuf::from(".");
    let mut only: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--out" => {
                if let Some(d) = it.next() {
                    out_dir = PathBuf::from(d);
                }
            }
            "--only" => {
                if let Some(id) = it.next() {
                    only = Some(id.to_string());
                }
            }
            _ => {}
        }
    }
    let r = Reporter {
        json_dir: json.then_some(out_dir),
        mode: if full { "full" } else { "quick" },
    };
    // `--only E14` reruns a single experiment (the check.sh serving
    // arm uses it so the tripwire doesn't pay for the full table).
    let want = |id: &str| only.as_deref().is_none_or(|o| o.eq_ignore_ascii_case(id));
    let reps = if full { 7 } else { 3 };
    if want("E1") {
        e1_getprofile(full, reps, &r);
    }
    if want("E2") {
        e2_mgmtchain(full, reps, &r);
    }
    if want("E3") {
        e3_etl(full, reps, &r);
    }
    if want("E4") {
        e4_replicate(full, reps, &r);
    }
    if want("E5") {
        e5_decompose(full, reps, &r);
    }
    if want("E6") {
        e6_occ(full, &r);
    }
    if want("E7") {
        e7_xqueryp(full, reps, &r);
    }
    if want("E8") {
        e8_parser(reps, &r);
    }
    if want("E9") {
        e9_xa(full, &r);
    }
    if want("E10") {
        e10_udelete(full, reps, &r);
    }
    if want("E11") {
        e11_join_ablation(full, reps, &r);
    }
    if want("E12") {
        e12_pushdown(full, reps, &r);
    }
    if want("E13") {
        e13_prepared(full, reps, &r);
    }
    if want("E14") {
        e14_serve(full, &r);
    }
    if want("E16") {
        e16_zero_copy(full, reps, &r);
    }
    if want("E17") {
        e17_lazy_streaming(full, reps, &r);
    }
}

/// E17: pipelined lazy evaluation ablation. Two early-exit read
/// shapes over the ETL employee table — a `fn:subsequence` page and a
/// `fn:exists` probe — run lazily (streamed FLWOR tuples, early-exit
/// interception) and eagerly (`Engine::set_lazy(false)`) *in the same
/// session*, so both arms share the warmed materialization caches and
/// differ only in evaluation order. The queries deliberately use
/// plain construction and `fn:contains` predicates so neither the
/// pushdown nor the join/batch rewrites claim them — the ablation
/// isolates streaming. Serialization is asserted byte-identical
/// between the arms on every run, and the `tuples_pulled` counter
/// must stay below the table size (proof the stream engaged and
/// exited early rather than draining).
fn e17_lazy_streaming(full: bool, reps: usize, r: &Reporter) {
    let sizes: &[i64] = if full { &[1000, 5000, 10000] } else { &[200, 1000] };
    const NS: &[(&str, &str)] = &[("ens1", "ld:hr/EMPLOYEE")];
    // A page of 10 constructed rows starting at position 2: the lazy
    // arm pulls 11 tuples and stops; the eager arm builds all n rows
    // first and then slices.
    const PAGE: &str = "fn:subsequence(for $e in ens1:EMPLOYEE() \
         where fn:contains(fn:string($e/Name), 'First') \
         return <row><id>{fn:data($e/EmployeeID)}</id>\
         <name>{fn:data($e/Name)}</name>\
         <dept>{fn:data($e/DeptNo)}</dept></row>, 2, 10)";
    // An existence probe whose first (and only) match is row 2: the
    // lazy arm stops after two tuples.
    const PROBE: &str = "fn:exists(for $e in ens1:EMPLOYEE() \
         where fn:contains(fn:string($e/Name), 'First2 ') \
         return <row>{fn:data($e/Name)}</row>)";
    let mut rows = Vec::new();
    for &n in sizes {
        let f = etl_space(n);
        let engine = f.space.engine();
        for (workload, query) in [("page", PAGE), ("probe", PROBE)] {
            let run = |lazy: bool| {
                engine.set_lazy(lazy);
                let out = engine.eval_expr_str(query, NS).expect("E17 query");
                engine.set_lazy(true);
                out
            };
            // Warm the materialization caches and prove equivalence.
            let (lazy_out, eager_out) = (run(true), run(false));
            assert_eq!(
                xmlparse::serialize_sequence(&lazy_out),
                xmlparse::serialize_sequence(&eager_out),
                "lazy/eager must serialize byte-identically ({workload}, n={n})"
            );
            drop((lazy_out, eager_out));
            // One counted lazy run: the stream must have engaged and
            // stopped well short of the table.
            engine.reset_opt_stats();
            run(true);
            let pulled = engine.opt_stats().tuples_pulled;
            assert!(
                pulled >= 1 && pulled < n as u64,
                "stream must engage and exit early ({workload}, n={n}): \
                 pulled={pulled}"
            );
            let lazy_secs = median_secs(reps, || {
                run(true);
            });
            let eager_secs = median_secs(reps, || {
                run(false);
            });
            let speedup = eager_secs / lazy_secs;
            if full && n >= 5000 {
                assert!(
                    speedup >= 5.0,
                    "lazy streaming must be >=5x at n={n} ({workload}): \
                     lazy={lazy_secs:.4}s eager={eager_secs:.4}s ({speedup:.2}x)"
                );
            }
            rows.push(vec![
                n.to_string(),
                workload.to_string(),
                format!("{:.3}", lazy_secs * 1e3),
                format!("{:.3}", eager_secs * 1e3),
                pulled.to_string(),
                format!("{speedup:.2}"),
            ]);
        }
    }
    r.table(
        "E17",
        "E17 pipelined lazy evaluation (paged read + exists probe, lazy vs eager)",
        &[
            "rows",
            "workload",
            "lazy_ms",
            "eager_ms",
            "tuples_pulled",
            "speedup",
        ],
        &rows,
    );
}

/// E16: zero-copy XDM construction ablation. The E1-style snapshot
/// read wraps every already-materialized source tree (the versioned
/// materialization caches serve them sealed) into one constructed
/// document — the construction-bound hot path. Grafting adopts those
/// subtrees by reference; `Engine::set_graft(false)` restores the
/// deep-copy baseline *in the same session*, so both arms share the
/// warmed caches and differ only in construction. Serialization is
/// asserted byte-identical between the arms on every run.
fn e16_zero_copy(full: bool, reps: usize, r: &Reporter) {
    let sizes: &[usize] = if full { &[1000, 5000, 10000] } else { &[200, 1000] };
    const SNAPSHOT: &str = "<snapshot><customers>{ cus:CUSTOMER() }</customers>\
                            <orders>{ ord:ORDER() }</orders>\
                            <cards>{ cre:CREDIT_CARD() }</cards></snapshot>";
    const NS: &[(&str, &str)] = &[
        ("cus", "ld:db1/CUSTOMER"),
        ("ord", "ld:db1/ORDER"),
        ("cre", "ld:db2/CREDIT_CARD"),
    ];
    fn tree_size(n: &xdm::node::NodeHandle) -> u64 {
        1 + n.attributes().len() as u64
            + n.children().iter().map(tree_size).sum::<u64>()
    }
    let mut rows = Vec::new();
    for &n in sizes {
        let d = demo::build(n, 3, 2).expect("demo");
        let engine = d.space.engine();
        let snap = |graft: bool| {
            engine.set_graft(graft);
            let out = engine.eval_expr_str(SNAPSHOT, NS).expect("snapshot");
            engine.set_graft(true);
            out
        };
        // Warm the materialization caches (and prove equivalence).
        let (on, off) = (snap(true), snap(false));
        let bytes_on = xmlparse::serialize_sequence(&on);
        assert_eq!(
            bytes_on,
            xmlparse::serialize_sequence(&off),
            "graft on/off must serialize byte-identically (n={n})"
        );
        let Item::Node(root) = on.exactly_one().expect("one node").clone() else {
            panic!("snapshot is a node")
        };
        let nodes = tree_size(&root);
        drop((on, off));

        let graft_secs = median_secs(reps, || {
            snap(true);
        });
        let copy_secs = median_secs(reps, || {
            snap(false);
        });
        let speedup = copy_secs / graft_secs;
        if full && n >= 5000 {
            assert!(
                speedup >= 1.5,
                "zero-copy construction must be >=1.5x at n={n}: \
                 graft={graft_secs:.4}s copy={copy_secs:.4}s ({speedup:.2}x)"
            );
        }
        rows.push(vec![
            n.to_string(),
            nodes.to_string(),
            format!("{:.2}", graft_secs * 1e3),
            format!("{:.2}", copy_secs * 1e3),
            format!("{:.0}", nodes as f64 / graft_secs),
            format!("{:.0}", nodes as f64 / copy_secs),
            format!("{speedup:.2}"),
        ]);
    }
    r.table(
        "E16",
        "E16 zero-copy construction (grafted snapshot vs deep-copy, warm caches)",
        &[
            "customers",
            "snapshot_nodes",
            "graft_ms",
            "copy_ms",
            "graft nodes/s",
            "copy nodes/s",
            "speedup",
        ],
        &rows,
    );
}

/// E14: serving-pool throughput — queries/sec of the E1-style read
/// workload (`getProfileById` over distinct customers, each call
/// paying simulated web-service wire latency) served directly on one
/// thread vs through [`aldsp::pool::ServePool`] at 1/2/4/8 workers.
///
/// On this reproduction's single-core reference host the scaling
/// comes from workers *overlapping* the source waits — the ALDSP
/// middle-tier regime (PAPER §II) — not from CPU parallelism; see
/// EXPERIMENTS.md E14 for the methodology note.
fn e14_serve(full: bool, r: &Reporter) {
    use aldsp::pool::{drive_closed_loop, ServePool, ServeSpec};
    use aldsp::ws::WebService;

    let requests = if full { 64 } else { 32 };
    let delay_us = 2000u64;
    let d = demo::build(requests, 1, 1).expect("demo");

    // Direct baseline: the same workload, same delayed source, one
    // plain DataSpace on this thread — what a 1-worker pool must stay
    // within 10% of.
    let direct_space = demo::assemble(
        &d.db1,
        &d.db2,
        WebService::credit_rating_delayed(demo::CREDIT_TYPES_NS, delay_us),
    )
    .expect("assemble");
    let reqs = serve_profile_requests(requests);
    let started = std::time::Instant::now();
    let mut direct_sample = String::new();
    for (i, _req) in reqs.iter().enumerate() {
        let g = direct_space
            .get(
                "CustomerProfile",
                "getProfileById",
                vec![Sequence::one(Item::string((i + 1).to_string()))],
            )
            .expect("direct get");
        assert_eq!(g.len(), 1, "each id matches exactly one profile");
        if i == 0 {
            direct_sample = xmlparse::serialize_sequence(g.instances());
        }
    }
    let direct_elapsed = started.elapsed();
    let direct_qps = qps(requests, direct_elapsed);

    let mut rows = vec![vec![
        "direct".to_string(),
        "-".to_string(),
        requests.to_string(),
        format!("{:.1}", direct_elapsed.as_secs_f64() * 1e3),
        format!("{:.1}", direct_qps),
        "-".to_string(),
        "1.00".to_string(),
    ]];
    let mut one_worker_qps = 0.0f64;
    for workers in [1usize, 2, 4, 8] {
        let (db1, db2) = (d.db1.clone(), d.db2.clone());
        let pool = ServePool::start(ServeSpec::new(workers), move |_worker| {
            demo::assemble(
                &db1,
                &db2,
                WebService::credit_rating_delayed(demo::CREDIT_TYPES_NS, delay_us),
            )
        });
        let clients = pool.workers() * 2;
        let (replies, elapsed) = drive_closed_loop(&pool, &reqs, clients);
        let report = pool.shutdown();
        for reply in &replies {
            let body = reply.result.as_ref().expect("pooled get");
            assert!(!body.is_empty(), "pooled reply must carry the profile");
        }
        // Same engine, same plan, same data: worker 0's answer for
        // customer 1 must be byte-identical to the direct path's.
        assert_eq!(
            replies[0].result.as_ref().expect("reply 0"),
            &direct_sample,
            "pooled result diverges from single-threaded result"
        );
        let pool_qps = qps(replies.len(), elapsed);
        if workers == 1 {
            one_worker_qps = pool_qps;
        }
        rows.push(vec![
            format!("pool-{}", report.workers),
            report.workers.to_string(),
            replies.len().to_string(),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
            format!("{:.1}", pool_qps),
            format!("{:.2}", pool_qps / one_worker_qps.max(1e-9)),
            format!("{:.2}", pool_qps / direct_qps.max(1e-9)),
        ]);
    }
    r.table(
        "E14",
        "E14 serving-pool throughput (closed loop, 2 ms simulated source latency)",
        &["mode", "workers", "requests", "elapsed_ms", "qps", "speedup_vs_pool1", "vs_direct"],
        &rows,
    );
}

/// E12 (ablation): source pushdown — repeated keyed lookups over an
/// entity read function, three ways:
/// - `pushdown`: optimizer on; the where-clause is rewritten to
///   indexed point-selects answered by the source (secondary hash
///   index probes);
/// - `memoized`: optimizer off (the pre-pushdown baseline); the
///   hash-join rewrite scans once per statement and probes the
///   middle-tier index;
/// - `fullscan`: the predicate is wrapped in `fn:string(...)` so no
///   rewrite applies — one full scan-and-filter per key, the naive
///   middle-tier plan.
fn e12_pushdown(full: bool, reps: usize, r: &Reporter) {
    let sizes: &[i64] = if full { &[1000, 5000, 10000] } else { &[200, 1000] };
    const KEYS: usize = 20;
    let mut rows = Vec::new();
    for &n in sizes {
        let f = etl_space(n);
        // Point lookups on the (unique) Name column, spread across the
        // table — each key matches exactly one row.
        let keys = (0..KEYS)
            .map(|k| {
                let id = 1 + k as i64 * n / KEYS as i64;
                format!("'First{id} Last{id}'")
            })
            .collect::<Vec<_>>()
            .join(", ");
        let pushable = format!(
            "fn:sum(for $d in ({keys})
               return fn:count(for $e in ens1:EMPLOYEE()
                               where $e/Name eq $d
                               return $e))"
        );
        let opaque = format!(
            "fn:sum(for $d in ({keys})
               return fn:count(for $e in ens1:EMPLOYEE()
                               where fn:string($e/Name) eq $d
                               return $e))"
        );
        let nsenv = [("ens1", "ld:hr/EMPLOYEE")];
        let run = |expr: &str| -> i64 {
            f.space
                .engine()
                .eval_expr_str(expr, &nsenv)
                .expect("eval")
                .string_value()
                .expect("sum")
                .parse()
                .expect("int")
        };
        // All three plans must agree on the answer.
        f.space.engine().set_optimize(true);
        let expect = run(&pushable);
        assert_eq!(expect, KEYS as i64, "each key matches exactly one row");
        assert_eq!(run(&opaque), expect);
        f.space.engine().set_optimize(false);
        assert_eq!(run(&pushable), expect);
        assert_eq!(run(&opaque), expect);

        f.space.engine().set_optimize(true);
        let pushdown = median_secs(reps, || {
            run(&pushable);
        });
        f.space.engine().set_optimize(false);
        let memoized = median_secs(reps, || {
            run(&pushable);
        });
        let fullscan = median_secs(reps, || {
            run(&opaque);
        });
        f.space.engine().set_optimize(true);
        rows.push(vec![
            n.to_string(),
            KEYS.to_string(),
            format!("{:.2}", pushdown * 1e3),
            format!("{:.2}", memoized * 1e3),
            format!("{:.2}", fullscan * 1e3),
            format!("{:.1}x", fullscan / pushdown),
        ]);
    }
    r.table(
        "E12",
        "E12 ablation: source pushdown (indexed select) vs middle-tier join memoization vs full scan",
        &["rows", "keys", "pushdown_ms", "memoized_ms", "fullscan_ms", "fullscan/pushdown"],
        &rows,
    );
}

/// E11 (ablation): the declarative-core hash-join memoization inside
/// the platform's own read path — getProfile() with the optimizer on
/// vs off. Isolates the optimizer's contribution from E7's engine-mode
/// differences.
fn e11_join_ablation(full: bool, reps: usize, r: &Reporter) {
    let sizes: &[usize] = if full { &[50, 200, 800] } else { &[50, 200] };
    let mut rows = Vec::new();
    for &n in sizes {
        let d = demo::build(n, 2, 2).expect("demo");
        let run = || {
            d.space
                .get("CustomerProfile", "getProfile", vec![])
                .expect("get")
                .len()
        };
        // "Unoptimized" here means the full ablation: pushdown/caching
        // off AND the hash-join rewrite itself off (the join rewrite
        // survives the plain kill-switch, so it needs its own knob).
        d.space.engine().set_optimize(true);
        d.space.engine().set_join_rewrite(true);
        let on = median_secs(reps, || {
            assert_eq!(run(), n);
        });
        d.space.engine().set_optimize(false);
        d.space.engine().set_join_rewrite(false);
        let off = median_secs(reps, || {
            assert_eq!(run(), n);
        });
        d.space.engine().set_optimize(true);
        d.space.engine().set_join_rewrite(true);
        rows.push(vec![
            n.to_string(),
            format!("{:.2}", on * 1e3),
            format!("{:.2}", off * 1e3),
            format!("{:.1}x", off / on),
        ]);
    }
    r.table(
        "E11",
        "E11 ablation: join memoization in getProfile() (optimizer on vs off)",
        &["customers", "optimized_ms", "unoptimized_ms", "speedup"],
        &rows,
    );
}

/// E1 (Table 1): Figure-3 getProfile() integration read latency vs
/// customer count.
fn e1_getprofile(full: bool, reps: usize, r: &Reporter) {
    let sizes: &[usize] = if full { &[10, 100, 1000, 5000] } else { &[10, 100, 500] };
    let mut rows = Vec::new();
    for &n in sizes {
        let d = demo::build(n, 3, 2).expect("demo");
        let mut profiles = 0usize;
        let secs = median_secs(reps, || {
            let g = d.space.get("CustomerProfile", "getProfile", vec![]).expect("get");
            profiles = g.len();
        });
        rows.push(vec![
            n.to_string(),
            profiles.to_string(),
            format!("{:.2}", secs * 1e3),
            format!("{:.0}", n as f64 / secs),
        ]);
    }
    r.table(
        "E1",
        "E1  getProfile() read integration (2 RDBs + web service)",
        &["customers", "profiles", "latency_ms", "profiles_per_s"],
        &rows,
    );
}

/// E2 (Table 2): management chain, XQSE while vs recursive XQuery vs
/// native Rust, by chain depth.
fn e2_mgmtchain(full: bool, reps: usize, r: &Reporter) {
    let depths: &[usize] = if full { &[2, 8, 32, 64] } else { &[2, 8, 32] };
    let mut rows = Vec::new();
    for &d in depths {
        let space = mgmt_space(d);
        let db = space.database("hr").expect("db");
        assert_eq!(mgmt_chain_xqse(&space), d);
        assert_eq!(mgmt_chain_recursive(&space), d);
        assert_eq!(mgmt_chain_native(&db), d);
        let xq = median_secs(reps, || {
            mgmt_chain_xqse(&space);
        });
        let rec = median_secs(reps, || {
            mgmt_chain_recursive(&space);
        });
        let nat = median_secs(reps, || {
            mgmt_chain_native(&db);
        });
        rows.push(vec![
            d.to_string(),
            format!("{:.3}", xq * 1e3),
            format!("{:.3}", rec * 1e3),
            format!("{:.3}", nat * 1e3),
            format!("{:.2}", xq / rec),
        ]);
    }
    r.table(
        "E2",
        "E2  management chain (use case 2): XQSE while vs recursive XQuery vs native",
        &["depth", "xqse_ms", "recursive_ms", "native_ms", "xqse/recursive"],
        &rows,
    );
}

/// E3 (Table 3): ETL-lite copy throughput, XQSE iterate vs the native
/// ("Java override") baseline.
fn e3_etl(full: bool, reps: usize, r: &Reporter) {
    let sizes: &[i64] =
        if full { &[10, 100, 1000, 5000, 10000] } else { &[10, 100, 500] };
    let mut rows = Vec::new();
    for &n in sizes {
        let xqse_secs = median_secs(reps, || {
            let f = etl_space(n);
            assert_eq!(etl_run_xqse(&f), n);
        });
        let native_secs = median_secs(reps, || {
            let f = etl_space(n);
            assert_eq!(etl_run_native(&f), n);
        });
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", xqse_secs * 1e3),
            format!("{:.0}", n as f64 / xqse_secs),
            format!("{:.1}", native_secs * 1e3),
            format!("{:.0}", n as f64 / native_secs),
            format!("{:.1}", xqse_secs / native_secs),
        ]);
    }
    r.table(
        "E3",
        "E3  ETL lite (use case 3): XQSE iterate vs native baseline",
        &["rows", "xqse_ms", "xqse_rows_per_s", "native_ms", "native_rows_per_s", "slowdown"],
        &rows,
    );
}

/// E4 (Table 4): replicating create — try/catch overhead and failure
/// injection.
fn e4_replicate(full: bool, reps: usize, r: &Reporter) {
    let batch: i64 = if full { 500 } else { 100 };
    let with = median_secs(reps, || {
        let f = replicate_space(true);
        assert_eq!(replicate_run(&f, employee_batch(1, batch)), Ok(batch));
    });
    let without = median_secs(reps, || {
        let f = replicate_space(false);
        assert_eq!(replicate_run(&f, employee_batch(1, batch)), Ok(batch));
    });
    // Failure injection: poison the backup with a conflicting row at
    // several positions; the procedure must stop with the wrapped
    // secondary error and leave exactly `pos` rows on the primary.
    let mut rows = vec![
        vec![
            format!("{batch}"),
            "0".into(),
            format!("{:.1}", with * 1e3),
            format!("{:.1}", without * 1e3),
            format!("{:+.1}%", (with / without - 1.0) * 100.0),
        ],
    ];
    for pos in [1i64, batch / 2, batch - 1] {
        let f = replicate_space(true);
        f.backup
            .insert(
                "EMPLOYEE",
                vec![SqlValue::Int(pos + 1), SqlValue::Str("ghost".into())],
            )
            .expect("poison");
        let out = replicate_run(&f, employee_batch(1, batch));
        assert_eq!(out, Err("SECONDARY_CREATE_FAILURE".into()));
        let created = f.primary.row_count("EMPLOYEE").expect("count");
        rows.push(vec![
            format!("{batch}"),
            format!("fail@{}", pos + 1),
            format!("created={created}"),
            "-".into(),
            "SECONDARY_CREATE_FAILURE".into(),
        ]);
    }
    r.table(
        "E4",
        "E4  replicating create (use case 4): try/catch overhead + failure injection",
        &["batch", "inject", "with_handlers_ms", "no_handlers_ms", "overhead/outcome"],
        &rows,
    );
}

/// E5 (Table 5): decomposition scaling — changed fields and fan-out.
fn e5_decompose(full: bool, reps: usize, r: &Reporter) {
    let n = if full { 1000 } else { 200 };
    let mut rows = Vec::new();
    for (label, changes) in [
        ("1 field / 1 source", vec![("LAST_NAME", None)]),
        (
            "2 fields same row",
            vec![("LAST_NAME", None), ("FIRST_NAME", None)],
        ),
        (
            "2 sources (2PC)",
            vec![("LAST_NAME", None), ("BRAND", Some("card"))],
        ),
        ("nested order row", vec![("STATUS", Some("order"))]),
    ] {
        let d = demo::build(n, 2, 1).expect("demo");
        let g = d.space.get("CustomerProfile", "getProfile", vec![]).expect("get");
        for (field, loc) in &changes {
            match loc {
                None => g.set_value(0, &[field], "CHANGED").expect("set"),
                Some("order") => g
                    .set_value(0, &["Orders", "ORDER", field], "CHANGED")
                    .expect("set"),
                Some(_) => g
                    .set_value(0, &["CreditCards", "CREDIT_CARD", field], "NEWVAL")
                    .expect("set"),
            }
        }
        let lineage = d.space.lineage("CustomerProfile").expect("lineage");
        let mut plan_stats = (0usize, 0usize);
        let secs = median_secs(reps, || {
            let plan = aldsp::decompose::decompose_update(
                &lineage,
                &g,
                &OccPolicy::UpdatedValues,
            )
            .expect("plan");
            plan_stats = (plan.statement_count(), plan.source_count());
        });
        rows.push(vec![
            label.to_string(),
            plan_stats.0.to_string(),
            plan_stats.1.to_string(),
            format!("{:.1}", secs * 1e6),
        ]);
    }
    r.table(
        "E5",
        "E5  update decomposition (change summary -> conditioned SQL)",
        &["scenario", "statements", "sources", "decompose_us"],
        &rows,
    );
}

/// E6 (Table 6): optimistic-concurrency policies — WHERE width, and
/// conflict detection vs concurrent writers hitting other columns.
fn e6_occ(full: bool, r: &Reporter) {
    let trials = if full { 200 } else { 50 };
    let mut rows = Vec::new();
    for (name, policy) in [
        ("ReadValues", OccPolicy::ReadValues),
        ("UpdatedValues", OccPolicy::UpdatedValues),
        (
            "ChosenSubset(FIRST_NAME)",
            OccPolicy::ChosenSubset(vec!["FIRST_NAME".into()]),
        ),
    ] {
        // WHERE width on a single-field update.
        let d = demo::build(5, 1, 1).expect("demo");
        d.space.set_occ_policy("CustomerProfile", policy.clone()).expect("policy");
        let g = d.space.get("CustomerProfile", "getProfile", vec![]).expect("get");
        g.set_value(0, &["LAST_NAME"], "X").expect("set");
        d.space.submit(&g).expect("submit");
        let sql = d.space.last_decomposition.borrow()[0].clone();
        let where_width = sql.split(" AND ").count();
        // Conflict detection rate under interleaved writers that touch
        // the SAME column (true conflicts)…
        let mut same_detected = 0;
        // …and a DIFFERENT column (conflicts only ReadValues sees).
        let mut other_detected = 0;
        for t in 0..trials {
            for other_col in [false, true] {
                let d = demo::build(3, 1, 1).expect("demo");
                d.space
                    .set_occ_policy("CustomerProfile", policy.clone())
                    .expect("policy");
                let g = d
                    .space
                    .get("CustomerProfile", "getProfile", vec![])
                    .expect("get");
                g.set_value(0, &["LAST_NAME"], &format!("mine{t}")).expect("set");
                let col = if other_col { "FIRST_NAME" } else { "LAST_NAME" };
                d.db1
                    .execute(vec![WriteOp::Update {
                        table: "CUSTOMER".into(),
                        set: vec![(col.into(), SqlValue::Str(format!("theirs{t}")))],
                        cond: vec![("CID".into(), SqlValue::Int(1))],
                        expect_rows: 1,
                    }])
                    .expect("interleave");
                let conflicted = d.space.submit(&g).is_err();
                if other_col {
                    other_detected += conflicted as u32;
                } else {
                    same_detected += conflicted as u32;
                }
            }
        }
        rows.push(vec![
            name.to_string(),
            where_width.to_string(),
            format!("{}/{trials}", same_detected),
            format!("{}/{trials}", other_detected),
        ]);
    }
    r.table(
        "E6",
        "E6  optimistic concurrency policies (SS2 claim: \"sameness\" in WHERE)",
        &["policy", "where_width", "same_col_conflicts_detected", "other_col_conflicts_detected"],
        &rows,
    );
}

/// E7 (Table 7): XQSE statement separation preserves declarative
/// optimization; XQueryP sequential mode pins evaluation order.
fn e7_xqueryp(full: bool, reps: usize, r: &Reporter) {
    let sizes: &[usize] = if full { &[20, 100, 400, 1000] } else { &[20, 100, 300] };
    let mut rows = Vec::new();
    for &n in sizes {
        let d = demo::build(n, 0, 2).expect("demo");
        let expect = (n * 2) as i64;
        assert_eq!(join_program_xqse(&d.space), expect);
        assert_eq!(join_program_xqueryp(&d.space), expect);
        let xqse_secs = median_secs(reps, || {
            join_program_xqse(&d.space);
        });
        let xp_secs = median_secs(reps, || {
            join_program_xqueryp(&d.space);
        });
        rows.push(vec![
            n.to_string(),
            format!("{:.2}", xqse_secs * 1e3),
            format!("{:.2}", xp_secs * 1e3),
            format!("{:.1}x", xp_secs / xqse_secs),
        ]);
    }
    r.table(
        "E7",
        "E7  XQSE (optimizable declarative core) vs XQueryP sequential mode",
        &["customers", "xqse_ms", "xqueryp_ms", "xqueryp/xqse"],
        &rows,
    );
}

/// E8 (Table 8): parser throughput over the paper's listings.
fn e8_parser(reps: usize, r: &Reporter) {
    let listings: &[(&str, String)] = &[
        ("hello_world", "{ return value \"Hello, World\"; }".to_string()),
        ("getProfile (Fig.3)", demo::GET_PROFILE_SRC.to_string()),
        (
            "getProfile x8",
            (0..8)
                .map(|i| {
                    demo::GET_PROFILE_SRC
                        .replace("getProfile", &format!("getProfile{i}"))
                })
                .collect::<Vec<_>>()
                .join("\n"),
        ),
    ];
    let mut rows = Vec::new();
    for (name, src) in listings {
        // The x8 listing redeclares namespaces; tolerate load failure
        // by measuring parse only.
        let secs = median_secs(reps.max(5), || {
            let _ = xqparser::parse_module(src);
        });
        rows.push(vec![
            name.to_string(),
            src.len().to_string(),
            format!("{:.1}", secs * 1e6),
            format!("{:.1}", src.len() as f64 / secs / 1e6),
        ]);
    }
    r.table(
        "E8",
        "E8  parser throughput (XQuery + XQSE grammar)",
        &["listing", "bytes", "parse_us", "MB_per_s"],
        &rows,
    );
}

/// E9 (Table 9): XA two-phase commit atomicity under coordinator
/// crash injection.
fn e9_xa(full: bool, r: &Reporter) {
    let trials = if full { 500 } else { 100 };
    let mut rows = Vec::new();
    for (name, crash) in [
        ("no crash", None),
        ("after first prepare", Some(CrashPoint::AfterFirstPrepare)),
        ("after all prepares", Some(CrashPoint::AfterAllPrepares)),
        ("after first commit", Some(CrashPoint::AfterFirstCommit)),
    ] {
        let mut committed = 0u32;
        let mut aborted = 0u32;
        let mut atomic = 0u32;
        for t in 0..trials {
            let d = demo::build(1, 1, 1).expect("demo");
            let ops1 = vec![WriteOp::Update {
                table: "CUSTOMER".into(),
                set: vec![("LAST_NAME".into(), SqlValue::Str(format!("t{t}")))],
                cond: vec![("CID".into(), SqlValue::Int(1))],
                expect_rows: 1,
            }];
            let ops2 = vec![WriteOp::Update {
                table: "CREDIT_CARD".into(),
                set: vec![("CC_BRAND".into(), SqlValue::Str(format!("b{t}")))],
                cond: vec![("CCID".into(), SqlValue::Int(1))],
                expect_rows: 1,
            }];
            let (outcome, _) = TwoPhaseCoordinator::new(vec![
                (d.db1.clone(), ops1),
                (d.db2.clone(), ops2),
            ])
            .run_with_crash(crash);
            let name_now = d
                .db1
                .select("CUSTOMER", &vec![("CID".into(), SqlValue::Int(1))])
                .expect("sel")[0][2]
                .lexical();
            let brand_now = d
                .db2
                .select("CREDIT_CARD", &vec![("CCID".into(), SqlValue::Int(1))])
                .expect("sel")[0][3]
                .lexical();
            let applied1 = name_now == format!("t{t}");
            let applied2 = brand_now == format!("b{t}");
            match outcome {
                TxOutcome::Committed => {
                    committed += 1;
                    atomic += (applied1 && applied2) as u32;
                }
                TxOutcome::Aborted(_) => {
                    aborted += 1;
                    atomic += (!applied1 && !applied2) as u32;
                }
            }
        }
        rows.push(vec![
            name.to_string(),
            format!("{committed}"),
            format!("{aborted}"),
            format!("{atomic}/{trials}"),
        ]);
    }
    r.table(
        "E9",
        "E9  XA two-phase commit with crash injection",
        &["crash point", "committed", "aborted", "atomic"],
        &rows,
    );
}

/// E10 (Fig. C): user-defined delete via XQSE wrapper vs direct
/// default delete, vs table size.
fn e10_udelete(full: bool, reps: usize, r: &Reporter) {
    let sizes: &[usize] = if full { &[100, 1000, 5000] } else { &[100, 500] };
    let mut rows = Vec::new();
    for &n in sizes {
        // Wrapped path: XQSE lookup + default delete.
        let wrapped = median_secs(reps, || {
            let d = demo::build(n, 0, 0).expect("demo");
            d.space
                .xqse()
                .load(
                    r#"
declare namespace uc1 = "urn:uc1";
declare namespace cus = "ld:db1/CUSTOMER";
declare procedure uc1:deleteByCID($cid as xs:string) as empty-sequence()
{
  declare $cust := cus:getByCID($cid);
  if (fn:not(fn:empty($cust))) then cus:deleteCUSTOMER($cust);
};
"#,
                )
                .expect("load");
            let mut env = xqeval::Env::new();
            d.space
                .xqse()
                .call_procedure(
                    &QName::with_ns("urn:uc1", "deleteByCID"),
                    vec![Sequence::one(Item::string((n / 2).to_string()))],
                    &mut env,
                )
                .expect("call");
        });
        // Direct path: call the generated delete procedure with a key
        // element.
        let direct = median_secs(reps, || {
            let d = demo::build(n, 0, 0).expect("demo");
            let key = xmlparse::parse(&format!(
                "<CUSTOMER><CID>{}</CID></CUSTOMER>",
                n / 2
            ))
            .expect("xml");
            let mut env = xqeval::Env::new();
            d.space
                .xqse()
                .call_procedure(
                    &QName::with_ns("ld:db1/CUSTOMER", "deleteCUSTOMER"),
                    vec![Sequence::one(Item::Node(key.children()[0].clone()))],
                    &mut env,
                )
                .expect("call");
        });
        rows.push(vec![
            n.to_string(),
            format!("{:.2}", wrapped * 1e3),
            format!("{:.2}", direct * 1e3),
            format!("{:.2}", wrapped / direct),
        ]);
    }
    r.table(
        "E10",
        "E10 user-defined delete (use case 1): XQSE wrapper vs direct C/U/D \
         (times include fixture build)",
        &["customers", "wrapped_ms", "direct_ms", "wrapped/direct"],
        &rows,
    );
}
/// E13: prepared-plan reuse — parse + prolog-load a program once and
/// re-execute the plan many times, vs. the pre-plan-cache behaviour
/// of re-parsing the program text on every call (the `--no-batch` /
/// `XQSE_DISABLE_BATCH=1` baseline).
fn e13_prepared(full: bool, reps: usize, r: &Reporter) {
    use std::rc::Rc;
    use xqeval::{Engine, Env};

    // A program whose cost is dominated by compilation: a multi-
    // function prolog with a cheap body, the shape a deployed data
    // service evaluates thousands of times with different contexts.
    let src = "\
        declare function local:band($n as xs:integer) as xs:string {\n\
          if ($n ge 720) then 'prime' else if ($n ge 640) then 'good'\n\
          else if ($n ge 560) then 'fair' else 'subprime'\n\
        };\n\
        declare function local:blend($a as xs:integer, $b as xs:integer) as xs:integer {\n\
          ($a * 3 + $b * 2) idiv 5\n\
        };\n\
        declare function local:score($seed as xs:integer) as xs:integer {\n\
          local:blend(520 + ($seed * 37) mod 300, 520 + ($seed * 91) mod 300)\n\
        };\n\
        declare function local:tier($seed as xs:integer) as xs:string {\n\
          local:band(local:score($seed))\n\
        };\n\
        declare function local:limit($seed as xs:integer) as xs:integer {\n\
          if (local:tier($seed) eq 'prime') then 50000\n\
          else if (local:tier($seed) eq 'good') then 20000\n\
          else if (local:tier($seed) eq 'fair') then 8000 else 1000\n\
        };\n\
        declare function local:fee($seed as xs:integer) as xs:decimal {\n\
          local:limit($seed) * 0.0025 + (if ($seed mod 2 eq 0) then 5.00 else 7.50)\n\
        };\n\
        declare function local:summary($seed as xs:integer) as xs:string {\n\
          concat(local:tier($seed), '/', string(local:limit($seed)))\n\
        };\n\
        local:band(688)";
    let iters: &[usize] = if full { &[100, 1000] } else { &[50, 200] };
    let mut rows = Vec::new();
    for &n in iters {
        let engine = Rc::new(Engine::new());
        let expect = engine.eval_query(src).expect("e13 query");
        let prepared = median_secs(reps, || {
            let engine = Rc::new(Engine::new());
            let pq = engine.prepare(src).expect("prepare");
            for _ in 0..n {
                let mut env = Env::new();
                let got = engine.execute_prepared_in(&pq, &mut env).expect("exec");
                assert_eq!(got.len(), expect.len());
            }
        });
        let reparse = median_secs(reps, || {
            let engine = Rc::new(Engine::new());
            engine.set_batch(false); // kill-switch: plan cache off, parse per call
            for _ in 0..n {
                let got = engine.eval_query(src).expect("eval");
                assert_eq!(got.len(), expect.len());
            }
        });
        rows.push(vec![
            n.to_string(),
            format!("{:.3}", prepared * 1e3),
            format!("{:.3}", reparse * 1e3),
            format!("{:.1}x", reparse / prepared),
        ]);
    }
    r.table(
        "E13",
        "E13 prepared-plan reuse: prepare once + execute N times vs re-parse per call",
        &["iters", "prepared_ms", "reparse_ms", "reparse/prepared"],
        &rows,
    );
}
