//! The abstract syntax tree shared by the evaluator and the statement
//! engine.
//!
//! The AST mirrors the paper's central design decision: **statements
//! and expressions are disjoint types**. An [`Expr`] can never contain
//! a [`Statement`]; the only bridges are (a) a [`ValueStatement`],
//! which may *execute* a procedure and hand its value back to
//! statement-land, and (b) procedure calls in expressions, which the
//! engine permits only for `readonly` procedures (checked at runtime,
//! per §III.A of the paper).

use xdm::atomic::AtomicValue;
use xdm::qname::QName;
use xdm::types::SequenceType;

// ---------------------------------------------------------------------
// Expressions (XQuery 1.0 + XQuery Update Facility)
// ---------------------------------------------------------------------

/// Binary operators with plain value semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `idiv`
    IDiv,
    /// `mod`
    Mod,
}

/// General comparison operators (`=`, `!=`, …): existential over
/// atomized sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneralComp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Value comparison operators (`eq`, `ne`, …): singleton-to-singleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueComp {
    /// `eq`
    Eq,
    /// `ne`
    Ne,
    /// `lt`
    Lt,
    /// `le`
    Le,
    /// `gt`
    Gt,
    /// `ge`
    Ge,
}

/// Node comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeComp {
    /// `is` — node identity.
    Is,
    /// `<<` — precedes in document order.
    Precedes,
    /// `>>` — follows in document order.
    Follows,
}

/// Set operators over node sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// `union` / `|`
    Union,
    /// `intersect`
    Intersect,
    /// `except`
    Except,
}

/// XPath axes supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `child::` (default)
    Child,
    /// `attribute::` / `@`
    Attribute,
    /// `descendant::`
    Descendant,
    /// `descendant-or-self::` (the `//` abbreviation)
    DescendantOrSelf,
    /// `self::` / `.`
    SelfAxis,
    /// `parent::` / `..`
    Parent,
    /// `ancestor::`
    Ancestor,
    /// `ancestor-or-self::`
    AncestorOrSelf,
    /// `following-sibling::`
    FollowingSibling,
    /// `preceding-sibling::`
    PrecedingSibling,
}

/// A node test within a path step or a catch clause.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeTest {
    /// A (resolved) QName test.
    Name(QName),
    /// `*`
    AnyName,
    /// `*:local` — any namespace, fixed local name.
    AnyNs(String),
    /// `prefix:*` — fixed (resolved) namespace, any local name.
    NsWildcard(Option<String>),
    /// A kind test: `node()`, `text()`, `element()`, `element(N)`, …
    Kind(KindTest),
}

impl NodeTest {
    /// Does the test match an expanded name? (Kind tests are resolved
    /// by the evaluator against node kinds, not here.)
    pub fn matches_name(&self, name: Option<&QName>) -> bool {
        match self {
            NodeTest::Name(q) => name == Some(q),
            NodeTest::AnyName => true,
            NodeTest::AnyNs(local) => name.is_some_and(|n| &n.local == local),
            NodeTest::NsWildcard(ns) => {
                name.is_some_and(|n| n.ns.as_deref() == ns.as_deref())
            }
            NodeTest::Kind(_) => true,
        }
    }
}

/// Node kind tests.
#[derive(Debug, Clone, PartialEq)]
pub enum KindTest {
    /// `node()`
    AnyKind,
    /// `document-node()`
    Document,
    /// `element()` / `element(Name)`
    Element(Option<QName>),
    /// `attribute()` / `attribute(Name)`
    Attribute(Option<QName>),
    /// `text()`
    Text,
    /// `comment()`
    Comment,
    /// `processing-instruction()` / `processing-instruction(Target)`
    Pi(Option<String>),
}

/// One step of a path expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The axis to walk.
    pub axis: Axis,
    /// The node test to apply.
    pub test: NodeTest,
    /// Positional/boolean predicates.
    pub predicates: Vec<Expr>,
}

/// FLWOR clauses, in source order.
#[derive(Debug, Clone, PartialEq)]
pub enum FlworClause {
    /// `for $v at $p in expr`
    For {
        /// Binding variable.
        var: QName,
        /// Optional positional variable.
        pos: Option<QName>,
        /// Binding sequence expression.
        source: Expr,
    },
    /// `let $v as T := expr`
    Let {
        /// Binding variable.
        var: QName,
        /// Optional declared type.
        ty: Option<SequenceType>,
        /// Bound expression.
        value: Expr,
    },
    /// `where expr`
    Where(Expr),
    /// `order by specs`
    OrderBy(Vec<OrderSpec>),
}

/// One `order by` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSpec {
    /// The key expression.
    pub key: Expr,
    /// True for `descending`.
    pub descending: bool,
    /// True for `empty least` (default); false for `empty greatest`.
    pub empty_least: bool,
}

/// Quantifier kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    /// `some`
    Some,
    /// `every`
    Every,
}

/// Content of a direct element constructor.
#[derive(Debug, Clone, PartialEq)]
pub enum DirectContent {
    /// Literal character data.
    Text(String),
    /// An embedded `{ expr }`.
    Expr(Expr),
    /// A nested direct element.
    Element(Box<DirectElement>),
    /// A comment constructor `<!--…-->`.
    Comment(String),
    /// A processing instruction `<?t …?>`.
    Pi(String, String),
}

/// Attribute value content: literal runs and embedded expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrContent {
    /// Literal text.
    Text(String),
    /// `{ expr }`.
    Expr(Expr),
}

/// A direct element constructor `<name attr="…">…</name>`.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectElement {
    /// Resolved element name.
    pub name: QName,
    /// Attributes with possibly-templated values.
    pub attributes: Vec<(QName, Vec<AttrContent>)>,
    /// Namespace declarations written on the element.
    pub ns_decls: Vec<(String, String)>,
    /// Child content.
    pub content: Vec<DirectContent>,
}

/// A name that is either fixed or computed (computed constructors).
#[derive(Debug, Clone, PartialEq)]
pub enum NameExpr {
    /// A literal QName.
    Fixed(QName),
    /// A `{ expr }` computing the name.
    Computed(Box<Expr>),
}

/// Insert position for XUF `insert`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertPos {
    /// `into` (implementation may choose; we append last).
    Into,
    /// `as first into`.
    FirstInto,
    /// `as last into`.
    LastInto,
    /// `before`.
    Before,
    /// `after`.
    After,
}

/// A `typeswitch` case.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeswitchCase {
    /// Optional case variable.
    pub var: Option<QName>,
    /// The sequence type to match (None for `default`).
    pub ty: Option<SequenceType>,
    /// The branch body.
    pub body: Expr,
}

/// The expression grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal atomic value.
    Literal(AtomicValue),
    /// `$name`
    VarRef(QName),
    /// `.`
    ContextItem,
    /// The comma operator (sequence construction).
    Comma(Vec<Expr>),
    /// `a to b`
    Range(Box<Expr>, Box<Expr>),
    /// Arithmetic.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Unary `+`/`-` (true = minus).
    Unary(bool, Box<Expr>),
    /// `and`
    And(Box<Expr>, Box<Expr>),
    /// `or`
    Or(Box<Expr>, Box<Expr>),
    /// General comparison.
    General(GeneralComp, Box<Expr>, Box<Expr>),
    /// Value comparison.
    Value(ValueComp, Box<Expr>, Box<Expr>),
    /// Node comparison.
    Node(NodeComp, Box<Expr>, Box<Expr>),
    /// Union/intersect/except.
    Set(SetOp, Box<Expr>, Box<Expr>),
    /// `if (c) then t else e`
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// FLWOR.
    Flwor {
        /// for/let/where/order-by clauses in order.
        clauses: Vec<FlworClause>,
        /// The return expression.
        ret: Box<Expr>,
    },
    /// `some/every $v in e satisfies p`
    Quantified {
        /// Which quantifier.
        quantifier: Quantifier,
        /// The in-bindings.
        bindings: Vec<(QName, Expr)>,
        /// The test.
        satisfies: Box<Expr>,
    },
    /// `typeswitch (op) case … default …`
    Typeswitch {
        /// The operand.
        operand: Box<Expr>,
        /// The cases; the final entry with `ty == None` is `default`.
        cases: Vec<TypeswitchCase>,
    },
    /// A path: optional root anchor, a start expression, then steps.
    Path {
        /// The origin of the path.
        start: PathStart,
        /// Steps applied left to right.
        steps: Vec<Step>,
    },
    /// Filter expression: `base[pred]…`.
    Filter {
        /// The base expression.
        base: Box<Expr>,
        /// Predicates applied in order.
        predicates: Vec<Expr>,
    },
    /// Dynamic function-ish calls: `name(args…)`. At evaluation this
    /// may resolve to a builtin, a user function, an external source
    /// function, or (in statement context / readonly case) a procedure.
    FunctionCall {
        /// Resolved function name.
        name: QName,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Direct element constructor.
    DirectElement(Box<DirectElement>),
    /// `element N { e }` / `element { ne } { e }`
    ComputedElement(NameExpr, Option<Box<Expr>>),
    /// `attribute N { e }`
    ComputedAttribute(NameExpr, Option<Box<Expr>>),
    /// `text { e }`
    ComputedText(Box<Expr>),
    /// `comment { e }`
    ComputedComment(Box<Expr>),
    /// `processing-instruction N { e }`
    ComputedPi(NameExpr, Option<Box<Expr>>),
    /// `document { e }`
    ComputedDocument(Box<Expr>),
    /// `e instance of T`
    InstanceOf(Box<Expr>, SequenceType),
    /// `e treat as T`
    TreatAs(Box<Expr>, SequenceType),
    /// `e castable as T?`
    CastableAs(Box<Expr>, QName, bool),
    /// `e cast as T?`
    CastAs(Box<Expr>, QName, bool),
    /// XUF `insert node(s) src pos target`.
    Insert {
        /// The nodes to insert.
        source: Box<Expr>,
        /// Position relative to the target.
        pos: InsertPos,
        /// The target node.
        target: Box<Expr>,
    },
    /// XUF `delete node(s) target`.
    Delete(Box<Expr>),
    /// XUF `replace [value of] node target with e`.
    Replace {
        /// True for `replace value of`.
        value_of: bool,
        /// The target node.
        target: Box<Expr>,
        /// The replacement.
        with: Box<Expr>,
    },
    /// XUF `rename node target as name`.
    Rename {
        /// The target node.
        target: Box<Expr>,
        /// The new name expression.
        new_name: Box<Expr>,
    },
    /// XUF `copy $v := e (,…) modify m return r` (transform).
    Transform {
        /// The copy bindings.
        copies: Vec<(QName, Expr)>,
        /// The updating body.
        modify: Box<Expr>,
        /// The result expression.
        ret: Box<Expr>,
    },
}

/// Where a path expression starts.
#[derive(Debug, Clone, PartialEq)]
pub enum PathStart {
    /// A leading `/` — the root of the context node's tree.
    Root,
    /// A leading `//`.
    RootDescendant,
    /// Start from an arbitrary expression (includes the implicit
    /// context-item start of relative paths).
    Expr(Box<Expr>),
}

impl Expr {
    /// Convenience integer literal.
    pub fn int(i: i64) -> Expr {
        Expr::Literal(AtomicValue::Integer(i))
    }

    /// Convenience string literal.
    pub fn str(s: impl Into<String>) -> Expr {
        Expr::Literal(AtomicValue::String(s.into()))
    }

    /// Is this expression *syntactically* an updating expression (XUF
    /// classification, conservative)? Function calls may additionally
    /// be updating if they call an updating function — that refinement
    /// happens at evaluation time.
    pub fn is_syntactically_updating(&self) -> bool {
        matches!(
            self,
            Expr::Insert { .. }
                | Expr::Delete(_)
                | Expr::Replace { .. }
                | Expr::Rename { .. }
        )
    }
}

// ---------------------------------------------------------------------
// XQSE statements (the paper, §III.B / appendix EBNF)
// ---------------------------------------------------------------------

/// A block variable declaration: `declare $v as T := vs`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockVarDecl {
    /// The variable name.
    pub var: QName,
    /// Optional declared type (implicitly `item()*`).
    pub ty: Option<SequenceType>,
    /// Optional initializing statement.
    pub init: Option<ValueStatement>,
}

/// A block: declarations then statements, executed in order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Leading block variable declarations.
    pub decls: Vec<BlockVarDecl>,
    /// The statements.
    pub statements: Vec<Statement>,
}

/// A value statement: computes an XDM value for `set`, `return value`,
/// block initializers, and `iterate … over`.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueStatement {
    /// A non-updating ExprSingle (which may turn out to be a readonly
    /// or side-effecting procedure call — the engine decides).
    Expr(Expr),
    /// An in-place `procedure { … }` block.
    ProcedureBlock(Block),
}

/// A catch clause: `catch (NameTest into $code, $msg, $diag) { … }`.
#[derive(Debug, Clone, PartialEq)]
pub struct CatchClause {
    /// The error-code name test (`*`, `*:*`, `prefix:*`, `*:local`, QName).
    pub test: NodeTest,
    /// Up to three `into` variables: code, message, diagnostics.
    pub into_vars: Vec<QName>,
    /// The handler body.
    pub body: Block,
}

/// The XQSE statement grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A nested block `{ … }`.
    Block(Block),
    /// `set $v := vs`
    Set {
        /// Target variable (must be a block variable).
        var: QName,
        /// The value statement.
        value: ValueStatement,
    },
    /// `return value vs`
    Return(ValueStatement),
    /// `if (e) then s else s`
    If {
        /// The condition (non-updating).
        cond: Expr,
        /// The then-statement.
        then: Box<Statement>,
        /// The optional else-statement.
        els: Option<Box<Statement>>,
    },
    /// `while (e) { … }`
    While {
        /// The test expression.
        cond: Expr,
        /// The loop body.
        body: Block,
    },
    /// `iterate $v at $p over vs { … }`
    Iterate {
        /// The iteration variable.
        var: QName,
        /// The optional positional variable.
        pos: Option<QName>,
        /// The binding-sequence value statement.
        over: ValueStatement,
        /// The loop body.
        body: Block,
    },
    /// `try { … } catch (…) { … }+`
    Try {
        /// The protected body.
        body: Block,
        /// The catch clauses, tried in order.
        catches: Vec<CatchClause>,
    },
    /// `continue()`
    Continue,
    /// `break()`
    Break,
    /// An update statement: an updating expression whose pending
    /// update list is applied at statement end (snapshot semantics).
    Update(Expr),
    /// An expression evaluated for effect (procedure calls per the
    /// EBNF's `ProcedureCall` statement, and effectful function calls
    /// like `fn:trace` in the paper's examples). The value is
    /// discarded.
    ExprStatement(Expr),
    /// An in-place `procedure { … }` used as a statement.
    ProcedureBlock(Block),
}

// ---------------------------------------------------------------------
// Prolog and module
// ---------------------------------------------------------------------

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: QName,
    /// Optional declared type.
    pub ty: Option<SequenceType>,
}

/// `declare function …`.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// The function name (must be namespaced per XQuery; we relax this
    /// for test convenience).
    pub name: QName,
    /// Parameters.
    pub params: Vec<Param>,
    /// Declared return type.
    pub return_type: Option<SequenceType>,
    /// The body, or `None` for `external`.
    pub body: Option<Expr>,
    /// `declare updating function` (XUF).
    pub updating: bool,
}

/// `declare [readonly] procedure …` — the XQSE addition.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcedureDecl {
    /// The procedure name.
    pub name: QName,
    /// Parameters.
    pub params: Vec<Param>,
    /// Declared return type.
    pub return_type: Option<SequenceType>,
    /// The body block, or `None` for `external`.
    pub body: Option<Block>,
    /// `readonly` — an "XQSE function": no side effects, callable from
    /// expressions.
    pub readonly: bool,
}

/// `declare variable $v as T := e` (or `external`).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// The variable name.
    pub name: QName,
    /// Optional declared type.
    pub ty: Option<SequenceType>,
    /// The initializer, or `None` for `external`.
    pub value: Option<Expr>,
}

/// The prolog.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Prolog {
    /// `declare namespace p = "uri"`.
    pub namespaces: Vec<(String, String)>,
    /// `declare default element namespace "uri"`.
    pub default_element_ns: Option<String>,
    /// `declare default function namespace "uri"`.
    pub default_function_ns: Option<String>,
    /// `declare boundary-space preserve|strip` (default strip).
    pub boundary_space_preserve: bool,
    /// Variable declarations.
    pub variables: Vec<VarDecl>,
    /// Function declarations.
    pub functions: Vec<FunctionDecl>,
    /// Procedure declarations (XQSE).
    pub procedures: Vec<ProcedureDecl>,
    /// Option declarations.
    pub options: Vec<(QName, String)>,
}

/// The query body: expression, block, or absent (library module).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryBody {
    /// A plain XQuery expression body.
    Expr(Expr),
    /// An XQSE block body — "the entry point into the XQSE world".
    Block(Block),
    /// No body (a library of declarations).
    None,
}

impl QueryBody {
    /// True if the body is a block.
    pub fn is_block(&self) -> bool {
        matches!(self, QueryBody::Block(_))
    }
}

/// A parsed module: prolog + body.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// The prolog.
    pub prolog: Prolog,
    /// The body.
    pub body: QueryBody,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_test_name_matching() {
        let q = QName::with_ns("urn:x", "a");
        assert!(NodeTest::Name(q.clone()).matches_name(Some(&q)));
        assert!(!NodeTest::Name(q.clone()).matches_name(Some(&QName::new("a"))));
        assert!(NodeTest::AnyName.matches_name(Some(&q)));
        assert!(NodeTest::AnyNs("a".into()).matches_name(Some(&q)));
        assert!(!NodeTest::AnyNs("b".into()).matches_name(Some(&q)));
        assert!(NodeTest::NsWildcard(Some("urn:x".into())).matches_name(Some(&q)));
        assert!(!NodeTest::NsWildcard(None).matches_name(Some(&q)));
        assert!(NodeTest::NsWildcard(None).matches_name(Some(&QName::new("a"))));
    }

    #[test]
    fn syntactic_updating_classification() {
        let del = Expr::Delete(Box::new(Expr::ContextItem));
        assert!(del.is_syntactically_updating());
        assert!(!Expr::int(1).is_syntactically_updating());
    }
}
