//! The tokenizer.
//!
//! XQuery has no reserved words — every keyword is also a valid NCName
//! — so the lexer emits *names* and the parser decides contextually
//! whether `for`, `while`, `iterate`, … are keywords. The lexer also
//! exposes raw character-level access used by the parser for direct
//! element constructors, whose content is not token-structured.
//!
//! Comments `(: … :)` nest and are skipped as whitespace.

use xdm::error::{ErrorCode, XdmError, XdmResult};

/// A token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// A name, possibly prefixed: (`prefix?`, `local`). Keywords
    /// arrive as unprefixed names.
    Name(Option<String>, String),
    /// `$name` — (`prefix?`, `local`).
    Var(Option<String>, String),
    /// `prefix:*`
    PrefixWildcard(String),
    /// `*:local`
    LocalWildcard(String),
    /// `*:*`
    FullWildcard,
    /// A string literal (escapes already decoded).
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A decimal literal (raw text; exactness preserved).
    Dec(String),
    /// A double literal.
    Dbl(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:=`
    ColonEq,
    /// `::`
    ColonColon,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    LtLt,
    /// `>>`
    GtGt,
    /// `/`
    Slash,
    /// `//`
    SlashSlash,
    /// `@`
    At,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `|`
    Pipe,
    /// `?`
    Question,
    /// End of input.
    Eof,
}

impl Tok {
    /// Is this token the given unprefixed keyword/name?
    pub fn is_name(&self, kw: &str) -> bool {
        matches!(self, Tok::Name(None, n) if n == kw)
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The kind.
    pub tok: Tok,
    /// Start byte offset.
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

/// The character-level scanner.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

fn is_name_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_name_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' || c >= 0x80
}

impl<'a> Lexer<'a> {
    /// Create a lexer over a source string.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src, bytes: src.as_bytes(), pos: 0 }
    }

    /// The full source (used for error reporting and raw slices).
    pub fn source(&self) -> &'a str {
        self.src
    }

    /// Current byte position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Reposition the scanner (used when the parser switches between
    /// token mode and raw constructor mode).
    pub fn set_pos(&mut self, pos: usize) {
        self.pos = pos;
    }

    /// Peek the current raw byte.
    pub fn peek_byte(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Raw remainder of the input.
    pub fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    /// Advance `n` raw bytes.
    pub fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn err(&self, msg: impl Into<String>) -> XdmError {
        let (line, col) = self.line_col(self.pos);
        XdmError::new(
            ErrorCode::XPST0003,
            format!("lex error at {line}:{col}: {}", msg.into()),
        )
    }

    /// 1-based line/column of a byte offset.
    pub fn line_col(&self, pos: usize) -> (usize, usize) {
        let upto = &self.src[..pos.min(self.src.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto.rfind('\n').map(|i| pos - i).unwrap_or(pos + 1);
        (line, col)
    }

    /// Skip whitespace and (nested) comments.
    pub fn skip_trivia(&mut self) -> XdmResult<()> {
        loop {
            match self.peek_byte() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => self.pos += 1,
                Some(b'(') if self.bytes.get(self.pos + 1) == Some(&b':') => {
                    self.skip_comment()?;
                }
                _ => return Ok(()),
            }
        }
    }

    fn skip_comment(&mut self) -> XdmResult<()> {
        debug_assert!(self.src[self.pos..].starts_with("(:"));
        let start = self.pos;
        self.pos += 2;
        let mut depth = 1;
        while depth > 0 {
            if self.pos >= self.bytes.len() {
                self.pos = start;
                return Err(self.err("unterminated comment"));
            }
            if self.src[self.pos..].starts_with("(:") {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos..].starts_with(":)") {
                depth -= 1;
                self.pos += 2;
            } else {
                // Comments may contain arbitrary (multibyte) text:
                // advance by whole characters, not bytes.
                let c = self.src[self.pos..].chars().next().expect("in bounds");
                self.pos += c.len_utf8();
            }
        }
        Ok(())
    }

    fn read_ncname(&mut self) -> &'a str {
        let start = self.pos;
        while let Some(b) = self.peek_byte() {
            if is_name_char(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
        &self.src[start..self.pos]
    }

    fn read_string(&mut self, quote: u8) -> XdmResult<String> {
        debug_assert_eq!(self.peek_byte(), Some(quote));
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek_byte() {
                None => return Err(self.err("unterminated string literal")),
                Some(b) if b == quote => {
                    // Doubled quote is an escape.
                    if self.bytes.get(self.pos + 1) == Some(&quote) {
                        out.push(quote as char);
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok(out);
                    }
                }
                Some(b'&') => {
                    let semi = self.src[self.pos..]
                        .find(';')
                        .ok_or_else(|| self.err("unterminated entity reference"))?;
                    let body = &self.src[self.pos + 1..self.pos + semi];
                    let c = match body {
                        "lt" => '<',
                        "gt" => '>',
                        "amp" => '&',
                        "quot" => '"',
                        "apos" => '\'',
                        _ if body.starts_with("#x") || body.starts_with("#X") => {
                            u32::from_str_radix(&body[2..], 16)
                                .ok()
                                .and_then(char::from_u32)
                                .ok_or_else(|| self.err("bad character reference"))?
                        }
                        _ if body.starts_with('#') => body[1..]
                            .parse::<u32>()
                            .ok()
                            .and_then(char::from_u32)
                            .ok_or_else(|| self.err("bad character reference"))?,
                        _ => return Err(self.err(format!("unknown entity &{body};"))),
                    };
                    out.push(c);
                    self.pos += semi + 1;
                }
                Some(_) => {
                    let c = self.src[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn read_number(&mut self) -> XdmResult<Tok> {
        let start = self.pos;
        while matches!(self.peek_byte(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_decimal = false;
        if self.peek_byte() == Some(b'.') {
            // Don't swallow `..` or `1.e` confusion: a dot followed by
            // a digit (or end/non-name) is a decimal point; `1..2`
            // must lex as 1 .. 2.
            if self.bytes.get(self.pos + 1) != Some(&b'.') {
                is_decimal = true;
                self.pos += 1;
                while matches!(self.peek_byte(), Some(b) if b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let mut is_double = false;
        if matches!(self.peek_byte(), Some(b'e' | b'E')) {
            let mut look = self.pos + 1;
            if matches!(self.bytes.get(look), Some(b'+' | b'-')) {
                look += 1;
            }
            if matches!(self.bytes.get(look), Some(b) if b.is_ascii_digit()) {
                is_double = true;
                self.pos = look;
                while matches!(self.peek_byte(), Some(b) if b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.src[start..self.pos];
        if is_double {
            text.parse::<f64>()
                .map(Tok::Dbl)
                .map_err(|_| self.err(format!("bad double literal {text}")))
        } else if is_decimal {
            Ok(Tok::Dec(text.to_string()))
        } else {
            text.parse::<i64>()
                .map(Tok::Int)
                .map_err(|_| self.err(format!("integer literal out of range: {text}")))
        }
    }

    /// Produce the next token.
    pub fn next_token(&mut self) -> XdmResult<Token> {
        self.skip_trivia()?;
        let start = self.pos;
        let Some(b) = self.peek_byte() else {
            return Ok(Token { tok: Tok::Eof, start, end: start });
        };
        let tok = match b {
            b'"' | b'\'' => Tok::Str(self.read_string(b)?),
            b'0'..=b'9' => self.read_number()?,
            b'.' => {
                if matches!(self.bytes.get(self.pos + 1), Some(d) if d.is_ascii_digit()) {
                    self.read_number()?
                } else if self.bytes.get(self.pos + 1) == Some(&b'.') {
                    self.pos += 2;
                    Tok::DotDot
                } else {
                    self.pos += 1;
                    Tok::Dot
                }
            }
            b'$' => {
                self.pos += 1;
                if !matches!(self.peek_byte(), Some(c) if is_name_start(c)) {
                    return Err(self.err("expected variable name after '$'"));
                }
                let first = self.read_ncname().to_string();
                if self.peek_byte() == Some(b':')
                    && matches!(self.bytes.get(self.pos + 1), Some(&c) if is_name_start(c))
                {
                    self.pos += 1;
                    let local = self.read_ncname().to_string();
                    Tok::Var(Some(first), local)
                } else {
                    Tok::Var(None, first)
                }
            }
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'[' => {
                self.pos += 1;
                Tok::LBracket
            }
            b']' => {
                self.pos += 1;
                Tok::RBracket
            }
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b';' => {
                self.pos += 1;
                Tok::Semi
            }
            b'@' => {
                self.pos += 1;
                Tok::At
            }
            b'|' => {
                self.pos += 1;
                Tok::Pipe
            }
            b'+' => {
                self.pos += 1;
                Tok::Plus
            }
            b'-' => {
                self.pos += 1;
                Tok::Minus
            }
            b'?' => {
                self.pos += 1;
                Tok::Question
            }
            b'=' => {
                self.pos += 1;
                Tok::Eq
            }
            b'!' => {
                if self.bytes.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Ne
                } else {
                    return Err(self.err("unexpected '!'"));
                }
            }
            b'<' => match self.bytes.get(self.pos + 1) {
                Some(b'=') => {
                    self.pos += 2;
                    Tok::Le
                }
                Some(b'<') => {
                    self.pos += 2;
                    Tok::LtLt
                }
                _ => {
                    self.pos += 1;
                    Tok::Lt
                }
            },
            b'>' => match self.bytes.get(self.pos + 1) {
                Some(b'=') => {
                    self.pos += 2;
                    Tok::Ge
                }
                Some(b'>') => {
                    self.pos += 2;
                    Tok::GtGt
                }
                _ => {
                    self.pos += 1;
                    Tok::Gt
                }
            },
            b'/' => {
                if self.bytes.get(self.pos + 1) == Some(&b'/') {
                    self.pos += 2;
                    Tok::SlashSlash
                } else {
                    self.pos += 1;
                    Tok::Slash
                }
            }
            b':' => {
                if self.bytes.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::ColonEq
                } else if self.bytes.get(self.pos + 1) == Some(&b':') {
                    self.pos += 2;
                    Tok::ColonColon
                } else {
                    return Err(self.err("unexpected ':'"));
                }
            }
            b'*' => {
                // `*:name`, `*:*`, or plain `*`.
                if self.bytes.get(self.pos + 1) == Some(&b':') {
                    match self.bytes.get(self.pos + 2) {
                        Some(&b'*') => {
                            self.pos += 3;
                            Tok::FullWildcard
                        }
                        Some(&c) if is_name_start(c) => {
                            self.pos += 2;
                            let local = self.read_ncname().to_string();
                            Tok::LocalWildcard(local)
                        }
                        _ => {
                            self.pos += 1;
                            Tok::Star
                        }
                    }
                } else {
                    self.pos += 1;
                    Tok::Star
                }
            }
            c if is_name_start(c) => {
                let first = self.read_ncname().to_string();
                if self.peek_byte() == Some(b':') {
                    match self.bytes.get(self.pos + 1) {
                        Some(&c2) if is_name_start(c2) => {
                            self.pos += 1;
                            let local = self.read_ncname().to_string();
                            Tok::Name(Some(first), local)
                        }
                        Some(&b'*') => {
                            self.pos += 2;
                            Tok::PrefixWildcard(first)
                        }
                        _ => Tok::Name(None, first),
                    }
                } else {
                    Tok::Name(None, first)
                }
            }
            other => {
                return Err(self.err(format!("unexpected character {:?}", other as char)))
            }
        };
        Ok(Token { tok, start, end: self.pos })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        let mut lx = Lexer::new(src);
        let mut out = Vec::new();
        loop {
            let t = lx.next_token().unwrap();
            if t.tok == Tok::Eof {
                return out;
            }
            out.push(t.tok);
        }
    }

    #[test]
    fn names_and_qnames() {
        assert_eq!(
            toks("for $x in cus:CUSTOMER"),
            vec![
                Tok::Name(None, "for".into()),
                Tok::Var(None, "x".into()),
                Tok::Name(None, "in".into()),
                Tok::Name(Some("cus".into()), "CUSTOMER".into()),
            ]
        );
    }

    #[test]
    fn axis_vs_qname() {
        assert_eq!(
            toks("child::a"),
            vec![
                Tok::Name(None, "child".into()),
                Tok::ColonColon,
                Tok::Name(None, "a".into()),
            ]
        );
    }

    #[test]
    fn wildcards() {
        assert_eq!(toks("*"), vec![Tok::Star]);
        assert_eq!(toks("p:*"), vec![Tok::PrefixWildcard("p".into())]);
        assert_eq!(toks("*:x"), vec![Tok::LocalWildcard("x".into())]);
        assert_eq!(toks("*:*"), vec![Tok::FullWildcard]);
        assert_eq!(toks("2 * 3"), vec![Tok::Int(2), Tok::Star, Tok::Int(3)]);
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42)]);
        assert_eq!(toks("3.14"), vec![Tok::Dec("3.14".into())]);
        assert_eq!(toks(".5"), vec![Tok::Dec(".5".into())]);
        assert_eq!(toks("1e3"), vec![Tok::Dbl(1000.0)]);
        assert_eq!(toks("1.5E-1"), vec![Tok::Dbl(0.15)]);
        // `1 to 2` range over ints and the `..` trap.
        assert_eq!(toks("1..2"), vec![Tok::Int(1), Tok::DotDot, Tok::Int(2)]);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("\"a\"\"b\""), vec![Tok::Str("a\"b".into())]);
        assert_eq!(toks("'it''s'"), vec![Tok::Str("it's".into())]);
        assert_eq!(toks("\"x&amp;y\""), vec![Tok::Str("x&y".into())]);
        assert_eq!(toks("\"&#65;\""), vec![Tok::Str("A".into())]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a := b << c >> d <= e >= f != g"),
            vec![
                Tok::Name(None, "a".into()),
                Tok::ColonEq,
                Tok::Name(None, "b".into()),
                Tok::LtLt,
                Tok::Name(None, "c".into()),
                Tok::GtGt,
                Tok::Name(None, "d".into()),
                Tok::Le,
                Tok::Name(None, "e".into()),
                Tok::Ge,
                Tok::Name(None, "f".into()),
                Tok::Ne,
                Tok::Name(None, "g".into()),
            ]
        );
    }

    #[test]
    fn comments_nest_and_skip() {
        assert_eq!(
            toks("1 (: outer (: inner :) still :) 2"),
            vec![Tok::Int(1), Tok::Int(2)]
        );
        let mut lx = Lexer::new("(: unterminated");
        assert!(lx.next_token().is_err());
    }

    #[test]
    fn dots_and_slashes() {
        assert_eq!(toks(". .. / //"), vec![Tok::Dot, Tok::DotDot, Tok::Slash, Tok::SlashSlash]);
    }

    #[test]
    fn prefixed_variables() {
        assert_eq!(
            toks("$ns1:profile"),
            vec![Tok::Var(Some("ns1".into()), "profile".into())]
        );
    }

    #[test]
    fn line_col_reporting() {
        let lx = Lexer::new("ab\ncd\nef");
        assert_eq!(lx.line_col(0), (1, 1));
        assert_eq!(lx.line_col(4), (2, 2));
        assert_eq!(lx.line_col(6), (3, 1));
    }
}

#[cfg(test)]
mod utf8_tests {
    use super::*;

    #[test]
    fn multibyte_text_in_comments() {
        let mut lx = Lexer::new("(: §III.B.7 — Hëllo :) 42");
        let t = lx.next_token().unwrap();
        assert_eq!(t.tok, Tok::Int(42));
    }
}
