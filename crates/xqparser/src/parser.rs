//! Recursive-descent parser for XQuery 1.0 (subset) + XUF + XQSE.
//!
//! The parser owns a [`Lexer`] plus a small token peek-buffer, and a
//! namespace-resolution stack so that QNames in the AST are already
//! *expanded* names. Direct element constructors are parsed in raw
//! character mode (their content is not token-shaped); embedded `{…}`
//! expressions switch back to token mode.

#[path = "parser_statements.rs"]
mod statements;

use std::collections::{HashMap, VecDeque};

use xdm::atomic::{AtomicType, AtomicValue};
use xdm::decimal::Decimal;
use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::qname::{QName, FN_NS, XML_NS, XS_NS};
use xdm::types::{ItemType, Occurrence, SequenceType};

use crate::ast::*;
use crate::lexer::{Lexer, Tok, Token};

/// The `local:` namespace for main-module local functions.
pub const LOCAL_NS: &str = "http://www.w3.org/2005/xquery-local-functions";

/// Parse a complete module (prolog + query body).
pub fn parse_module(src: &str) -> XdmResult<Module> {
    Parser::new(src, &[]).parse_module()
}

/// Parse a standalone expression with optional extra namespace
/// bindings (prefix → URI).
pub fn parse_expr(src: &str, extra_ns: &[(&str, &str)]) -> XdmResult<Expr> {
    let mut p = Parser::new(src, extra_ns);
    let e = p.parse_expr_top()?;
    p.expect_eof()?;
    Ok(e)
}

pub(crate) struct Parser<'a> {
    lx: Lexer<'a>,
    buf: VecDeque<Token>,
    ns: Vec<HashMap<String, String>>,
    pub(crate) default_element_ns: Option<String>,
    pub(crate) default_function_ns: String,
    pub(crate) boundary_space_preserve: bool,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(src: &'a str, extra_ns: &[(&str, &str)]) -> Parser<'a> {
        let mut base = HashMap::new();
        base.insert("xs".to_string(), XS_NS.to_string());
        base.insert("fn".to_string(), FN_NS.to_string());
        base.insert("xml".to_string(), XML_NS.to_string());
        base.insert("local".to_string(), LOCAL_NS.to_string());
        base.insert("err".to_string(), xdm::error::ERR_NS.to_string());
        for (p, u) in extra_ns {
            base.insert(p.to_string(), u.to_string());
        }
        Parser {
            lx: Lexer::new(src),
            buf: VecDeque::new(),
            ns: vec![base],
            default_element_ns: None,
            default_function_ns: FN_NS.to_string(),
            boundary_space_preserve: false,
        }
    }

    // -- token plumbing -------------------------------------------------

    fn fill(&mut self, n: usize) -> XdmResult<()> {
        while self.buf.len() < n {
            let t = self.lx.next_token()?;
            self.buf.push_back(t);
        }
        Ok(())
    }

    pub(crate) fn peek(&mut self) -> XdmResult<&Token> {
        self.fill(1)?;
        Ok(&self.buf[0])
    }

    pub(crate) fn peek2(&mut self) -> XdmResult<&Token> {
        self.fill(2)?;
        Ok(&self.buf[1])
    }

    pub(crate) fn peek3(&mut self) -> XdmResult<&Token> {
        self.fill(3)?;
        Ok(&self.buf[2])
    }

    pub(crate) fn next(&mut self) -> XdmResult<Token> {
        self.fill(1)?;
        Ok(self.buf.pop_front().expect("filled"))
    }

    /// Rewind the lexer to `pos`, discarding buffered tokens (used to
    /// switch into raw constructor mode).
    pub(crate) fn rewind_to(&mut self, pos: usize) {
        self.buf.clear();
        self.lx.set_pos(pos);
    }

    pub(crate) fn err_at(&self, pos: usize, msg: impl Into<String>) -> XdmError {
        let (line, col) = self.lx.line_col(pos);
        XdmError::new(
            ErrorCode::XPST0003,
            format!("parse error at {line}:{col}: {}", msg.into()),
        )
    }

    fn err_here(&mut self, msg: impl Into<String>) -> XdmError {
        let pos = self.peek().map(|t| t.start).unwrap_or(0);
        self.err_at(pos, msg)
    }

    pub(crate) fn expect_tok(&mut self, tok: Tok) -> XdmResult<Token> {
        let t = self.next()?;
        if t.tok == tok {
            Ok(t)
        } else {
            Err(self.err_at(t.start, format!("expected {:?}, found {:?}", tok, t.tok)))
        }
    }

    pub(crate) fn expect_kw(&mut self, kw: &str) -> XdmResult<()> {
        let t = self.next()?;
        if t.tok.is_name(kw) {
            Ok(())
        } else {
            Err(self.err_at(t.start, format!("expected keyword {kw:?}, found {:?}", t.tok)))
        }
    }

    fn eat(&mut self, tok: &Tok) -> XdmResult<bool> {
        if &self.peek()?.tok == tok {
            self.next()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    pub(crate) fn eat_kw(&mut self, kw: &str) -> XdmResult<bool> {
        if self.peek()?.tok.is_name(kw) {
            self.next()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn peek_kw(&mut self, kw: &str) -> XdmResult<bool> {
        Ok(self.peek()?.tok.is_name(kw))
    }

    pub(crate) fn expect_eof(&mut self) -> XdmResult<()> {
        let t = self.peek()?;
        if t.tok == Tok::Eof {
            Ok(())
        } else {
            let (start, tok) = (t.start, t.tok.clone());
            Err(self.err_at(start, format!("unexpected trailing {tok:?}")))
        }
    }

    // -- namespace resolution -------------------------------------------

    pub(crate) fn push_ns_frame(&mut self, decls: &[(String, String)]) {
        let mut m = HashMap::new();
        for (p, u) in decls {
            m.insert(p.clone(), u.clone());
        }
        self.ns.push(m);
    }

    pub(crate) fn pop_ns_frame(&mut self) {
        self.ns.pop();
    }

    pub(crate) fn bind_ns(&mut self, prefix: &str, uri: &str) {
        self.ns
            .last_mut()
            .expect("ns stack nonempty")
            .insert(prefix.to_string(), uri.to_string());
    }

    pub(crate) fn resolve_prefix(&self, prefix: &str) -> Option<String> {
        for frame in self.ns.iter().rev() {
            if let Some(u) = frame.get(prefix) {
                return if u.is_empty() { None } else { Some(u.clone()) };
            }
        }
        None
    }

    /// Resolve a lexical (prefix?, local) pair in a given context.
    pub(crate) fn resolve_name(
        &self,
        prefix: Option<&str>,
        local: &str,
        ctx: NameCtx,
        pos: usize,
    ) -> XdmResult<QName> {
        match prefix {
            Some(p) => {
                let uri = self.resolve_prefix(p).ok_or_else(|| {
                    self.err_at(pos, format!("undeclared namespace prefix {p:?}"))
                })?;
                Ok(QName::with_prefix_ns(p, uri, local))
            }
            None => Ok(match ctx {
                NameCtx::Element => match &self.default_element_ns {
                    Some(ns) => QName::with_ns(ns.clone(), local),
                    None => QName::new(local),
                },
                NameCtx::Function => {
                    QName::with_ns(self.default_function_ns.clone(), local)
                }
                NameCtx::Plain => QName::new(local),
            }),
        }
    }

    /// Consume a name token and resolve it.
    pub(crate) fn parse_qname(&mut self, ctx: NameCtx) -> XdmResult<QName> {
        let t = self.next()?;
        match t.tok {
            Tok::Name(p, l) => self.resolve_name(p.as_deref(), &l, ctx, t.start),
            other => Err(self.err_at(t.start, format!("expected name, found {other:?}"))),
        }
    }

    /// Consume a `$var` token and resolve it (vars have no default ns).
    pub(crate) fn parse_var_name(&mut self) -> XdmResult<QName> {
        let t = self.next()?;
        match t.tok {
            Tok::Var(p, l) => self.resolve_name(p.as_deref(), &l, NameCtx::Plain, t.start),
            other => {
                Err(self.err_at(t.start, format!("expected $variable, found {other:?}")))
            }
        }
    }

    // -- sequence types ---------------------------------------------------

    pub(crate) fn parse_sequence_type(&mut self) -> XdmResult<SequenceType> {
        if self.peek_kw("empty-sequence")? && self.peek2()?.tok == Tok::LParen {
            self.next()?;
            self.expect_tok(Tok::LParen)?;
            self.expect_tok(Tok::RParen)?;
            return Ok(SequenceType::Empty);
        }
        let item = self.parse_item_type()?;
        let occ = match self.peek()?.tok {
            Tok::Question => {
                self.next()?;
                Occurrence::ZeroOrOne
            }
            Tok::Star => {
                self.next()?;
                Occurrence::ZeroOrMore
            }
            Tok::Plus => {
                self.next()?;
                Occurrence::OneOrMore
            }
            _ => Occurrence::One,
        };
        Ok(SequenceType::Of(item, occ))
    }

    fn parse_item_type(&mut self) -> XdmResult<ItemType> {
        let t = self.peek()?.clone();
        let Tok::Name(prefix, local) = &t.tok else {
            return Err(self.err_at(t.start, "expected item type"));
        };
        let is_paren = self.peek2()?.tok == Tok::LParen;
        if prefix.is_none() && is_paren {
            match local.as_str() {
                "item" => {
                    self.next()?;
                    self.expect_tok(Tok::LParen)?;
                    self.expect_tok(Tok::RParen)?;
                    return Ok(ItemType::AnyItem);
                }
                "node" => {
                    self.next()?;
                    self.expect_tok(Tok::LParen)?;
                    self.expect_tok(Tok::RParen)?;
                    return Ok(ItemType::AnyNode);
                }
                "text" => {
                    self.next()?;
                    self.expect_tok(Tok::LParen)?;
                    self.expect_tok(Tok::RParen)?;
                    return Ok(ItemType::Text);
                }
                "comment" => {
                    self.next()?;
                    self.expect_tok(Tok::LParen)?;
                    self.expect_tok(Tok::RParen)?;
                    return Ok(ItemType::Comment);
                }
                "processing-instruction" => {
                    self.next()?;
                    self.expect_tok(Tok::LParen)?;
                    // Optional target name ignored for typing.
                    if self.peek()?.tok != Tok::RParen {
                        self.next()?;
                    }
                    self.expect_tok(Tok::RParen)?;
                    return Ok(ItemType::Pi);
                }
                "document-node" => {
                    self.next()?;
                    self.expect_tok(Tok::LParen)?;
                    // Optional element(...) inner test tolerated.
                    if self.peek()?.tok != Tok::RParen {
                        self.parse_item_type()?;
                    }
                    self.expect_tok(Tok::RParen)?;
                    return Ok(ItemType::Document);
                }
                "element" => {
                    self.next()?;
                    self.expect_tok(Tok::LParen)?;
                    let name = self.parse_optional_test_name()?;
                    self.expect_tok(Tok::RParen)?;
                    return Ok(ItemType::Element(name));
                }
                "attribute" => {
                    self.next()?;
                    self.expect_tok(Tok::LParen)?;
                    let name = self.parse_optional_test_name()?;
                    self.expect_tok(Tok::RParen)?;
                    return Ok(ItemType::Attribute(name));
                }
                _ => {}
            }
        }
        // Atomic type name.
        let q = self.parse_qname(NameCtx::Plain)?;
        let is_xs = q.ns.as_deref() == Some(XS_NS) || q.ns.is_none();
        let at = if is_xs { AtomicType::from_local(&q.local) } else { None };
        match at {
            Some(a) => Ok(ItemType::Atomic(a)),
            None => Err(self.err_at(t.start, format!("unknown atomic type {q}"))),
        }
    }

    fn parse_optional_test_name(&mut self) -> XdmResult<Option<QName>> {
        match &self.peek()?.tok {
            Tok::RParen => Ok(None),
            Tok::Star => {
                self.next()?;
                Ok(None)
            }
            _ => {
                let q = self.parse_qname(NameCtx::Element)?;
                // Tolerate a trailing ", TypeName" which we don't model.
                if self.eat(&Tok::Comma)? {
                    self.parse_qname(NameCtx::Plain)?;
                }
                Ok(Some(q))
            }
        }
    }

    // -- expressions ------------------------------------------------------

    /// Expr ::= ExprSingle ("," ExprSingle)*
    pub(crate) fn parse_expr_top(&mut self) -> XdmResult<Expr> {
        let first = self.parse_expr_single()?;
        if self.peek()?.tok != Tok::Comma {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat(&Tok::Comma)? {
            items.push(self.parse_expr_single()?);
        }
        Ok(Expr::Comma(items))
    }

    pub(crate) fn parse_expr_single(&mut self) -> XdmResult<Expr> {
        // Keyword-led expression forms (keywords are contextual).
        let t = self.peek()?.clone();
        if let Tok::Name(None, kw) = &t.tok {
            match kw.as_str() {
                "for" | "let" if matches!(self.peek2()?.tok, Tok::Var(_, _)) => {
                    return self.parse_flwor()
                }
                "some" | "every" if matches!(self.peek2()?.tok, Tok::Var(_, _)) => {
                    return self.parse_quantified()
                }
                "if" if self.peek2()?.tok == Tok::LParen => return self.parse_if_expr(),
                "typeswitch" if self.peek2()?.tok == Tok::LParen => {
                    return self.parse_typeswitch()
                }
                "insert" if self.peek2_is_node_kw()? => return self.parse_insert(),
                "delete" if self.peek2_is_node_kw()? => return self.parse_delete(),
                "replace"
                    if self.peek2()?.tok.is_name("node")
                        || self.peek2()?.tok.is_name("value") =>
                {
                    return self.parse_replace()
                }
                "rename" if self.peek2()?.tok.is_name("node") => {
                    return self.parse_rename()
                }
                "copy" if matches!(self.peek2()?.tok, Tok::Var(_, _)) => {
                    return self.parse_transform()
                }
                _ => {}
            }
        }
        self.parse_or()
    }

    fn peek2_is_node_kw(&mut self) -> XdmResult<bool> {
        let t = &self.peek2()?.tok;
        Ok(t.is_name("node") || t.is_name("nodes"))
    }

    fn parse_or(&mut self) -> XdmResult<Expr> {
        let mut left = self.parse_and()?;
        while self.peek_kw("or")? {
            self.next()?;
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> XdmResult<Expr> {
        let mut left = self.parse_comparison()?;
        while self.peek_kw("and")? {
            self.next()?;
            let right = self.parse_comparison()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_comparison(&mut self) -> XdmResult<Expr> {
        let left = self.parse_range()?;
        let t = self.peek()?.clone();
        let make = |c: fn(Box<Expr>, Box<Expr>) -> Expr,
                    s: &mut Self,
                    left: Expr|
         -> XdmResult<Expr> {
            s.next()?;
            let right = s.parse_range()?;
            Ok(c(Box::new(left), Box::new(right)))
        };
        match &t.tok {
            Tok::Eq => make(|a, b| Expr::General(GeneralComp::Eq, a, b), self, left),
            Tok::Ne => make(|a, b| Expr::General(GeneralComp::Ne, a, b), self, left),
            Tok::Lt => make(|a, b| Expr::General(GeneralComp::Lt, a, b), self, left),
            Tok::Le => make(|a, b| Expr::General(GeneralComp::Le, a, b), self, left),
            Tok::Gt => make(|a, b| Expr::General(GeneralComp::Gt, a, b), self, left),
            Tok::Ge => make(|a, b| Expr::General(GeneralComp::Ge, a, b), self, left),
            Tok::LtLt => make(|a, b| Expr::Node(NodeComp::Precedes, a, b), self, left),
            Tok::GtGt => make(|a, b| Expr::Node(NodeComp::Follows, a, b), self, left),
            Tok::Name(None, kw) => {
                let vc = match kw.as_str() {
                    "eq" => Some(ValueComp::Eq),
                    "ne" => Some(ValueComp::Ne),
                    "lt" => Some(ValueComp::Lt),
                    "le" => Some(ValueComp::Le),
                    "gt" => Some(ValueComp::Gt),
                    "ge" => Some(ValueComp::Ge),
                    _ => None,
                };
                if let Some(vc) = vc {
                    self.next()?;
                    let right = self.parse_range()?;
                    Ok(Expr::Value(vc, Box::new(left), Box::new(right)))
                } else if kw == "is" {
                    self.next()?;
                    let right = self.parse_range()?;
                    Ok(Expr::Node(NodeComp::Is, Box::new(left), Box::new(right)))
                } else {
                    Ok(left)
                }
            }
            _ => Ok(left),
        }
    }

    fn parse_range(&mut self) -> XdmResult<Expr> {
        let left = self.parse_additive()?;
        if self.peek_kw("to")? {
            self.next()?;
            let right = self.parse_additive()?;
            Ok(Expr::Range(Box::new(left), Box::new(right)))
        } else {
            Ok(left)
        }
    }

    fn parse_additive(&mut self) -> XdmResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            match self.peek()?.tok {
                Tok::Plus => {
                    self.next()?;
                    let r = self.parse_multiplicative()?;
                    left = Expr::Binary(BinaryOp::Add, Box::new(left), Box::new(r));
                }
                Tok::Minus => {
                    self.next()?;
                    let r = self.parse_multiplicative()?;
                    left = Expr::Binary(BinaryOp::Sub, Box::new(left), Box::new(r));
                }
                _ => return Ok(left),
            }
        }
    }

    fn parse_multiplicative(&mut self) -> XdmResult<Expr> {
        let mut left = self.parse_union()?;
        loop {
            let op = match &self.peek()?.tok {
                Tok::Star => Some(BinaryOp::Mul),
                Tok::Name(None, k) => match k.as_str() {
                    "div" => Some(BinaryOp::Div),
                    "idiv" => Some(BinaryOp::IDiv),
                    "mod" => Some(BinaryOp::Mod),
                    _ => None,
                },
                _ => None,
            };
            match op {
                Some(op) => {
                    self.next()?;
                    let r = self.parse_union()?;
                    left = Expr::Binary(op, Box::new(left), Box::new(r));
                }
                None => return Ok(left),
            }
        }
    }

    fn parse_union(&mut self) -> XdmResult<Expr> {
        let mut left = self.parse_intersect()?;
        loop {
            let is_union =
                self.peek()?.tok == Tok::Pipe || self.peek_kw("union")?;
            if !is_union {
                return Ok(left);
            }
            self.next()?;
            let r = self.parse_intersect()?;
            left = Expr::Set(SetOp::Union, Box::new(left), Box::new(r));
        }
    }

    fn parse_intersect(&mut self) -> XdmResult<Expr> {
        let mut left = self.parse_instance_of()?;
        loop {
            let op = if self.peek_kw("intersect")? {
                SetOp::Intersect
            } else if self.peek_kw("except")? {
                SetOp::Except
            } else {
                return Ok(left);
            };
            self.next()?;
            let r = self.parse_instance_of()?;
            left = Expr::Set(op, Box::new(left), Box::new(r));
        }
    }

    fn parse_instance_of(&mut self) -> XdmResult<Expr> {
        let left = self.parse_treat_as()?;
        if self.peek_kw("instance")? && self.peek2()?.tok.is_name("of") {
            self.next()?;
            self.next()?;
            let ty = self.parse_sequence_type()?;
            Ok(Expr::InstanceOf(Box::new(left), ty))
        } else {
            Ok(left)
        }
    }

    fn parse_treat_as(&mut self) -> XdmResult<Expr> {
        let left = self.parse_castable_as()?;
        if self.peek_kw("treat")? && self.peek2()?.tok.is_name("as") {
            self.next()?;
            self.next()?;
            let ty = self.parse_sequence_type()?;
            Ok(Expr::TreatAs(Box::new(left), ty))
        } else {
            Ok(left)
        }
    }

    fn parse_castable_as(&mut self) -> XdmResult<Expr> {
        let left = self.parse_cast_as()?;
        if self.peek_kw("castable")? && self.peek2()?.tok.is_name("as") {
            self.next()?;
            self.next()?;
            let (q, opt) = self.parse_single_type()?;
            Ok(Expr::CastableAs(Box::new(left), q, opt))
        } else {
            Ok(left)
        }
    }

    fn parse_cast_as(&mut self) -> XdmResult<Expr> {
        let left = self.parse_unary()?;
        if self.peek_kw("cast")? && self.peek2()?.tok.is_name("as") {
            self.next()?;
            self.next()?;
            let (q, opt) = self.parse_single_type()?;
            Ok(Expr::CastAs(Box::new(left), q, opt))
        } else {
            Ok(left)
        }
    }

    fn parse_single_type(&mut self) -> XdmResult<(QName, bool)> {
        let q = self.parse_qname(NameCtx::Plain)?;
        let opt = self.eat(&Tok::Question)?;
        Ok((q, opt))
    }

    fn parse_unary(&mut self) -> XdmResult<Expr> {
        match self.peek()?.tok {
            Tok::Minus => {
                self.next()?;
                let e = self.parse_unary()?;
                Ok(Expr::Unary(true, Box::new(e)))
            }
            Tok::Plus => {
                self.next()?;
                let e = self.parse_unary()?;
                Ok(Expr::Unary(false, Box::new(e)))
            }
            _ => self.parse_path(),
        }
    }

    // -- paths --------------------------------------------------------

    fn parse_path(&mut self) -> XdmResult<Expr> {
        match self.peek()?.tok {
            Tok::Slash => {
                self.next()?;
                // A lone "/" selects the root; otherwise steps follow.
                if self.starts_step()? {
                    let steps = self.parse_relative_steps()?;
                    Ok(Expr::Path { start: PathStart::Root, steps })
                } else {
                    Ok(Expr::Path { start: PathStart::Root, steps: Vec::new() })
                }
            }
            Tok::SlashSlash => {
                self.next()?;
                let mut steps = vec![Step {
                    axis: Axis::DescendantOrSelf,
                    test: NodeTest::Kind(KindTest::AnyKind),
                    predicates: Vec::new(),
                }];
                steps.extend(self.parse_relative_steps()?);
                Ok(Expr::Path { start: PathStart::RootDescendant, steps })
            }
            _ => {
                // Relative path: first step may be a primary/filter.
                let first = self.parse_step_expr()?;
                let mut steps = Vec::new();
                loop {
                    match self.peek()?.tok {
                        Tok::Slash => {
                            self.next()?;
                            steps.push(self.parse_axis_step()?);
                        }
                        Tok::SlashSlash => {
                            self.next()?;
                            steps.push(Step {
                                axis: Axis::DescendantOrSelf,
                                test: NodeTest::Kind(KindTest::AnyKind),
                                predicates: Vec::new(),
                            });
                            steps.push(self.parse_axis_step()?);
                        }
                        _ => break,
                    }
                }
                if steps.is_empty() {
                    Ok(first)
                } else {
                    Ok(Expr::Path { start: PathStart::Expr(Box::new(first)), steps })
                }
            }
        }
    }

    /// Does the upcoming token start an axis step?
    fn starts_step(&mut self) -> XdmResult<bool> {
        Ok(matches!(
            self.peek()?.tok,
            Tok::Name(_, _)
                | Tok::Star
                | Tok::At
                | Tok::DotDot
                | Tok::PrefixWildcard(_)
                | Tok::LocalWildcard(_)
                | Tok::FullWildcard
        ))
    }

    fn parse_relative_steps(&mut self) -> XdmResult<Vec<Step>> {
        let mut steps = vec![self.parse_axis_step()?];
        loop {
            match self.peek()?.tok {
                Tok::Slash => {
                    self.next()?;
                    steps.push(self.parse_axis_step()?);
                }
                Tok::SlashSlash => {
                    self.next()?;
                    steps.push(Step {
                        axis: Axis::DescendantOrSelf,
                        test: NodeTest::Kind(KindTest::AnyKind),
                        predicates: Vec::new(),
                    });
                    steps.push(self.parse_axis_step()?);
                }
                _ => return Ok(steps),
            }
        }
    }

    /// A step expression in first position: an axis step or a filter
    /// (primary + predicates).
    fn parse_step_expr(&mut self) -> XdmResult<Expr> {
        let t = self.peek()?.clone();
        let is_axis_step = match &t.tok {
            Tok::At | Tok::DotDot => true,
            Tok::Star
            | Tok::PrefixWildcard(_)
            | Tok::LocalWildcard(_)
            | Tok::FullWildcard => true,
            Tok::Name(None, n) => {
                let n2 = self.peek2()?.tok.clone();
                // Computed constructors: `element N {`, `element {`,
                // `text {`, etc. are primaries, not name-test steps.
                let is_computed_ctor = match n.as_str() {
                    "element" | "attribute" | "processing-instruction" => {
                        n2 == Tok::LBrace
                            || (matches!(n2, Tok::Name(_, _))
                                && self.peek3()?.tok == Tok::LBrace)
                    }
                    "text" | "comment" | "document" => n2 == Tok::LBrace,
                    _ => false,
                };
                if is_computed_ctor {
                    false
                } else if n2 == Tok::ColonColon {
                    true
                } else if n2 == Tok::LParen {
                    // Kind tests are steps; anything else is a call.
                    matches!(
                        n.as_str(),
                        "node"
                            | "text"
                            | "comment"
                            | "element"
                            | "attribute"
                            | "document-node"
                            | "processing-instruction"
                    )
                } else {
                    true // plain name test
                }
            }
            Tok::Name(Some(_), _) => self.peek2()?.tok != Tok::LParen,
            _ => false,
        };
        if is_axis_step {
            let step = self.parse_axis_step()?;
            Ok(Expr::Path {
                start: PathStart::Expr(Box::new(Expr::ContextItem)),
                steps: vec![step],
            })
        } else {
            // Primary expression with optional predicates.
            let base = self.parse_primary()?;
            let mut preds = Vec::new();
            while self.peek()?.tok == Tok::LBracket {
                self.next()?;
                preds.push(self.parse_expr_top()?);
                self.expect_tok(Tok::RBracket)?;
            }
            if preds.is_empty() {
                Ok(base)
            } else {
                Ok(Expr::Filter { base: Box::new(base), predicates: preds })
            }
        }
    }

    fn parse_axis_step(&mut self) -> XdmResult<Step> {
        let t = self.peek()?.clone();
        let (axis, explicit) = match &t.tok {
            Tok::At => {
                self.next()?;
                (Axis::Attribute, false)
            }
            Tok::DotDot => {
                self.next()?;
                let mut step = Step {
                    axis: Axis::Parent,
                    test: NodeTest::Kind(KindTest::AnyKind),
                    predicates: Vec::new(),
                };
                while self.peek()?.tok == Tok::LBracket {
                    self.next()?;
                    step.predicates.push(self.parse_expr_top()?);
                    self.expect_tok(Tok::RBracket)?;
                }
                return Ok(step);
            }
            Tok::Name(None, n) if self.peek2()?.tok == Tok::ColonColon => {
                let axis = match n.as_str() {
                    "child" => Axis::Child,
                    "attribute" => Axis::Attribute,
                    "descendant" => Axis::Descendant,
                    "descendant-or-self" => Axis::DescendantOrSelf,
                    "self" => Axis::SelfAxis,
                    "parent" => Axis::Parent,
                    "ancestor" => Axis::Ancestor,
                    "ancestor-or-self" => Axis::AncestorOrSelf,
                    "following-sibling" => Axis::FollowingSibling,
                    "preceding-sibling" => Axis::PrecedingSibling,
                    other => {
                        return Err(
                            self.err_at(t.start, format!("unsupported axis {other}"))
                        )
                    }
                };
                self.next()?;
                self.next()?;
                (axis, true)
            }
            _ => (Axis::Child, false),
        };
        let test = self.parse_node_test(axis, explicit)?;
        let mut predicates = Vec::new();
        while self.peek()?.tok == Tok::LBracket {
            self.next()?;
            predicates.push(self.parse_expr_top()?);
            self.expect_tok(Tok::RBracket)?;
        }
        Ok(Step { axis, test, predicates })
    }

    fn parse_node_test(&mut self, axis: Axis, _explicit: bool) -> XdmResult<NodeTest> {
        let t = self.next()?;
        match t.tok {
            Tok::Star => Ok(NodeTest::AnyName),
            Tok::FullWildcard => Ok(NodeTest::AnyName),
            Tok::LocalWildcard(l) => Ok(NodeTest::AnyNs(l)),
            Tok::PrefixWildcard(p) => {
                let uri = self.resolve_prefix(&p).ok_or_else(|| {
                    self.err_at(t.start, format!("undeclared namespace prefix {p:?}"))
                })?;
                Ok(NodeTest::NsWildcard(Some(uri)))
            }
            Tok::Name(None, n) if self.peek()?.tok == Tok::LParen => {
                let kind = match n.as_str() {
                    "node" => {
                        self.expect_tok(Tok::LParen)?;
                        self.expect_tok(Tok::RParen)?;
                        KindTest::AnyKind
                    }
                    "text" => {
                        self.expect_tok(Tok::LParen)?;
                        self.expect_tok(Tok::RParen)?;
                        KindTest::Text
                    }
                    "comment" => {
                        self.expect_tok(Tok::LParen)?;
                        self.expect_tok(Tok::RParen)?;
                        KindTest::Comment
                    }
                    "document-node" => {
                        self.expect_tok(Tok::LParen)?;
                        self.expect_tok(Tok::RParen)?;
                        KindTest::Document
                    }
                    "element" => {
                        self.expect_tok(Tok::LParen)?;
                        let name = self.parse_optional_test_name()?;
                        self.expect_tok(Tok::RParen)?;
                        KindTest::Element(name)
                    }
                    "attribute" => {
                        self.expect_tok(Tok::LParen)?;
                        let name = self.parse_optional_test_name()?;
                        self.expect_tok(Tok::RParen)?;
                        KindTest::Attribute(name)
                    }
                    "processing-instruction" => {
                        self.expect_tok(Tok::LParen)?;
                        let target = match &self.peek()?.tok {
                            Tok::RParen => None,
                            Tok::Str(s) => {
                                let s = s.clone();
                                self.next()?;
                                Some(s)
                            }
                            Tok::Name(None, n) => {
                                let s = n.clone();
                                self.next()?;
                                Some(s)
                            }
                            _ => return Err(self.err_at(t.start, "bad PI target")),
                        };
                        self.expect_tok(Tok::RParen)?;
                        KindTest::Pi(target)
                    }
                    other => {
                        return Err(self.err_at(
                            t.start,
                            format!("unknown kind test {other}()"),
                        ))
                    }
                };
                Ok(NodeTest::Kind(kind))
            }
            Tok::Name(p, l) => {
                let ctx = if axis == Axis::Attribute {
                    NameCtx::Plain
                } else {
                    NameCtx::Element
                };
                let q = self.resolve_name(p.as_deref(), &l, ctx, t.start)?;
                Ok(NodeTest::Name(q))
            }
            other => Err(self.err_at(t.start, format!("expected node test, found {other:?}"))),
        }
    }

    // -- primaries ------------------------------------------------------

    fn parse_primary(&mut self) -> XdmResult<Expr> {
        let t = self.peek()?.clone();
        match &t.tok {
            Tok::Int(i) => {
                let i = *i;
                self.next()?;
                Ok(Expr::Literal(AtomicValue::Integer(i)))
            }
            Tok::Dec(s) => {
                let d = Decimal::parse(s).map_err(|e| self.err_at(t.start, e.message))?;
                self.next()?;
                Ok(Expr::Literal(AtomicValue::Decimal(d)))
            }
            Tok::Dbl(d) => {
                let d = *d;
                self.next()?;
                Ok(Expr::Literal(AtomicValue::Double(d)))
            }
            Tok::Str(s) => {
                let s = s.clone();
                self.next()?;
                Ok(Expr::Literal(AtomicValue::String(s)))
            }
            Tok::Var(_, _) => {
                let q = self.parse_var_name()?;
                Ok(Expr::VarRef(q))
            }
            Tok::Dot => {
                self.next()?;
                Ok(Expr::ContextItem)
            }
            Tok::LParen => {
                self.next()?;
                if self.eat(&Tok::RParen)? {
                    return Ok(Expr::Comma(Vec::new())); // ()
                }
                let e = self.parse_expr_top()?;
                self.expect_tok(Tok::RParen)?;
                Ok(e)
            }
            Tok::Lt => self.parse_direct_constructor(t.start),
            Tok::Name(None, kw) => {
                // Computed constructors.
                match kw.as_str() {
                    "element" | "attribute" | "processing-instruction"
                        if matches!(
                            self.peek2()?.tok,
                            Tok::Name(_, _) | Tok::LBrace
                        ) =>
                    {
                        return self.parse_computed_named(kw.clone())
                    }
                    "text" | "comment" | "document"
                        if self.peek2()?.tok == Tok::LBrace =>
                    {
                        let kind = kw.clone();
                        self.next()?;
                        self.expect_tok(Tok::LBrace)?;
                        let e = self.parse_expr_top()?;
                        self.expect_tok(Tok::RBrace)?;
                        return Ok(match kind.as_str() {
                            "text" => Expr::ComputedText(Box::new(e)),
                            "comment" => Expr::ComputedComment(Box::new(e)),
                            _ => Expr::ComputedDocument(Box::new(e)),
                        });
                    }
                    _ => {}
                }
                self.parse_call_or_error(t.start)
            }
            Tok::Name(Some(_), _) => self.parse_call_or_error(t.start),
            other => {
                Err(self.err_at(t.start, format!("unexpected token {other:?}")))
            }
        }
    }

    fn parse_call_or_error(&mut self, pos: usize) -> XdmResult<Expr> {
        // Must be a function call: QName "(" args ")".
        if self.peek2()?.tok != Tok::LParen {
            let t = self.peek()?.clone();
            return Err(self.err_at(
                pos,
                format!("unexpected name {:?} (not a function call)", t.tok),
            ));
        }
        let name = self.parse_qname(NameCtx::Function)?;
        self.expect_tok(Tok::LParen)?;
        let mut args = Vec::new();
        if self.peek()?.tok != Tok::RParen {
            loop {
                args.push(self.parse_expr_single()?);
                if !self.eat(&Tok::Comma)? {
                    break;
                }
            }
        }
        self.expect_tok(Tok::RParen)?;
        Ok(Expr::FunctionCall { name, args })
    }

    fn parse_computed_named(&mut self, kind: String) -> XdmResult<Expr> {
        self.next()?; // the keyword
        let name = if self.peek()?.tok == Tok::LBrace {
            self.next()?;
            let e = self.parse_expr_top()?;
            self.expect_tok(Tok::RBrace)?;
            NameExpr::Computed(Box::new(e))
        } else {
            let ctx = if kind == "attribute" { NameCtx::Plain } else { NameCtx::Element };
            NameExpr::Fixed(self.parse_qname(ctx)?)
        };
        self.expect_tok(Tok::LBrace)?;
        let content = if self.peek()?.tok == Tok::RBrace {
            None
        } else {
            Some(Box::new(self.parse_expr_top()?))
        };
        self.expect_tok(Tok::RBrace)?;
        Ok(match kind.as_str() {
            "element" => Expr::ComputedElement(name, content),
            "attribute" => Expr::ComputedAttribute(name, content),
            _ => Expr::ComputedPi(name, content),
        })
    }

    // -- keyword-led expressions ------------------------------------------

    fn parse_flwor(&mut self) -> XdmResult<Expr> {
        let mut clauses = Vec::new();
        loop {
            if self.peek_kw("for")? && matches!(self.peek2()?.tok, Tok::Var(_, _)) {
                self.next()?;
                loop {
                    let var = self.parse_var_name()?;
                    let pos = if self.eat_kw("at")? {
                        Some(self.parse_var_name()?)
                    } else {
                        None
                    };
                    self.expect_kw("in")?;
                    let source = self.parse_expr_single()?;
                    clauses.push(FlworClause::For { var, pos, source });
                    if !self.eat(&Tok::Comma)? {
                        break;
                    }
                }
            } else if self.peek_kw("let")? && matches!(self.peek2()?.tok, Tok::Var(_, _)) {
                self.next()?;
                loop {
                    let var = self.parse_var_name()?;
                    let ty = if self.eat_kw("as")? {
                        Some(self.parse_sequence_type()?)
                    } else {
                        None
                    };
                    self.expect_tok(Tok::ColonEq)?;
                    let value = self.parse_expr_single()?;
                    clauses.push(FlworClause::Let { var, ty, value });
                    if !self.eat(&Tok::Comma)? {
                        break;
                    }
                }
            } else if self.peek_kw("where")? {
                self.next()?;
                clauses.push(FlworClause::Where(self.parse_expr_single()?));
            } else if self.peek_kw("order")? && self.peek2()?.tok.is_name("by") {
                self.next()?;
                self.next()?;
                let mut specs = Vec::new();
                loop {
                    let key = self.parse_expr_single()?;
                    let mut descending = false;
                    if self.eat_kw("ascending")? {
                    } else if self.eat_kw("descending")? {
                        descending = true;
                    }
                    let mut empty_least = true;
                    if self.eat_kw("empty")? {
                        if self.eat_kw("greatest")? {
                            empty_least = false;
                        } else {
                            self.expect_kw("least")?;
                        }
                    }
                    specs.push(OrderSpec { key, descending, empty_least });
                    if !self.eat(&Tok::Comma)? {
                        break;
                    }
                }
                clauses.push(FlworClause::OrderBy(specs));
            } else if self.peek_kw("stable")? && self.peek2()?.tok.is_name("order") {
                self.next()?; // our order-by is always stable
            } else {
                break;
            }
        }
        self.expect_kw("return")?;
        let ret = self.parse_expr_single()?;
        if clauses.is_empty() {
            return Err(self.err_here("FLWOR requires at least one clause"));
        }
        Ok(Expr::Flwor { clauses, ret: Box::new(ret) })
    }

    fn parse_quantified(&mut self) -> XdmResult<Expr> {
        let t = self.next()?; // some | every
        let quantifier = if t.tok.is_name("some") {
            Quantifier::Some
        } else {
            Quantifier::Every
        };
        let mut bindings = Vec::new();
        loop {
            let var = self.parse_var_name()?;
            self.expect_kw("in")?;
            let src = self.parse_expr_single()?;
            bindings.push((var, src));
            if !self.eat(&Tok::Comma)? {
                break;
            }
        }
        self.expect_kw("satisfies")?;
        let satisfies = self.parse_expr_single()?;
        Ok(Expr::Quantified { quantifier, bindings, satisfies: Box::new(satisfies) })
    }

    fn parse_if_expr(&mut self) -> XdmResult<Expr> {
        self.next()?; // if
        self.expect_tok(Tok::LParen)?;
        let cond = self.parse_expr_top()?;
        self.expect_tok(Tok::RParen)?;
        self.expect_kw("then")?;
        let then = self.parse_expr_single()?;
        self.expect_kw("else")?;
        let els = self.parse_expr_single()?;
        Ok(Expr::If(Box::new(cond), Box::new(then), Box::new(els)))
    }

    fn parse_typeswitch(&mut self) -> XdmResult<Expr> {
        self.next()?; // typeswitch
        self.expect_tok(Tok::LParen)?;
        let operand = self.parse_expr_top()?;
        self.expect_tok(Tok::RParen)?;
        let mut cases = Vec::new();
        while self.eat_kw("case")? {
            let var = if matches!(self.peek()?.tok, Tok::Var(_, _)) {
                let v = self.parse_var_name()?;
                self.expect_kw("as")?;
                Some(v)
            } else {
                None
            };
            let ty = self.parse_sequence_type()?;
            self.expect_kw("return")?;
            let body = self.parse_expr_single()?;
            cases.push(TypeswitchCase { var, ty: Some(ty), body });
        }
        self.expect_kw("default")?;
        let var = if matches!(self.peek()?.tok, Tok::Var(_, _)) {
            Some(self.parse_var_name()?)
        } else {
            None
        };
        self.expect_kw("return")?;
        let body = self.parse_expr_single()?;
        cases.push(TypeswitchCase { var, ty: None, body });
        Ok(Expr::Typeswitch { operand: Box::new(operand), cases })
    }

    // -- XUF --------------------------------------------------------------

    fn parse_insert(&mut self) -> XdmResult<Expr> {
        self.next()?; // insert
        self.next()?; // node | nodes
        let source = self.parse_expr_single()?;
        let pos = if self.eat_kw("into")? {
            InsertPos::Into
        } else if self.eat_kw("as")? {
            let p = if self.eat_kw("first")? {
                InsertPos::FirstInto
            } else {
                self.expect_kw("last")?;
                InsertPos::LastInto
            };
            self.expect_kw("into")?;
            p
        } else if self.eat_kw("before")? {
            InsertPos::Before
        } else if self.eat_kw("after")? {
            InsertPos::After
        } else {
            return Err(self.err_here("expected into/before/after in insert"));
        };
        let target = self.parse_expr_single()?;
        Ok(Expr::Insert { source: Box::new(source), pos, target: Box::new(target) })
    }

    fn parse_delete(&mut self) -> XdmResult<Expr> {
        self.next()?; // delete
        self.next()?; // node | nodes
        let target = self.parse_expr_single()?;
        Ok(Expr::Delete(Box::new(target)))
    }

    fn parse_replace(&mut self) -> XdmResult<Expr> {
        self.next()?; // replace
        let value_of = if self.eat_kw("value")? {
            self.expect_kw("of")?;
            true
        } else {
            false
        };
        self.expect_kw("node")?;
        let target = self.parse_expr_single()?;
        self.expect_kw("with")?;
        let with = self.parse_expr_single()?;
        Ok(Expr::Replace { value_of, target: Box::new(target), with: Box::new(with) })
    }

    fn parse_rename(&mut self) -> XdmResult<Expr> {
        self.next()?; // rename
        self.expect_kw("node")?;
        let target = self.parse_expr_single()?;
        self.expect_kw("as")?;
        let new_name = self.parse_expr_single()?;
        Ok(Expr::Rename { target: Box::new(target), new_name: Box::new(new_name) })
    }

    fn parse_transform(&mut self) -> XdmResult<Expr> {
        self.next()?; // copy
        let mut copies = Vec::new();
        loop {
            let var = self.parse_var_name()?;
            self.expect_tok(Tok::ColonEq)?;
            let e = self.parse_expr_single()?;
            copies.push((var, e));
            if !self.eat(&Tok::Comma)? {
                break;
            }
        }
        self.expect_kw("modify")?;
        let modify = self.parse_expr_single()?;
        self.expect_kw("return")?;
        let ret = self.parse_expr_single()?;
        Ok(Expr::Transform { copies, modify: Box::new(modify), ret: Box::new(ret) })
    }

    // -- direct constructors (raw mode) -------------------------------

    /// Called with the `<` token peeked (its start at `lt_pos`).
    fn parse_direct_constructor(&mut self, lt_pos: usize) -> XdmResult<Expr> {
        self.rewind_to(lt_pos);
        if self.lx.rest().starts_with("<!--") {
            self.lx.bump(4);
            let end = self
                .lx
                .rest()
                .find("-->")
                .ok_or_else(|| self.err_at(self.lx.pos(), "unterminated comment"))?;
            let content = self.lx.rest()[..end].to_string();
            self.lx.bump(end + 3);
            return Ok(Expr::ComputedComment(Box::new(Expr::str(content))));
        }
        if self.lx.rest().starts_with("<?") {
            self.lx.bump(2);
            let rest = self.lx.rest();
            let name_len = rest
                .bytes()
                .take_while(|b| b.is_ascii_alphanumeric() || *b == b'-' || *b == b'_')
                .count();
            let target = rest[..name_len].to_string();
            self.lx.bump(name_len);
            let rest = self.lx.rest();
            let end = rest
                .find("?>")
                .ok_or_else(|| self.err_at(self.lx.pos(), "unterminated PI"))?;
            let content = rest[..end].trim_start().to_string();
            self.lx.bump(end + 2);
            return Ok(Expr::ComputedPi(
                NameExpr::Fixed(QName::new(target)),
                Some(Box::new(Expr::str(content))),
            ));
        }
        let elem = self.parse_direct_element()?;
        Ok(Expr::DirectElement(Box::new(elem)))
    }

    fn raw_peek(&self) -> Option<u8> {
        self.lx.peek_byte()
    }

    fn raw_err(&self, msg: impl Into<String>) -> XdmError {
        self.err_at(self.lx.pos(), msg)
    }

    fn raw_skip_ws(&mut self) {
        while matches!(self.raw_peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.lx.bump(1);
        }
    }

    fn raw_name(&mut self) -> XdmResult<String> {
        let rest = self.lx.rest();
        let len = rest
            .bytes()
            .take_while(|b| {
                b.is_ascii_alphanumeric()
                    || *b == b'_'
                    || *b == b'-'
                    || *b == b'.'
                    || *b == b':'
                    || *b >= 0x80
            })
            .count();
        if len == 0 {
            return Err(self.raw_err("expected name"));
        }
        let name = rest[..len].to_string();
        self.lx.bump(len);
        Ok(name)
    }

    /// Parse `{expr}` from raw mode: switch to token mode and back.
    fn raw_embedded_expr(&mut self) -> XdmResult<Expr> {
        debug_assert_eq!(self.raw_peek(), Some(b'{'));
        self.lx.bump(1);
        // Token mode until the matching top-level `}`.
        let e = self.parse_expr_top()?;
        // The `}` must be the next token; consume it and resume raw
        // mode at its end.
        let t = self.next()?;
        if t.tok != Tok::RBrace {
            return Err(self.err_at(t.start, "expected '}' to close embedded expression"));
        }
        self.rewind_to(t.end);
        Ok(e)
    }

    fn parse_direct_element(&mut self) -> XdmResult<DirectElement> {
        debug_assert_eq!(self.raw_peek(), Some(b'<'));
        self.lx.bump(1);
        let raw_name = self.raw_name()?;
        // Attributes.
        let mut raw_attrs: Vec<(String, Vec<AttrContent>)> = Vec::new();
        let mut ns_decls: Vec<(String, String)> = Vec::new();
        let mut self_closing = false;
        loop {
            self.raw_skip_ws();
            match self.raw_peek() {
                Some(b'/') => {
                    if !self.lx.rest().starts_with("/>") {
                        return Err(self.raw_err("expected '/>'"));
                    }
                    self.lx.bump(2);
                    self_closing = true;
                    break;
                }
                Some(b'>') => {
                    self.lx.bump(1);
                    break;
                }
                Some(_) => {
                    let aname = self.raw_name()?;
                    self.raw_skip_ws();
                    if self.raw_peek() != Some(b'=') {
                        return Err(self.raw_err("expected '=' after attribute name"));
                    }
                    self.lx.bump(1);
                    self.raw_skip_ws();
                    let parts = self.parse_attr_value_template()?;
                    if aname == "xmlns" {
                        ns_decls.push((String::new(), attr_literal(&parts, &aname, self)?));
                    } else if let Some(p) = aname.strip_prefix("xmlns:") {
                        ns_decls
                            .push((p.to_string(), attr_literal(&parts, &aname, self)?));
                    } else {
                        raw_attrs.push((aname, parts));
                    }
                }
                None => return Err(self.raw_err("unterminated start tag")),
            }
        }
        self.push_ns_frame(&ns_decls);
        // An unprefixed xmlns="" default also affects element-name
        // resolution inside the constructor.
        let saved_default = self.default_element_ns.clone();
        for (p, u) in &ns_decls {
            if p.is_empty() {
                self.default_element_ns =
                    if u.is_empty() { None } else { Some(u.clone()) };
            }
        }
        let result = (|| -> XdmResult<DirectElement> {
            let name = self.resolve_raw_qname(&raw_name, NameCtx::Element)?;
            let mut attributes = Vec::new();
            for (aname, parts) in raw_attrs {
                let q = self.resolve_raw_qname(&aname, NameCtx::Plain)?;
                attributes.push((q, parts));
            }
            let mut content = Vec::new();
            if !self_closing {
                self.parse_direct_content(&mut content)?;
                // We are at "</"; parse the end tag.
                self.lx.bump(2);
                let close = self.raw_name()?;
                if close != raw_name {
                    return Err(self.raw_err(format!(
                        "mismatched end tag </{close}> for <{raw_name}>"
                    )));
                }
                self.raw_skip_ws();
                if self.raw_peek() != Some(b'>') {
                    return Err(self.raw_err("expected '>'"));
                }
                self.lx.bump(1);
            }
            Ok(DirectElement { name, attributes, ns_decls: ns_decls.clone(), content })
        })();
        self.default_element_ns = saved_default;
        self.pop_ns_frame();
        result
    }

    fn resolve_raw_qname(&self, raw: &str, ctx: NameCtx) -> XdmResult<QName> {
        match raw.split_once(':') {
            Some((p, l)) => self.resolve_name(Some(p), l, ctx, self.lx.pos()),
            None => self.resolve_name(None, raw, ctx, self.lx.pos()),
        }
    }

    fn parse_attr_value_template(&mut self) -> XdmResult<Vec<AttrContent>> {
        let quote = match self.raw_peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.raw_err("expected quoted attribute value")),
        };
        self.lx.bump(1);
        let mut parts = Vec::new();
        let mut text = String::new();
        loop {
            match self.raw_peek() {
                None => return Err(self.raw_err("unterminated attribute value")),
                Some(b) if b == quote => {
                    // Doubled quote escapes itself.
                    if self.lx.rest().as_bytes().get(1) == Some(&quote) {
                        text.push(quote as char);
                        self.lx.bump(2);
                    } else {
                        self.lx.bump(1);
                        if !text.is_empty() {
                            parts.push(AttrContent::Text(std::mem::take(&mut text)));
                        }
                        return Ok(parts);
                    }
                }
                Some(b'{') => {
                    if self.lx.rest().starts_with("{{") {
                        text.push('{');
                        self.lx.bump(2);
                    } else {
                        if !text.is_empty() {
                            parts.push(AttrContent::Text(std::mem::take(&mut text)));
                        }
                        let e = self.raw_embedded_expr()?;
                        parts.push(AttrContent::Expr(e));
                    }
                }
                Some(b'}') => {
                    if self.lx.rest().starts_with("}}") {
                        text.push('}');
                        self.lx.bump(2);
                    } else {
                        return Err(self.raw_err("lone '}' in attribute value"));
                    }
                }
                Some(b'&') => {
                    let c = self.raw_entity()?;
                    text.push(c);
                }
                Some(b'<') => return Err(self.raw_err("'<' in attribute value")),
                Some(_) => {
                    let c = self.lx.rest().chars().next().unwrap();
                    text.push(c);
                    self.lx.bump(c.len_utf8());
                }
            }
        }
    }

    fn raw_entity(&mut self) -> XdmResult<char> {
        let rest = self.lx.rest();
        let semi = rest
            .find(';')
            .ok_or_else(|| self.raw_err("unterminated entity reference"))?;
        let body = &rest[1..semi];
        let c = match body {
            "lt" => '<',
            "gt" => '>',
            "amp" => '&',
            "quot" => '"',
            "apos" => '\'',
            _ if body.starts_with("#x") || body.starts_with("#X") => {
                u32::from_str_radix(&body[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| self.raw_err("bad character reference"))?
            }
            _ if body.starts_with('#') => body[1..]
                .parse::<u32>()
                .ok()
                .and_then(char::from_u32)
                .ok_or_else(|| self.raw_err("bad character reference"))?,
            _ => return Err(self.raw_err(format!("unknown entity &{body};"))),
        };
        self.lx.bump(semi + 1);
        Ok(c)
    }

    fn parse_direct_content(&mut self, out: &mut Vec<DirectContent>) -> XdmResult<()> {
        let mut text = String::new();
        loop {
            let flush = |text: &mut String, out: &mut Vec<DirectContent>, preserve: bool| {
                if !text.is_empty() {
                    let keep = preserve || !text.chars().all(char::is_whitespace);
                    if keep {
                        out.push(DirectContent::Text(std::mem::take(text)));
                    } else {
                        text.clear();
                    }
                }
            };
            let rest = self.lx.rest();
            if rest.starts_with("</") {
                flush(&mut text, out, self.boundary_space_preserve);
                return Ok(()); // caller consumes the end tag
            } else if rest.starts_with("<!--") {
                flush(&mut text, out, self.boundary_space_preserve);
                self.lx.bump(4);
                let end = self
                    .lx
                    .rest()
                    .find("-->")
                    .ok_or_else(|| self.raw_err("unterminated comment"))?;
                let c = self.lx.rest()[..end].to_string();
                self.lx.bump(end + 3);
                out.push(DirectContent::Comment(c));
            } else if rest.starts_with("<![CDATA[") {
                self.lx.bump(9);
                let end = self
                    .lx
                    .rest()
                    .find("]]>")
                    .ok_or_else(|| self.raw_err("unterminated CDATA"))?;
                text.push_str(&self.lx.rest()[..end]);
                self.lx.bump(end + 3);
            } else if rest.starts_with("<?") {
                flush(&mut text, out, self.boundary_space_preserve);
                self.lx.bump(2);
                let target = self.raw_name()?;
                let end = self
                    .lx
                    .rest()
                    .find("?>")
                    .ok_or_else(|| self.raw_err("unterminated PI"))?;
                let c = self.lx.rest()[..end].trim_start().to_string();
                self.lx.bump(end + 2);
                out.push(DirectContent::Pi(target, c));
            } else if rest.starts_with('<') {
                flush(&mut text, out, self.boundary_space_preserve);
                let child = self.parse_direct_element()?;
                out.push(DirectContent::Element(Box::new(child)));
            } else if rest.starts_with("{{") {
                text.push('{');
                self.lx.bump(2);
            } else if rest.starts_with("}}") {
                text.push('}');
                self.lx.bump(2);
            } else if rest.starts_with('{') {
                flush(&mut text, out, self.boundary_space_preserve);
                let e = self.raw_embedded_expr()?;
                out.push(DirectContent::Expr(e));
            } else if rest.starts_with('}') {
                return Err(self.raw_err("lone '}' in element content"));
            } else if rest.starts_with('&') {
                let c = self.raw_entity()?;
                text.push(c);
            } else if rest.is_empty() {
                return Err(self.raw_err("unterminated element content"));
            } else {
                let c = rest.chars().next().unwrap();
                text.push(c);
                self.lx.bump(c.len_utf8());
            }
        }
    }
}

/// Reduce a parsed attribute-value template to a literal string (for
/// `xmlns` pseudo-attributes, which may not contain expressions).
fn attr_literal(
    parts: &[AttrContent],
    name: &str,
    p: &Parser<'_>,
) -> XdmResult<String> {
    let mut out = String::new();
    for part in parts {
        match part {
            AttrContent::Text(t) => out.push_str(t),
            AttrContent::Expr(_) => {
                return Err(p.err_at(
                    p.lx.pos(),
                    format!("{name} must be a literal namespace URI"),
                ))
            }
        }
    }
    Ok(out)
}

/// Which default namespace applies to an unprefixed name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NameCtx {
    /// Element/type context (default element namespace).
    Element,
    /// Function context (default function namespace).
    Function,
    /// No default (variables, attributes).
    Plain,
}
