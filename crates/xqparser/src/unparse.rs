//! AST → source text rendering.
//!
//! Produces parseable XQuery/XQSE text from the AST: used for
//! diagnostics (showing users what the engine understood), for the
//! EXPERIMENTS harness, and for the parse∘unparse round-trip property
//! tests. Output is fully parenthesized where precedence could bite,
//! so `parse(unparse(ast))` re-produces a semantically identical AST
//! (the round-trip tests compare evaluation results).

use std::fmt::Write as _;

use xdm::atomic::AtomicValue;
use xdm::qname::QName;
use xdm::types::SequenceType;

use crate::ast::*;

/// Render an expression as source text.
pub fn unparse_expr(e: &Expr) -> String {
    let mut out = String::new();
    expr(&mut out, e);
    out
}

/// Render a statement as source text.
pub fn unparse_statement(s: &Statement) -> String {
    let mut out = String::new();
    statement(&mut out, s);
    out
}

/// Render a block as source text.
pub fn unparse_block(b: &Block) -> String {
    let mut out = String::new();
    block(&mut out, b);
    out
}

/// Render a whole module (prolog + body).
pub fn unparse_module(m: &Module) -> String {
    let mut out = String::new();
    for (p, u) in &m.prolog.namespaces {
        let _ = writeln!(out, "declare namespace {p} = \"{u}\";");
    }
    if let Some(ns) = &m.prolog.default_element_ns {
        let _ = writeln!(out, "declare default element namespace \"{ns}\";");
    }
    if m.prolog.boundary_space_preserve {
        let _ = writeln!(out, "declare boundary-space preserve;");
    }
    for v in &m.prolog.variables {
        let _ = write!(out, "declare variable ${}", lex(&v.name));
        if let Some(t) = &v.ty {
            let _ = write!(out, " as {}", ty(t));
        }
        match &v.value {
            Some(e) => {
                let _ = writeln!(out, " := {};", unparse_expr(e));
            }
            None => {
                let _ = writeln!(out, " external;");
            }
        }
    }
    for f in &m.prolog.functions {
        let _ = write!(
            out,
            "declare {}function {}({})",
            if f.updating { "updating " } else { "" },
            lex(&f.name),
            params(&f.params)
        );
        if let Some(t) = &f.return_type {
            let _ = write!(out, " as {}", ty(t));
        }
        match &f.body {
            Some(b) => {
                let _ = writeln!(out, " {{ {} }};", unparse_expr(b));
            }
            None => {
                let _ = writeln!(out, " external;");
            }
        }
    }
    for p in &m.prolog.procedures {
        let _ = write!(
            out,
            "declare {}procedure {}({})",
            if p.readonly { "readonly " } else { "" },
            lex(&p.name),
            params(&p.params)
        );
        if let Some(t) = &p.return_type {
            let _ = write!(out, " as {}", ty(t));
        }
        match &p.body {
            Some(b) => {
                let _ = writeln!(out, " {};", unparse_block(b));
            }
            None => {
                let _ = writeln!(out, " external;");
            }
        }
    }
    match &m.body {
        QueryBody::Expr(e) => out.push_str(&unparse_expr(e)),
        QueryBody::Block(b) => out.push_str(&unparse_block(b)),
        QueryBody::None => {}
    }
    out
}

fn params(ps: &[Param]) -> String {
    ps.iter()
        .map(|p| match &p.ty {
            Some(t) => format!("${} as {}", lex(&p.name), ty(t)),
            None => format!("${}", lex(&p.name)),
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// QName in a form the parser can re-resolve: Clark-free lexical name;
/// callers are expected to re-parse in a context with the same
/// namespace declarations (unparse_module emits them).
fn lex(q: &QName) -> String {
    q.lexical()
}

fn ty(t: &SequenceType) -> String {
    t.to_string()
}

fn string_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\"\""),
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            _ => out.push(c),
        }
    }
    out.push('"');
}

fn expr(out: &mut String, e: &Expr) {
    match e {
        Expr::Literal(a) => match a {
            AtomicValue::String(s) => string_lit(out, s),
            AtomicValue::Integer(i) => {
                // Negative literals print in unary-minus form so that
                // unparse is a fixed point of parse∘unparse (the
                // grammar has no negative literals).
                if *i < 0 {
                    let _ = write!(out, "(-{})", i.unsigned_abs());
                } else {
                    let _ = write!(out, "{i}");
                }
            }
            AtomicValue::Decimal(d) => {
                let _ = write!(out, "{d}");
                if !d.to_string().contains('.') {
                    out.push_str(".0");
                }
            }
            AtomicValue::Double(d) => {
                let _ = write!(out, "({d:e})");
            }
            AtomicValue::Boolean(b) => {
                let _ = write!(out, "fn:{b}()");
            }
            other => {
                // Date/QName/etc.: render as a cast from the lexical
                // form.
                string_lit(out, &other.string_value());
                let _ = write!(out, " cast as xs:{}", other.type_of().local());
            }
        },
        Expr::VarRef(q) => {
            let _ = write!(out, "${}", lex(q));
        }
        Expr::ContextItem => out.push('.'),
        Expr::Comma(items) => {
            // A one-item sequence prints as the bare item: `(x)`
            // re-parses as plain `x`, so emitting the parentheses
            // would make unparse unstable under parse∘unparse.
            if let [single] = items.as_slice() {
                expr(out, single);
                return;
            }
            out.push('(');
            for (i, x) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(out, x);
            }
            out.push(')');
        }
        Expr::Range(a, b) => binop(out, a, "to", b),
        Expr::Binary(op, a, b) => {
            let s = match op {
                BinaryOp::Add => "+",
                BinaryOp::Sub => "-",
                BinaryOp::Mul => "*",
                BinaryOp::Div => "div",
                BinaryOp::IDiv => "idiv",
                BinaryOp::Mod => "mod",
            };
            binop(out, a, s, b);
        }
        Expr::Unary(neg, a) => {
            out.push('(');
            out.push(if *neg { '-' } else { '+' });
            expr(out, a);
            out.push(')');
        }
        Expr::And(a, b) => binop(out, a, "and", b),
        Expr::Or(a, b) => binop(out, a, "or", b),
        Expr::General(op, a, b) => {
            let s = match op {
                GeneralComp::Eq => "=",
                GeneralComp::Ne => "!=",
                GeneralComp::Lt => "<",
                GeneralComp::Le => "<=",
                GeneralComp::Gt => ">",
                GeneralComp::Ge => ">=",
            };
            binop(out, a, s, b);
        }
        Expr::Value(op, a, b) => {
            let s = match op {
                ValueComp::Eq => "eq",
                ValueComp::Ne => "ne",
                ValueComp::Lt => "lt",
                ValueComp::Le => "le",
                ValueComp::Gt => "gt",
                ValueComp::Ge => "ge",
            };
            binop(out, a, s, b);
        }
        Expr::Node(op, a, b) => {
            let s = match op {
                NodeComp::Is => "is",
                NodeComp::Precedes => "<<",
                NodeComp::Follows => ">>",
            };
            binop(out, a, s, b);
        }
        Expr::Set(op, a, b) => {
            let s = match op {
                SetOp::Union => "union",
                SetOp::Intersect => "intersect",
                SetOp::Except => "except",
            };
            binop(out, a, s, b);
        }
        Expr::If(c, t, f) => {
            out.push_str("(if (");
            expr(out, c);
            out.push_str(") then ");
            expr(out, t);
            out.push_str(" else ");
            expr(out, f);
            out.push(')');
        }
        Expr::Flwor { clauses, ret } => {
            out.push('(');
            for c in clauses {
                match c {
                    FlworClause::For { var, pos, source } => {
                        let _ = write!(out, "for ${} ", lex(var));
                        if let Some(p) = pos {
                            let _ = write!(out, "at ${} ", lex(p));
                        }
                        out.push_str("in ");
                        expr(out, source);
                        out.push(' ');
                    }
                    FlworClause::Let { var, ty: t, value } => {
                        let _ = write!(out, "let ${}", lex(var));
                        if let Some(t) = t {
                            let _ = write!(out, " as {}", ty(t));
                        }
                        out.push_str(" := ");
                        expr(out, value);
                        out.push(' ');
                    }
                    FlworClause::Where(w) => {
                        out.push_str("where ");
                        expr(out, w);
                        out.push(' ');
                    }
                    FlworClause::OrderBy(specs) => {
                        out.push_str("order by ");
                        for (i, s) in specs.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            expr(out, &s.key);
                            if s.descending {
                                out.push_str(" descending");
                            }
                            if !s.empty_least {
                                out.push_str(" empty greatest");
                            }
                        }
                        out.push(' ');
                    }
                }
            }
            out.push_str("return ");
            expr(out, ret);
            out.push(')');
        }
        Expr::Quantified { quantifier, bindings, satisfies } => {
            out.push('(');
            out.push_str(match quantifier {
                Quantifier::Some => "some ",
                Quantifier::Every => "every ",
            });
            for (i, (v, s)) in bindings.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "${} in ", lex(v));
                expr(out, s);
            }
            out.push_str(" satisfies ");
            expr(out, satisfies);
            out.push(')');
        }
        Expr::Typeswitch { operand, cases } => {
            out.push_str("(typeswitch (");
            expr(out, operand);
            out.push(')');
            for c in cases {
                match &c.ty {
                    Some(t) => {
                        out.push_str(" case ");
                        if let Some(v) = &c.var {
                            let _ = write!(out, "${} as ", lex(v));
                        }
                        let _ = write!(out, "{} return ", ty(t));
                    }
                    None => {
                        out.push_str(" default ");
                        if let Some(v) = &c.var {
                            let _ = write!(out, "${} ", lex(v));
                        }
                        out.push_str("return ");
                    }
                }
                expr(out, &c.body);
            }
            out.push(')');
        }
        Expr::Path { start, steps } => {
            out.push('(');
            match start {
                PathStart::Root => out.push('/'),
                PathStart::RootDescendant => {}
                PathStart::Expr(b) => expr(out, b),
            }
            for (i, s) in steps.iter().enumerate() {
                let skip_slash = matches!(start, PathStart::Root) && i == 0;
                if !skip_slash {
                    out.push('/');
                }
                step(out, s);
            }
            out.push(')');
        }
        Expr::Filter { base, predicates } => {
            out.push('(');
            expr(out, base);
            out.push(')');
            for p in predicates {
                out.push('[');
                expr(out, p);
                out.push(']');
            }
        }
        Expr::FunctionCall { name, args } => {
            let _ = write!(out, "{}(", lex(name));
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(out, a);
            }
            out.push(')');
        }
        Expr::DirectElement(de) => direct_element(out, de),
        Expr::ComputedElement(n, c) => computed(out, "element", n, c),
        Expr::ComputedAttribute(n, c) => computed(out, "attribute", n, c),
        Expr::ComputedPi(n, c) => computed(out, "processing-instruction", n, c),
        Expr::ComputedText(c) => {
            out.push_str("text { ");
            expr(out, c);
            out.push_str(" }");
        }
        Expr::ComputedComment(c) => {
            out.push_str("comment { ");
            expr(out, c);
            out.push_str(" }");
        }
        Expr::ComputedDocument(c) => {
            out.push_str("document { ");
            expr(out, c);
            out.push_str(" }");
        }
        Expr::InstanceOf(a, t) => {
            out.push('(');
            expr(out, a);
            let _ = write!(out, " instance of {})", ty(t));
        }
        Expr::TreatAs(a, t) => {
            out.push('(');
            expr(out, a);
            let _ = write!(out, " treat as {})", ty(t));
        }
        Expr::CastableAs(a, q, opt) => {
            out.push('(');
            expr(out, a);
            let _ = write!(out, " castable as {}{})", lex(q), if *opt { "?" } else { "" });
        }
        Expr::CastAs(a, q, opt) => {
            out.push('(');
            expr(out, a);
            let _ = write!(out, " cast as {}{})", lex(q), if *opt { "?" } else { "" });
        }
        Expr::Insert { source, pos, target } => {
            out.push_str("insert node ");
            expr(out, source);
            out.push_str(match pos {
                InsertPos::Into => " into ",
                InsertPos::FirstInto => " as first into ",
                InsertPos::LastInto => " as last into ",
                InsertPos::Before => " before ",
                InsertPos::After => " after ",
            });
            expr(out, target);
        }
        Expr::Delete(t) => {
            out.push_str("delete node ");
            expr(out, t);
        }
        Expr::Replace { value_of, target, with } => {
            out.push_str(if *value_of {
                "replace value of node "
            } else {
                "replace node "
            });
            expr(out, target);
            out.push_str(" with ");
            expr(out, with);
        }
        Expr::Rename { target, new_name } => {
            out.push_str("rename node ");
            expr(out, target);
            out.push_str(" as ");
            expr(out, new_name);
        }
        Expr::Transform { copies, modify, ret } => {
            out.push_str("(copy ");
            for (i, (v, e2)) in copies.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "${} := ", lex(v));
                expr(out, e2);
            }
            out.push_str(" modify ");
            expr(out, modify);
            out.push_str(" return ");
            expr(out, ret);
            out.push(')');
        }
    }
}

fn binop(out: &mut String, a: &Expr, op: &str, b: &Expr) {
    out.push('(');
    expr(out, a);
    let _ = write!(out, " {op} ");
    expr(out, b);
    out.push(')');
}

fn computed(out: &mut String, kw: &str, n: &NameExpr, c: &Option<Box<Expr>>) {
    let _ = write!(out, "{kw} ");
    match n {
        NameExpr::Fixed(q) => {
            let _ = write!(out, "{}", lex(q));
        }
        NameExpr::Computed(e2) => {
            out.push_str("{ ");
            expr(out, e2);
            out.push_str(" }");
        }
    }
    out.push_str(" { ");
    if let Some(c) = c {
        expr(out, c);
    }
    out.push_str(" }");
}

fn step(out: &mut String, s: &Step) {
    let axis = match s.axis {
        Axis::Child => "",
        Axis::Attribute => "@",
        Axis::Descendant => "descendant::",
        Axis::DescendantOrSelf => "descendant-or-self::",
        Axis::SelfAxis => "self::",
        Axis::Parent => "parent::",
        Axis::Ancestor => "ancestor::",
        Axis::AncestorOrSelf => "ancestor-or-self::",
        Axis::FollowingSibling => "following-sibling::",
        Axis::PrecedingSibling => "preceding-sibling::",
    };
    out.push_str(axis);
    match &s.test {
        NodeTest::Name(q) => {
            let _ = write!(out, "{}", lex(q));
        }
        NodeTest::AnyName => out.push('*'),
        NodeTest::AnyNs(l) => {
            let _ = write!(out, "*:{l}");
        }
        NodeTest::NsWildcard(_) => out.push_str("*:*"),
        NodeTest::Kind(k) => {
            let s = match k {
                KindTest::AnyKind => "node()".to_string(),
                KindTest::Document => "document-node()".to_string(),
                KindTest::Element(None) => "element()".to_string(),
                KindTest::Element(Some(q)) => format!("element({})", lex(q)),
                KindTest::Attribute(None) => "attribute()".to_string(),
                KindTest::Attribute(Some(q)) => format!("attribute({})", lex(q)),
                KindTest::Text => "text()".to_string(),
                KindTest::Comment => "comment()".to_string(),
                KindTest::Pi(None) => "processing-instruction()".to_string(),
                KindTest::Pi(Some(t)) => format!("processing-instruction({t})"),
            };
            out.push_str(&s);
        }
    }
    for p in &s.predicates {
        out.push('[');
        expr(out, p);
        out.push(']');
    }
}

fn direct_element(out: &mut String, de: &DirectElement) {
    let _ = write!(out, "<{}", de.name.lexical());
    for (p, u) in &de.ns_decls {
        if p.is_empty() {
            let _ = write!(out, " xmlns=\"{u}\"");
        } else {
            let _ = write!(out, " xmlns:{p}=\"{u}\"");
        }
    }
    for (name, parts) in &de.attributes {
        let _ = write!(out, " {}=\"", name.lexical());
        for part in parts {
            match part {
                AttrContent::Text(t) => {
                    for c in t.chars() {
                        match c {
                            '"' => out.push_str("&quot;"),
                            '&' => out.push_str("&amp;"),
                            '<' => out.push_str("&lt;"),
                            '{' => out.push_str("{{"),
                            '}' => out.push_str("}}"),
                            _ => out.push(c),
                        }
                    }
                }
                AttrContent::Expr(e2) => {
                    out.push('{');
                    expr(out, e2);
                    out.push('}');
                }
            }
        }
        out.push('"');
    }
    if de.content.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for c in &de.content {
        match c {
            DirectContent::Text(t) => {
                for ch in t.chars() {
                    match ch {
                        '&' => out.push_str("&amp;"),
                        '<' => out.push_str("&lt;"),
                        '{' => out.push_str("{{"),
                        '}' => out.push_str("}}"),
                        _ => out.push(ch),
                    }
                }
            }
            DirectContent::Expr(e2) => {
                out.push('{');
                expr(out, e2);
                out.push('}');
            }
            DirectContent::Element(child) => direct_element(out, child),
            DirectContent::Comment(t) => {
                let _ = write!(out, "<!--{t}-->");
            }
            DirectContent::Pi(t, d) => {
                let _ = write!(out, "<?{t} {d}?>");
            }
        }
    }
    let _ = write!(out, "</{}>", de.name.lexical());
}

fn statement(out: &mut String, s: &Statement) {
    match s {
        Statement::Block(b) => block(out, b),
        Statement::Set { var, value } => {
            let _ = write!(out, "set ${} := ", lex(var));
            value_statement(out, value);
            out.push(';');
        }
        Statement::Return(v) => {
            out.push_str("return value ");
            value_statement(out, v);
            out.push(';');
        }
        Statement::If { cond, then, els } => {
            out.push_str("if (");
            expr(out, cond);
            out.push_str(") then ");
            statement(out, then);
            if let Some(e2) = els {
                out.push_str(" else ");
                statement(out, e2);
            }
            // Simple statements carry their own ';'; blocks do not
            // need one.
            if matches!(
                (then.as_ref(), els.as_deref()),
                (Statement::Block(_), None) | (_, Some(Statement::Block(_)))
            ) {
            } else {
                // Branch statements already emitted ';' where needed.
            }
        }
        Statement::While { cond, body } => {
            out.push_str("while (");
            expr(out, cond);
            out.push_str(") ");
            block(out, body);
        }
        Statement::Iterate { var, pos, over, body } => {
            let _ = write!(out, "iterate ${} ", lex(var));
            if let Some(p) = pos {
                let _ = write!(out, "at ${} ", lex(p));
            }
            out.push_str("over ");
            value_statement(out, over);
            out.push(' ');
            block(out, body);
        }
        Statement::Try { body, catches } => {
            out.push_str("try ");
            block(out, body);
            for c in catches {
                out.push_str(" catch (");
                match &c.test {
                    NodeTest::Name(q) => {
                        let _ = write!(out, "{}", lex(q));
                    }
                    NodeTest::AnyName => out.push('*'),
                    NodeTest::AnyNs(l) => {
                        let _ = write!(out, "*:{l}");
                    }
                    NodeTest::NsWildcard(_) => out.push_str("*:*"),
                    NodeTest::Kind(_) => out.push('*'),
                }
                if !c.into_vars.is_empty() {
                    out.push_str(" into ");
                    for (i, v) in c.into_vars.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "${}", lex(v));
                    }
                }
                out.push_str(") ");
                block(out, &c.body);
            }
        }
        Statement::Continue => out.push_str("continue();"),
        Statement::Break => out.push_str("break();"),
        Statement::Update(e2) | Statement::ExprStatement(e2) => {
            expr(out, e2);
            out.push(';');
        }
        Statement::ProcedureBlock(b) => {
            out.push_str("procedure ");
            block(out, b);
        }
    }
}

fn value_statement(out: &mut String, v: &ValueStatement) {
    match v {
        ValueStatement::Expr(e2) => expr(out, e2),
        ValueStatement::ProcedureBlock(b) => {
            out.push_str("procedure ");
            block(out, b);
        }
    }
}

fn block(out: &mut String, b: &Block) {
    out.push_str("{ ");
    for d in &b.decls {
        let _ = write!(out, "declare ${}", lex(&d.var));
        if let Some(t) = &d.ty {
            let _ = write!(out, " as {}", ty(t));
        }
        if let Some(init) = &d.init {
            out.push_str(" := ");
            value_statement(out, init);
        }
        out.push_str("; ");
    }
    for s in &b.statements {
        statement(out, s);
        out.push(' ');
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_module};

    fn round_trip_expr(src: &str) {
        let ns = &[("t", "urn:t")];
        let e1 = parse_expr(src, ns).unwrap();
        let printed = unparse_expr(&e1);
        let e2 = parse_expr(&printed, ns)
            .unwrap_or_else(|err| panic!("re-parse of {printed:?} failed: {err}"));
        // Round trip again: print(parse(print(x))) must be stable.
        let printed2 = unparse_expr(&e2);
        assert_eq!(printed, printed2, "unstable unparse for {src:?}");
    }

    #[test]
    fn expressions_round_trip() {
        for src in [
            "1 + 2 * 3",
            "-(4 div 2)",
            "'it''s'",
            "(1, 2, 3)[2]",
            "1 to 10",
            "$x eq $y and $a << $b",
            "if (1 < 2) then 'a' else 'b'",
            "for $x at $i in (1,2) where $x > 1 order by $x descending return ($i, $x)",
            "some $x in (1,2) satisfies $x eq 2",
            "typeswitch (5) case xs:integer return 1 default return 2",
            "$doc/a/b[@id = '1']//text()",
            "/a/*/c",
            "$x union $y except $z",
            "5 instance of xs:integer+",
            "'3' cast as xs:integer?",
            "fn:concat('a', 'b')",
            "<e a=\"1\" b=\"{1+1}\">t{$v}<i/></e>",
            "element foo { attribute id { 1 }, 'x' }",
            "text { 'x' }",
            "delete node $x/a",
            "insert node <n/> as first into $d",
            "replace value of node $d/a with 'v'",
            "rename node $d/a as 'b'",
            "copy $c := $x modify delete node $c/a return $c",
        ] {
            round_trip_expr(src);
        }
    }

    #[test]
    fn statements_round_trip() {
        for src in [
            "{ return value 1; }",
            "{ declare $x as xs:integer := 0; set $x := $x + 1; return value $x; }",
            "{ while ($x lt 3) { set $x := $x + 1; } }",
            "{ iterate $v at $i over (1,2) { continue(); break(); } }",
            "{ try { fn:error(xs:QName('E'), 'm'); } catch (E into $c, $m) { return value $m; } }",
            "{ if ($x) then set $y := 1; else set $y := 2; }",
            "{ delete node $d/a; }",
            "{ procedure { return value 1; } }",
        ] {
            let m1 = parse_module(src).unwrap();
            let printed = unparse_module(&m1);
            let m2 = parse_module(&printed)
                .unwrap_or_else(|e| panic!("re-parse of {printed:?} failed: {e}"));
            assert_eq!(
                printed,
                unparse_module(&m2),
                "unstable unparse for {src:?}"
            );
        }
    }

    #[test]
    fn modules_round_trip() {
        let src = r#"
declare namespace t = "urn:t";
declare variable $g := 5;
declare function t:f($a as xs:integer) as xs:integer { $a * 2 };
declare readonly procedure t:p($b) { return value $b; };
{ return value t:f($g); }
"#;
        let m1 = parse_module(src).unwrap();
        let printed = unparse_module(&m1);
        let m2 = parse_module(&printed).unwrap();
        assert_eq!(printed, unparse_module(&m2));
    }

    #[test]
    fn round_tripped_programs_evaluate_identically() {
        // Semantic check through a tiny interpreter-independent case:
        // the unparse of figure-3-style nesting re-parses to the same
        // element structure.
        let src = "<a x=\"1\">{for $i in 1 to 3 return <b>{$i}</b>}</a>";
        let e1 = parse_expr(src, &[]).unwrap();
        let printed = unparse_expr(&e1);
        let e2 = parse_expr(&printed, &[]).unwrap();
        assert_eq!(unparse_expr(&e2), printed);
    }
}
