//! # xqparser — the XQuery 1.0 + XUF + XQSE parser
//!
//! This crate turns source text into the abstract syntax tree shared by
//! the expression evaluator (`xqeval`) and the statement engine
//! (`xqse`). It implements:
//!
//! - the XQuery 1.0 subset exercised by the paper and by ALDSP data
//!   services: FLWOR (for/let/where/order by/return, positional `at`),
//!   path expressions over all major axes, direct and computed
//!   constructors with embedded `{…}` expressions, quantified
//!   expressions, `typeswitch`, conditional expressions, the full
//!   operator grammar (or/and, general/value/node comparisons, range,
//!   additive/multiplicative, union/intersect/except, unary,
//!   `instance of`/`treat as`/`castable as`/`cast as`), filter
//!   expressions and predicates, function calls, and literals;
//! - the prolog: namespace declarations, default element/function
//!   namespaces, boundary-space, variable declarations, function
//!   declarations (including `external` and `updating`), option
//!   declarations — plus the XQSE `declare [readonly] procedure`
//!   and `declare xqse function` forms;
//! - the **XQuery Update Facility** expressions (`insert`, `delete`,
//!   `replace [value of]`, `rename`, `copy…modify…return`);
//! - the **complete XQSE statement grammar** from the paper's appendix
//!   EBNF: blocks, block variable declarations, `set`, `return value`,
//!   `while`, `iterate … over`, `if/then/else` statements, `try/catch`
//!   with `into` variables, `continue()`, `break()`, procedure calls,
//!   and in-place `procedure { … }` blocks.
//!
//! The query body may be either an expression (plain XQuery) or a
//! block (the "entry point into the XQSE world").
//!
//! ```
//! use xqparser::parse_module;
//! let m = parse_module("{ return value 'Hello, World'; }").unwrap();
//! assert!(m.body.is_block());
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod unparse;

#[cfg(test)]
mod tests;

pub use ast::*;
pub use parser::{parse_expr, parse_module};
