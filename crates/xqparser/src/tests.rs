//! Parser test suite: expressions, constructors, statements, prolog,
//! and the paper's verbatim listings.

use xdm::atomic::AtomicValue;
use xdm::qname::QName;
use xdm::types::{ItemType, Occurrence, SequenceType};

use crate::ast::*;
use crate::parser::{parse_expr, parse_module};

fn e(src: &str) -> Expr {
    parse_expr(src, &[("tns", "urn:tns"), ("emp", "urn:emp")]).unwrap()
}

fn m(src: &str) -> Module {
    parse_module(src).unwrap()
}

// ---------------------------------------------------------------- exprs

#[test]
fn literals() {
    assert_eq!(e("42"), Expr::int(42));
    assert_eq!(e("'hi'"), Expr::str("hi"));
    assert!(matches!(e("3.14"), Expr::Literal(AtomicValue::Decimal(_))));
    assert!(matches!(e("1e2"), Expr::Literal(AtomicValue::Double(_))));
}

#[test]
fn arithmetic_precedence() {
    // 1 + 2 * 3 parses as 1 + (2 * 3)
    let ast = e("1 + 2 * 3");
    match ast {
        Expr::Binary(BinaryOp::Add, l, r) => {
            assert_eq!(*l, Expr::int(1));
            assert!(matches!(*r, Expr::Binary(BinaryOp::Mul, _, _)));
        }
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn div_idiv_mod() {
    assert!(matches!(e("4 div 2"), Expr::Binary(BinaryOp::Div, _, _)));
    assert!(matches!(e("4 idiv 2"), Expr::Binary(BinaryOp::IDiv, _, _)));
    assert!(matches!(e("4 mod 2"), Expr::Binary(BinaryOp::Mod, _, _)));
}

#[test]
fn unary_minus_chain() {
    assert!(matches!(e("- - 1"), Expr::Unary(true, _)));
}

#[test]
fn comparisons() {
    assert!(matches!(e("1 = 2"), Expr::General(GeneralComp::Eq, _, _)));
    assert!(matches!(e("1 != 2"), Expr::General(GeneralComp::Ne, _, _)));
    assert!(matches!(e("1 < 2"), Expr::General(GeneralComp::Lt, _, _)));
    assert!(matches!(e("1 eq 2"), Expr::Value(ValueComp::Eq, _, _)));
    assert!(matches!(e("$a lt $b"), Expr::Value(ValueComp::Lt, _, _)));
    assert!(matches!(e("$a is $b"), Expr::Node(NodeComp::Is, _, _)));
    assert!(matches!(e("$a << $b"), Expr::Node(NodeComp::Precedes, _, _)));
    assert!(matches!(e("$a >> $b"), Expr::Node(NodeComp::Follows, _, _)));
}

#[test]
fn logic_precedence() {
    // a or b and c = a or (b and c)
    match e("1 or 2 and 3") {
        Expr::Or(_, r) => assert!(matches!(*r, Expr::And(_, _))),
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn range_and_comma() {
    assert!(matches!(e("1 to 5"), Expr::Range(_, _)));
    match e("1, 2, 3") {
        Expr::Comma(v) => assert_eq!(v.len(), 3),
        other => panic!("bad ast {other:?}"),
    }
    assert_eq!(e("()"), Expr::Comma(vec![]));
}

#[test]
fn set_operators() {
    assert!(matches!(e("$a | $b"), Expr::Set(SetOp::Union, _, _)));
    assert!(matches!(e("$a union $b"), Expr::Set(SetOp::Union, _, _)));
    assert!(matches!(e("$a intersect $b"), Expr::Set(SetOp::Intersect, _, _)));
    assert!(matches!(e("$a except $b"), Expr::Set(SetOp::Except, _, _)));
}

#[test]
fn if_then_else() {
    assert!(matches!(e("if (1) then 2 else 3"), Expr::If(_, _, _)));
}

#[test]
fn flwor_full() {
    let ast = e(
        "for $x at $i in (1,2,3) let $y := $x * 2 where $y > 2 \
         order by $y descending return ($i, $y)",
    );
    match ast {
        Expr::Flwor { clauses, .. } => {
            assert_eq!(clauses.len(), 4);
            assert!(matches!(&clauses[0], FlworClause::For { pos: Some(_), .. }));
            assert!(matches!(&clauses[1], FlworClause::Let { .. }));
            assert!(matches!(&clauses[2], FlworClause::Where(_)));
            match &clauses[3] {
                FlworClause::OrderBy(specs) => assert!(specs[0].descending),
                other => panic!("bad clause {other:?}"),
            }
        }
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn flwor_multiple_bindings_in_one_for() {
    let ast = e("for $a in 1, $b in 2 return $a + $b");
    match ast {
        Expr::Flwor { clauses, .. } => assert_eq!(clauses.len(), 2),
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn quantified() {
    assert!(matches!(
        e("some $x in (1,2) satisfies $x > 1"),
        Expr::Quantified { quantifier: Quantifier::Some, .. }
    ));
    assert!(matches!(
        e("every $x in (1,2), $y in (3,4) satisfies $x < $y"),
        Expr::Quantified { quantifier: Quantifier::Every, .. }
    ));
}

#[test]
fn typeswitch() {
    let ast = e(
        "typeswitch ($x) case $a as xs:integer return 1 \
         case element() return 2 default $d return 3",
    );
    match ast {
        Expr::Typeswitch { cases, .. } => {
            assert_eq!(cases.len(), 3);
            assert!(cases[2].ty.is_none());
            assert!(cases[2].var.is_some());
        }
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn instance_treat_cast_castable() {
    assert!(matches!(e("$x instance of xs:integer+"), Expr::InstanceOf(_, _)));
    assert!(matches!(e("$x treat as element()"), Expr::TreatAs(_, _)));
    assert!(matches!(e("$x cast as xs:integer"), Expr::CastAs(_, _, false)));
    assert!(matches!(e("$x cast as xs:integer?"), Expr::CastAs(_, _, true)));
    assert!(matches!(e("$x castable as xs:date"), Expr::CastableAs(_, _, false)));
}

#[test]
fn paths_relative() {
    // $CUSTOMER/CID
    let ast = e("$CUSTOMER/CID");
    match ast {
        Expr::Path { start: PathStart::Expr(base), steps } => {
            assert!(matches!(*base, Expr::VarRef(_)));
            assert_eq!(steps.len(), 1);
            assert_eq!(steps[0].axis, Axis::Child);
            assert!(matches!(&steps[0].test, NodeTest::Name(q) if q.local == "CID"));
        }
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn paths_attribute_and_descendant() {
    let ast = e("$x//y/@id");
    match ast {
        Expr::Path { steps, .. } => {
            assert_eq!(steps.len(), 3);
            assert_eq!(steps[0].axis, Axis::DescendantOrSelf);
            assert_eq!(steps[1].axis, Axis::Child);
            assert_eq!(steps[2].axis, Axis::Attribute);
        }
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn paths_with_predicates() {
    let ast = e("$o/ITEM[@qty > 1][2]");
    match ast {
        Expr::Path { steps, .. } => {
            assert_eq!(steps[0].predicates.len(), 2);
        }
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn rooted_paths() {
    assert!(matches!(e("/"), Expr::Path { start: PathStart::Root, steps } if steps.is_empty()));
    assert!(
        matches!(e("/a/b"), Expr::Path { start: PathStart::Root, steps } if steps.len() == 2)
    );
    assert!(matches!(e("//a"), Expr::Path { start: PathStart::RootDescendant, .. }));
}

#[test]
fn explicit_axes() {
    for (src, axis) in [
        ("child::a", Axis::Child),
        ("descendant::a", Axis::Descendant),
        ("self::a", Axis::SelfAxis),
        ("parent::a", Axis::Parent),
        ("ancestor::a", Axis::Ancestor),
        ("following-sibling::a", Axis::FollowingSibling),
        ("preceding-sibling::a", Axis::PrecedingSibling),
        ("attribute::a", Axis::Attribute),
    ] {
        match e(src) {
            Expr::Path { steps, .. } => assert_eq!(steps[0].axis, axis, "{src}"),
            other => panic!("bad ast for {src}: {other:?}"),
        }
    }
}

#[test]
fn kind_tests_in_paths() {
    match e("$x/text()") {
        Expr::Path { steps, .. } => {
            assert!(matches!(&steps[0].test, NodeTest::Kind(KindTest::Text)))
        }
        other => panic!("bad ast {other:?}"),
    }
    match e("$x/element(Employee)") {
        Expr::Path { steps, .. } => {
            assert!(
                matches!(&steps[0].test, NodeTest::Kind(KindTest::Element(Some(q))) if q.local == "Employee")
            )
        }
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn wildcard_steps() {
    match e("$x/*") {
        Expr::Path { steps, .. } => assert_eq!(steps[0].test, NodeTest::AnyName),
        other => panic!("bad ast {other:?}"),
    }
    match e("$x/*:name") {
        Expr::Path { steps, .. } => {
            assert_eq!(steps[0].test, NodeTest::AnyNs("name".into()))
        }
        other => panic!("bad ast {other:?}"),
    }
    match e("$x/tns:*") {
        Expr::Path { steps, .. } => {
            assert_eq!(steps[0].test, NodeTest::NsWildcard(Some("urn:tns".into())))
        }
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn parent_shorthand() {
    match e("$x/..") {
        Expr::Path { steps, .. } => assert_eq!(steps[0].axis, Axis::Parent),
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn function_calls() {
    match e("fn:concat('a', 'b', 'c')") {
        Expr::FunctionCall { name, args } => {
            assert_eq!(name.local, "concat");
            assert_eq!(name.ns.as_deref(), Some(xdm::qname::FN_NS));
            assert_eq!(args.len(), 3);
        }
        other => panic!("bad ast {other:?}"),
    }
    // Default function namespace applies to unprefixed calls.
    match e("count((1,2))") {
        Expr::FunctionCall { name, .. } => {
            assert_eq!(name.ns.as_deref(), Some(xdm::qname::FN_NS));
        }
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn filter_expression() {
    match e("(1,2,3)[2]") {
        Expr::Filter { predicates, .. } => assert_eq!(predicates.len(), 1),
        other => panic!("bad ast {other:?}"),
    }
}

// --------------------------------------------------------- constructors

#[test]
fn direct_element_simple() {
    match e("<a/>") {
        Expr::DirectElement(el) => {
            assert_eq!(el.name, QName::new("a"));
            assert!(el.content.is_empty());
        }
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn direct_element_with_content_and_attrs() {
    match e("<a x=\"1\" y=\"{2 + 3}\">text{$v}<b/></a>") {
        Expr::DirectElement(el) => {
            assert_eq!(el.attributes.len(), 2);
            assert!(matches!(&el.attributes[0].1[0], AttrContent::Text(t) if t == "1"));
            assert!(matches!(&el.attributes[1].1[0], AttrContent::Expr(_)));
            assert_eq!(el.content.len(), 3);
            assert!(matches!(&el.content[0], DirectContent::Text(t) if t == "text"));
            assert!(matches!(&el.content[1], DirectContent::Expr(_)));
            assert!(matches!(&el.content[2], DirectContent::Element(_)));
        }
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn direct_element_namespaces() {
    match e("<t:a xmlns:t=\"urn:t\"><t:b/></t:a>") {
        Expr::DirectElement(el) => {
            assert_eq!(el.name.ns.as_deref(), Some("urn:t"));
            match &el.content[0] {
                DirectContent::Element(b) => {
                    assert_eq!(b.name.ns.as_deref(), Some("urn:t"))
                }
                other => panic!("bad content {other:?}"),
            }
        }
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn direct_element_default_ns() {
    match e("<a xmlns=\"urn:d\"><b/></a>") {
        Expr::DirectElement(el) => {
            assert_eq!(el.name.ns.as_deref(), Some("urn:d"));
            match &el.content[0] {
                DirectContent::Element(b) => {
                    assert_eq!(b.name.ns.as_deref(), Some("urn:d"))
                }
                other => panic!("bad content {other:?}"),
            }
        }
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn boundary_whitespace_stripped_by_default() {
    match e("<a>\n  <b/>\n</a>") {
        Expr::DirectElement(el) => {
            assert_eq!(el.content.len(), 1);
            assert!(matches!(&el.content[0], DirectContent::Element(_)));
        }
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn boundary_space_preserve_declaration() {
    let module = m("declare boundary-space preserve; <a> <b/> </a>");
    match module.body {
        QueryBody::Expr(Expr::DirectElement(el)) => {
            assert_eq!(el.content.len(), 3);
        }
        other => panic!("bad body {other:?}"),
    }
}

#[test]
fn brace_escapes_in_content() {
    match e("<a>{{literal}}</a>") {
        Expr::DirectElement(el) => {
            assert!(matches!(&el.content[0], DirectContent::Text(t) if t == "{literal}"));
        }
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn entity_refs_in_content() {
    match e("<a>&lt;&amp;&#65;</a>") {
        Expr::DirectElement(el) => {
            assert!(matches!(&el.content[0], DirectContent::Text(t) if t == "<&A"));
        }
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn nested_constructor_in_embedded_expr() {
    // Constructors nested through an embedded expression inherit the
    // namespace scope.
    match e("<t:a xmlns:t=\"urn:t\">{ <t:b/> }</t:a>") {
        Expr::DirectElement(el) => match &el.content[0] {
            DirectContent::Expr(Expr::DirectElement(b)) => {
                assert_eq!(b.name.ns.as_deref(), Some("urn:t"));
            }
            other => panic!("bad content {other:?}"),
        },
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn computed_constructors() {
    assert!(matches!(
        e("element foo { 1 }"),
        Expr::ComputedElement(NameExpr::Fixed(_), Some(_))
    ));
    assert!(matches!(
        e("element { 'n' } { }"),
        Expr::ComputedElement(NameExpr::Computed(_), None)
    ));
    assert!(matches!(
        e("attribute id { 5 }"),
        Expr::ComputedAttribute(NameExpr::Fixed(_), Some(_))
    ));
    assert!(matches!(e("text { 'x' }"), Expr::ComputedText(_)));
    assert!(matches!(e("comment { 'c' }"), Expr::ComputedComment(_)));
    assert!(matches!(e("document { <a/> }"), Expr::ComputedDocument(_)));
}

#[test]
fn direct_comment_and_pi_constructors() {
    assert!(matches!(e("<!-- note -->"), Expr::ComputedComment(_)));
    assert!(matches!(e("<?target data?>"), Expr::ComputedPi(_, _)));
}

// ------------------------------------------------------------------ XUF

#[test]
fn xuf_insert_forms() {
    assert!(matches!(
        e("insert node <a/> into $t"),
        Expr::Insert { pos: InsertPos::Into, .. }
    ));
    assert!(matches!(
        e("insert nodes (1,2) as first into $t"),
        Expr::Insert { pos: InsertPos::FirstInto, .. }
    ));
    assert!(matches!(
        e("insert node <a/> as last into $t"),
        Expr::Insert { pos: InsertPos::LastInto, .. }
    ));
    assert!(matches!(
        e("insert node <a/> before $t"),
        Expr::Insert { pos: InsertPos::Before, .. }
    ));
    assert!(matches!(
        e("insert node <a/> after $t"),
        Expr::Insert { pos: InsertPos::After, .. }
    ));
}

#[test]
fn xuf_delete_replace_rename() {
    assert!(matches!(e("delete node $t"), Expr::Delete(_)));
    assert!(matches!(e("delete nodes $t/x"), Expr::Delete(_)));
    assert!(matches!(
        e("replace node $t with <a/>"),
        Expr::Replace { value_of: false, .. }
    ));
    assert!(matches!(
        e("replace value of node $t with 'v'"),
        Expr::Replace { value_of: true, .. }
    ));
    assert!(matches!(e("rename node $t as 'nn'"), Expr::Rename { .. }));
}

#[test]
fn xuf_transform() {
    match e("copy $c := $x modify delete node $c/a return $c") {
        Expr::Transform { copies, .. } => assert_eq!(copies.len(), 1),
        other => panic!("bad ast {other:?}"),
    }
}

#[test]
fn keywords_still_usable_as_names() {
    // `delete` not followed by node/nodes is a plain path step.
    assert!(matches!(e("$x/delete"), Expr::Path { .. }));
    // `if` without '(' is a name test.
    assert!(matches!(e("$x/if"), Expr::Path { .. }));
}

// ------------------------------------------------------------ statements

fn block_of(src: &str) -> Block {
    match m(src).body {
        QueryBody::Block(b) => b,
        other => panic!("expected block body, got {other:?}"),
    }
}

#[test]
fn hello_world_program() {
    // Verbatim from the paper (§III.B.7), lowercased keywords.
    let b = block_of("{ return value \"Hello, World\"; }");
    assert_eq!(b.statements.len(), 1);
    assert!(matches!(&b.statements[0], Statement::Return(_)));
}

#[test]
fn block_declarations() {
    let b = block_of("{ declare $y, $x := 3; set $y := $x; }");
    assert_eq!(b.decls.len(), 2);
    assert!(b.decls[0].init.is_none());
    assert!(b.decls[1].init.is_some());
    assert!(matches!(&b.statements[0], Statement::Set { .. }));
}

#[test]
fn block_declaration_with_type() {
    let b = block_of("{ declare $backupCnt as xs:integer := 0; }");
    assert_eq!(
        b.decls[0].ty,
        Some(SequenceType::Of(
            ItemType::Atomic(xdm::atomic::AtomicType::Integer),
            Occurrence::One
        ))
    );
}

#[test]
fn while_statement_from_paper() {
    // The §III.B.10 example.
    let b = block_of(
        "{ declare $y, $x := 3;\n\
           while ($x lt 100) {\n\
             fn:trace($x);\n\
             set $y := ($y, $x);\n\
             set $x := $x * 2;\n\
           }\n\
         }",
    );
    match &b.statements[0] {
        Statement::While { body, .. } => assert_eq!(body.statements.len(), 3),
        other => panic!("bad statement {other:?}"),
    }
}

#[test]
fn iterate_statement() {
    let b = block_of("{ iterate $x at $i over (1,2,3) { set $s := $x; } }");
    match &b.statements[0] {
        Statement::Iterate { pos, body, .. } => {
            assert!(pos.is_some());
            assert_eq!(body.statements.len(), 1);
        }
        other => panic!("bad statement {other:?}"),
    }
}

#[test]
fn if_statement_with_else() {
    let b = block_of("{ if ($x) then set $y := 1; else set $y := 2; }");
    match &b.statements[0] {
        Statement::If { els, .. } => assert!(els.is_some()),
        other => panic!("bad statement {other:?}"),
    }
}

#[test]
fn if_statement_with_block_branches() {
    let b = block_of("{ if ($x) then { set $y := 1; } else { set $y := 2; } }");
    assert!(matches!(&b.statements[0], Statement::If { .. }));
}

#[test]
fn try_catch_from_paper() {
    // §III.B.13 example.
    let b = block_of(
        "declare namespace udp = \"urn:udp\";\n\
         { try {\n\
             udp:dothis( );\n\
             udp:dothat( );\n\
             set $x := $y div 0;\n\
             return value $x;\n\
           } catch (*:* into $e, $m) {\n\
             fn:trace($e, $m);\n\
             return value \"Error\";\n\
           }\n\
         }",
    );
    // udp is undeclared… so this would fail. Use declared prefix.
    match &b.statements[0] {
        Statement::Try { body, catches } => {
            assert_eq!(body.statements.len(), 4);
            assert_eq!(catches.len(), 1);
            assert_eq!(catches[0].into_vars.len(), 2);
            assert_eq!(catches[0].test, NodeTest::AnyName);
        }
        other => panic!("bad statement {other:?}"),
    }
}

#[test]
fn continue_break() {
    let b = block_of("{ while (1) { continue(); break(); } }");
    match &b.statements[0] {
        Statement::While { body, .. } => {
            assert!(matches!(body.statements[0], Statement::Continue));
            assert!(matches!(body.statements[1], Statement::Break));
        }
        other => panic!("bad statement {other:?}"),
    }
}

#[test]
fn update_statement_classified() {
    let b = block_of("{ delete node $x/a; }");
    assert!(matches!(&b.statements[0], Statement::Update(_)));
}

#[test]
fn procedure_block_as_value() {
    let b = block_of("{ set $x := procedure { return value 5; }; }");
    match &b.statements[0] {
        Statement::Set { value: ValueStatement::ProcedureBlock(pb), .. } => {
            assert_eq!(pb.statements.len(), 1);
        }
        other => panic!("bad statement {other:?}"),
    }
}

#[test]
fn procedure_block_as_statement() {
    let b = block_of("{ procedure { return value 5; } }");
    assert!(matches!(&b.statements[0], Statement::ProcedureBlock(_)));
}

#[test]
fn nested_blocks() {
    let b = block_of("{ { set $x := 1; } { set $y := 2; } }");
    assert_eq!(b.statements.len(), 2);
    assert!(matches!(&b.statements[0], Statement::Block(_)));
}

// ---------------------------------------------------------------- prolog

#[test]
fn prolog_namespace_declarations() {
    let module = m("declare namespace cus = \"ld:CUSTOMER\"; cus:CUSTOMER()");
    assert_eq!(module.prolog.namespaces.len(), 1);
    match module.body {
        QueryBody::Expr(Expr::FunctionCall { name, .. }) => {
            assert_eq!(name.ns.as_deref(), Some("ld:CUSTOMER"));
        }
        other => panic!("bad body {other:?}"),
    }
}

#[test]
fn prolog_variable_declarations() {
    let module = m("declare variable $x as xs:integer := 5; declare variable $ext external; $x");
    assert_eq!(module.prolog.variables.len(), 2);
    assert!(module.prolog.variables[1].value.is_none());
}

#[test]
fn function_declaration() {
    let module = m(
        "declare function local:double($n as xs:integer) as xs:integer { $n * 2 }; \
         local:double(21)",
    );
    let f = &module.prolog.functions[0];
    assert_eq!(f.name.local, "double");
    assert_eq!(f.params.len(), 1);
    assert!(f.body.is_some());
    assert!(!f.updating);
}

#[test]
fn external_and_updating_functions() {
    let module = m(
        "declare namespace s = \"urn:s\"; \
         declare function s:read() as element()* external; \
         declare updating function s:mod($x) { delete node $x }; \
         1",
    );
    assert!(module.prolog.functions[0].body.is_none());
    assert!(module.prolog.functions[1].updating);
}

#[test]
fn procedure_declarations() {
    let module = m(
        "declare namespace t = \"urn:t\"; \
         declare procedure t:p($a) as xs:integer { return value $a; }; \
         declare readonly procedure t:q() { return value 1; }; \
         declare xqse function t:r() { return value 2; }; \
         declare procedure t:ext() external; \
         1",
    );
    let procs = &module.prolog.procedures;
    assert_eq!(procs.len(), 4);
    assert!(!procs[0].readonly);
    assert!(procs[1].readonly);
    assert!(procs[2].readonly, "declare xqse function is readonly");
    assert!(procs[3].body.is_none());
}

#[test]
fn default_element_namespace() {
    let module = m("declare default element namespace \"urn:d\"; <a/>");
    match module.body {
        QueryBody::Expr(Expr::DirectElement(el)) => {
            assert_eq!(el.name.ns.as_deref(), Some("urn:d"));
        }
        other => panic!("bad body {other:?}"),
    }
}

#[test]
fn option_declaration() {
    let module = m("declare option local:opt \"v\"; 1");
    assert_eq!(module.prolog.options.len(), 1);
}

#[test]
fn library_module_no_body() {
    let module = m("declare namespace t = \"urn:t\"; \
                    declare function t:f() { 1 };");
    assert!(matches!(module.body, QueryBody::None));
}

// ------------------------------------------------- the paper's listings

#[test]
fn paper_figure3_getprofile_parses() {
    // Figure 3, adapted only by declaring the namespaces the ALDSP IDE
    // would put in the data service file (and fixing the figure's
    // OCR-mangled closing tags).
    let src = r#"
declare namespace ns1 = "ld:CustomerProfile";
declare namespace tns = "ld:CustomerProfile";
declare namespace cus = "ld:db1/CUSTOMER";
declare namespace cre = "ld:db2/CREDIT_CARD";
declare namespace cre2 = "urn:creditrating/types";
declare namespace cre3 = "urn:creditrating";
declare function ns1:getProfile() as element(ns1:CustomerProfile)* {
  for $CUSTOMER in cus:CUSTOMER()
  return <tns:CustomerProfile>
             <CID>{fn:data($CUSTOMER/CID)}</CID>
             <LAST_NAME>{fn:data($CUSTOMER/LAST_NAME)}</LAST_NAME>
             <FIRST_NAME>{fn:data($CUSTOMER/FIRST_NAME)}</FIRST_NAME>
             <Orders>{
               for $ORDER in cus:getORDER($CUSTOMER)
               return <ORDER>
                         <OID>{fn:data($ORDER/OID)}</OID>
                         <CID>{fn:data($ORDER/CID)}</CID>
                         <ORDER_DATE>{fn:data($ORDER/ORDER_DATE)}</ORDER_DATE>
                         <TOTAL>{fn:data($ORDER/TOTAL_ORDER_AMOUNT)}</TOTAL>
                         <STATUS>{fn:data($ORDER/STATUS)}</STATUS>
                      </ORDER>
             }</Orders>
             <CreditCards>{
               for $CREDIT_CARD in cre:CREDIT_CARD()
               where $CUSTOMER/CID eq $CREDIT_CARD/CID
               return <CREDIT_CARD>
                         <CCID>{fn:data($CREDIT_CARD/CCID)}</CCID>
                         <CID>{fn:data($CREDIT_CARD/CID)}</CID>
                         <TYPE>{fn:data($CREDIT_CARD/CC_TYPE)}</TYPE>
                         <BRAND>{fn:data($CREDIT_CARD/CC_BRAND)}</BRAND>
                         <NUMBER>{fn:data($CREDIT_CARD/CC_NUMBER)}</NUMBER>
                         <EXP_DATE>{fn:data($CREDIT_CARD/EXP_DATE)}</EXP_DATE>
                      </CREDIT_CARD>
             }</CreditCards>
             {
               for $getCreditRatingResponse in cre3:getCreditRating(<cre2:getCreditRating>
                     <cre2:lastName>{fn:data($CUSTOMER/LAST_NAME)}</cre2:lastName>
                     <cre2:ssn>{fn:data($CUSTOMER/SSN)}</cre2:ssn>
                   </cre2:getCreditRating>)
               return <CreditRating>{fn:data($getCreditRatingResponse/cre2:value)}</CreditRating>
             }
        </tns:CustomerProfile>
};
declare function ns1:getProfileById($cid as xs:string) as element(ns1:CustomerProfile)* {
  for $CustomerProfile in ns1:getProfile()
  where $cid eq $CustomerProfile/CID
  return $CustomerProfile
};
"#;
    let module = m(src);
    assert_eq!(module.prolog.functions.len(), 2);
    assert_eq!(module.prolog.functions[0].name.local, "getProfile");
    assert_eq!(module.prolog.functions[1].params.len(), 1);
}

#[test]
fn paper_use_case_2_management_chain_parses() {
    let src = r#"
declare namespace tns = "ld:Employees";
declare namespace ens1 = "ld:emp1";
declare xqse function tns:getManagementChain($id as xs:string)
  as element(empl:Employee)*
{
  declare $mgrs as element(empl:Employee)*;
  declare $emp as element(empl:Employee)? := ens1:getByEmployeeID($id);
  while (fn:not(fn:empty($emp))) {
    set $emp := ens1:getByEmployeeID($emp/ManagerID);
    set $mgrs := ($mgrs, $emp);
  }
  return value ($mgrs);
};
"#;
    // `empl` prefix must be declared for element tests.
    let src = format!("declare namespace empl = \"urn:empl\";\n{src}");
    let module = m(&src);
    assert_eq!(module.prolog.procedures.len(), 1);
    assert!(module.prolog.procedures[0].readonly);
    let body = module.prolog.procedures[0].body.as_ref().unwrap();
    assert_eq!(body.decls.len(), 2);
    assert!(matches!(body.statements[0], Statement::While { .. }));
    assert!(matches!(body.statements[1], Statement::Return(_)));
}

#[test]
fn paper_use_case_3_etl_parses() {
    let src = r#"
declare namespace tns = "ld:Employees";
declare namespace ens1 = "ld:emp1";
declare namespace emp2 = "ld:emp2";
declare namespace empl = "urn:empl";
declare function tns:transformToEMP2($emp as element(empl:Employee)?)
  as element(emp2:EMP2)?
{
  for $emp1 in $emp return <emp2:EMP2>
    <EmpId>{fn:data($emp1/EmployeeID)}</EmpId>
    <FirstName>{fn:tokenize(fn:data($emp1/Name),' ')[1]}</FirstName>
    <LastName>{fn:tokenize(fn:data($emp1/Name),' ')[2]}</LastName>
    <MgrName>{fn:data(ens1:getByEmployeeID($emp1/ManagerID)/Name)}</MgrName>
    <Dept>{fn:data($emp1/DeptNo)}</Dept>
  </emp2:EMP2>
};
declare procedure tns:copyAllToEMP2() as xs:integer
{
  declare $backupCnt as xs:integer := 0;
  declare $emp2 as element(emp2:EMP2)?;
  iterate $emp1 over ens1:getAll() {
    set $emp2 := tns:transformToEMP2($emp1);
    emp2:createEMP2($emp2);
    set $backupCnt := $backupCnt + 1;
  }
  return value ($backupCnt);
};
"#;
    let module = m(src);
    assert_eq!(module.prolog.functions.len(), 1);
    assert_eq!(module.prolog.procedures.len(), 1);
    let p = &module.prolog.procedures[0];
    assert!(!p.readonly);
    let body = p.body.as_ref().unwrap();
    assert!(matches!(body.statements[0], Statement::Iterate { .. }));
}

#[test]
fn paper_use_case_4_replicating_create_parses() {
    let src = r#"
declare namespace tns = "ld:Employees";
declare namespace bns = "ld:Employees";
declare namespace emp2 = "ld:emp2";
declare namespace empl = "urn:empl";
declare procedure tns:create($newEmps as element(empl:Employee)*)
  as element(empl:ReplicatedEmployee_KEY)*
{
  iterate $newEmp over $newEmps {
    declare $newEmp2 as element(emp2:EMP2)? := bns:transformToEMP2($newEmp);
    try { tns:createEmployee($newEmp); }
    catch (* into $err, $msg) {
      fn:error(xs:QName("PRIMARY_CREATE_FAILURE"),
        fn:concat("Primary create failed due to: ", $err, $msg));
    };
    try { emp2:createEMP2($newEmp2); }
    catch (* into $err, $msg) {
      fn:error(xs:QName("SECONDARY_CREATE_FAILURE"),
        fn:concat("Backup create failed due to: ", $err, $msg));
    };
  }
};
"#;
    let module = m(src);
    let p = &module.prolog.procedures[0];
    let body = p.body.as_ref().unwrap();
    match &body.statements[0] {
        Statement::Iterate { body: loop_body, .. } => {
            // declare inside the iterate block + two try statements
            assert_eq!(loop_body.decls.len(), 1);
            assert_eq!(loop_body.statements.len(), 2);
            assert!(matches!(loop_body.statements[0], Statement::Try { .. }));
        }
        other => panic!("bad statement {other:?}"),
    }
}

#[test]
fn paper_use_case_1_user_defined_delete_parses() {
    // §III.D.1 (the listing is described but not shown in full; this
    // is the natural reconstruction).
    let src = r#"
declare namespace tns = "ld:Employees";
declare namespace ens1 = "ld:emp1";
declare namespace empl = "urn:empl";
declare procedure tns:deleteByEmployeeID($id as xs:string) as empty-sequence()
{
  declare $emp as element(empl:Employee)? := ens1:getByEmployeeID($id);
  if (fn:not(fn:empty($emp))) then ens1:deleteEmployee($emp);
}
;
"#;
    let module = m(src);
    assert_eq!(module.prolog.procedures.len(), 1);
    assert_eq!(
        module.prolog.procedures[0].return_type,
        Some(SequenceType::Empty)
    );
}

// ------------------------------------------------------------- errors

#[test]
fn parse_errors() {
    for bad in [
        "1 +",
        "for $x return $x",           // missing in
        "if (1) then 2",              // missing else (expression form)
        "<a>",                        // unterminated constructor
        "<a></b>",                    // mismatched tags
        "$x/",                        // dangling slash
        "{ set $x = 1; }",            // '=' instead of ':='
        "{ return 5; }",              // return without 'value'
        "{ try { } }",                // try without catch
        "declare procedure p() { };", // (fine actually?) — see below
        "fn:concat(1,",               // unterminated args
        "1 2",                        // trailing garbage
    ] {
        // `declare procedure p() { };` is legal; skip it.
        if bad.starts_with("declare procedure") {
            assert!(parse_module(bad).is_ok());
            continue;
        }
        assert!(parse_module(bad).is_err(), "should reject {bad:?}");
    }
}

#[test]
fn undeclared_prefix_is_an_error() {
    assert!(parse_expr("nosuch:f()", &[]).is_err());
    assert!(parse_expr("$nosuch:v", &[]).is_err());
    assert!(parse_expr("<nosuch:e/>", &[]).is_err());
}

#[test]
fn error_positions_include_line_numbers() {
    let err = parse_module("1 +\n+\n]").unwrap_err();
    assert!(err.message.contains("parse error at"), "{}", err.message);
}
