//! XQSE statement and prolog parsing (child module of [`super`] so it
//! shares the parser's internals).
//!
//! Implements the appendix EBNF of the paper: prolog with
//! `declare [readonly] procedure` (plus the ALDSP 3.0 alternate
//! spelling `declare xqse function`), the block grammar with its
//! leading variable declarations, and every statement form.

use xdm::error::XdmResult;
use xdm::qname::QName;

use crate::ast::*;
use crate::lexer::Tok;

use super::{NameCtx, Parser};

impl<'a> Parser<'a> {
    /// Parse a whole module: prolog then query body (expression or
    /// block), then EOF.
    pub(crate) fn parse_module(&mut self) -> XdmResult<Module> {
        let prolog = self.parse_prolog()?;
        let body = if self.peek()?.tok == Tok::Eof {
            QueryBody::None
        } else if self.peek()?.tok == Tok::LBrace {
            QueryBody::Block(self.parse_block()?)
        } else {
            QueryBody::Expr(self.parse_expr_top()?)
        };
        self.expect_eof()?;
        Ok(Module { prolog, body })
    }

    fn parse_prolog(&mut self) -> XdmResult<Prolog> {
        let mut prolog = Prolog::default();
        loop {
            if !self.peek()?.tok.is_name("declare") {
                break;
            }
            // Inside a block body, `declare $x` is a block decl — but
            // at prolog level `declare` is always followed by a
            // keyword name, so a `$` means we've gone too far.
            let t2 = self.peek2()?.tok.clone();
            let Tok::Name(None, what) = t2 else { break };
            match what.as_str() {
                "namespace" => {
                    self.next()?;
                    self.next()?;
                    let t = self.next()?;
                    let Tok::Name(None, prefix) = t.tok else {
                        return Err(self.err_at(t.start, "expected namespace prefix"));
                    };
                    self.expect_tok(Tok::Eq)?;
                    let uri = self.parse_string_literal()?;
                    self.bind_ns(&prefix, &uri);
                    prolog.namespaces.push((prefix, uri));
                    self.expect_tok(Tok::Semi)?;
                }
                "default" => {
                    self.next()?;
                    self.next()?;
                    if self.eat_kw("element")? {
                        self.expect_kw("namespace")?;
                        let uri = self.parse_string_literal()?;
                        self.default_element_ns =
                            if uri.is_empty() { None } else { Some(uri.clone()) };
                        prolog.default_element_ns = Some(uri);
                    } else {
                        self.expect_kw("function")?;
                        self.expect_kw("namespace")?;
                        let uri = self.parse_string_literal()?;
                        self.default_function_ns = uri.clone();
                        prolog.default_function_ns = Some(uri);
                    }
                    self.expect_tok(Tok::Semi)?;
                }
                "boundary-space" => {
                    self.next()?;
                    self.next()?;
                    if self.eat_kw("preserve")? {
                        self.boundary_space_preserve = true;
                        prolog.boundary_space_preserve = true;
                    } else {
                        self.expect_kw("strip")?;
                    }
                    self.expect_tok(Tok::Semi)?;
                }
                "variable" => {
                    self.next()?;
                    self.next()?;
                    let name = self.parse_var_name()?;
                    let ty = if self.eat_kw("as")? {
                        Some(self.parse_sequence_type()?)
                    } else {
                        None
                    };
                    let value = if self.eat_kw("external")? {
                        None
                    } else {
                        self.expect_tok(Tok::ColonEq)?;
                        Some(self.parse_expr_single()?)
                    };
                    prolog.variables.push(VarDecl { name, ty, value });
                    self.expect_tok(Tok::Semi)?;
                }
                "function" => {
                    self.next()?;
                    self.next()?;
                    prolog.functions.push(self.parse_function_decl(false)?);
                    self.expect_tok(Tok::Semi)?;
                }
                "updating" => {
                    self.next()?;
                    self.next()?;
                    self.expect_kw("function")?;
                    prolog.functions.push(self.parse_function_decl(true)?);
                    self.expect_tok(Tok::Semi)?;
                }
                "procedure" => {
                    self.next()?;
                    self.next()?;
                    prolog.procedures.push(self.parse_procedure_decl(false)?);
                    self.expect_tok(Tok::Semi)?;
                }
                "readonly" => {
                    self.next()?;
                    self.next()?;
                    self.expect_kw("procedure")?;
                    prolog.procedures.push(self.parse_procedure_decl(true)?);
                    self.expect_tok(Tok::Semi)?;
                }
                // ALDSP 3.0 alternate syntax: `declare xqse function`
                // is a readonly procedure (§III.B.9 of the paper).
                "xqse" => {
                    self.next()?;
                    self.next()?;
                    self.expect_kw("function")?;
                    prolog.procedures.push(self.parse_procedure_decl(true)?);
                    self.expect_tok(Tok::Semi)?;
                }
                "option" => {
                    self.next()?;
                    self.next()?;
                    let q = self.parse_qname(NameCtx::Plain)?;
                    let v = self.parse_string_literal()?;
                    prolog.options.push((q, v));
                    self.expect_tok(Tok::Semi)?;
                }
                _ => break,
            }
        }
        Ok(prolog)
    }

    fn parse_string_literal(&mut self) -> XdmResult<String> {
        let t = self.next()?;
        match t.tok {
            Tok::Str(s) => Ok(s),
            other => {
                Err(self.err_at(t.start, format!("expected string literal, found {other:?}")))
            }
        }
    }

    fn parse_params(&mut self) -> XdmResult<Vec<Param>> {
        self.expect_tok(Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek()?.tok != Tok::RParen {
            loop {
                let name = self.parse_var_name()?;
                let ty = if self.eat_kw("as")? {
                    Some(self.parse_sequence_type()?)
                } else {
                    None
                };
                params.push(Param { name, ty });
                if !matches!(self.peek()?.tok, Tok::Comma) {
                    break;
                }
                self.next()?;
            }
        }
        self.expect_tok(Tok::RParen)?;
        Ok(params)
    }

    fn parse_function_decl(&mut self, updating: bool) -> XdmResult<FunctionDecl> {
        let name = self.parse_qname(NameCtx::Function)?;
        let params = self.parse_params()?;
        let return_type = if self.eat_kw("as")? {
            Some(self.parse_sequence_type()?)
        } else {
            None
        };
        let body = if self.eat_kw("external")? {
            None
        } else {
            self.expect_tok(Tok::LBrace)?;
            let e = self.parse_expr_top()?;
            self.expect_tok(Tok::RBrace)?;
            Some(e)
        };
        Ok(FunctionDecl { name, params, return_type, body, updating })
    }

    fn parse_procedure_decl(&mut self, readonly: bool) -> XdmResult<ProcedureDecl> {
        let name = self.parse_qname(NameCtx::Function)?;
        let params = self.parse_params()?;
        let return_type = if self.eat_kw("as")? {
            Some(self.parse_sequence_type()?)
        } else {
            None
        };
        let body = if self.eat_kw("external")? {
            None
        } else {
            Some(self.parse_block()?)
        };
        Ok(ProcedureDecl { name, params, return_type, body, readonly })
    }

    // -- blocks and statements ------------------------------------------

    /// BLOCK ::= "{" (BlockDecl ";")* ((SimpleStatement ";") |
    ///            BlockStatement (";")?)* "}"
    pub(crate) fn parse_block(&mut self) -> XdmResult<Block> {
        self.expect_tok(Tok::LBrace)?;
        let mut block = Block::default();
        // Leading block variable declarations.
        while self.peek()?.tok.is_name("declare")
            && matches!(self.peek2()?.tok, Tok::Var(_, _))
        {
            self.next()?; // declare
            loop {
                let var = self.parse_var_name()?;
                let ty = if self.eat_kw("as")? {
                    Some(self.parse_sequence_type()?)
                } else {
                    None
                };
                let init = if self.peek()?.tok == Tok::ColonEq {
                    self.next()?;
                    Some(self.parse_value_statement()?)
                } else {
                    None
                };
                block.decls.push(BlockVarDecl { var, ty, init });
                if !matches!(self.peek()?.tok, Tok::Comma) {
                    break;
                }
                self.next()?;
            }
            self.expect_tok(Tok::Semi)?;
        }
        // Statements.
        while self.peek()?.tok != Tok::RBrace {
            let (stmt, is_block_stmt) = self.parse_statement()?;
            if is_block_stmt {
                // Optional trailing semicolon.
                if self.peek()?.tok == Tok::Semi {
                    self.next()?;
                }
            } else {
                self.expect_tok(Tok::Semi)?;
            }
            block.statements.push(stmt);
        }
        self.expect_tok(Tok::RBrace)?;
        Ok(block)
    }

    /// Returns the statement and whether it is a "block statement"
    /// (whose trailing semicolon is optional per the EBNF).
    pub(crate) fn parse_statement(&mut self) -> XdmResult<(Statement, bool)> {
        let t = self.peek()?.clone();
        match &t.tok {
            Tok::LBrace => Ok((Statement::Block(self.parse_block()?), true)),
            Tok::Name(None, kw) => match kw.as_str() {
                "set" if matches!(self.peek2()?.tok, Tok::Var(_, _)) => {
                    self.next()?;
                    let var = self.parse_var_name()?;
                    self.expect_tok(Tok::ColonEq)?;
                    let value = self.parse_value_statement()?;
                    Ok((Statement::Set { var, value }, false))
                }
                "return" if self.peek2()?.tok.is_name("value") => {
                    self.next()?;
                    self.next()?;
                    let value = self.parse_value_statement()?;
                    Ok((Statement::Return(value), false))
                }
                "if" if self.peek2()?.tok == Tok::LParen => {
                    self.next()?;
                    self.expect_tok(Tok::LParen)?;
                    let cond = self.parse_expr_top()?;
                    self.expect_tok(Tok::RParen)?;
                    self.expect_kw("then")?;
                    let (then, then_is_block) = self.parse_statement()?;
                    // Lenient reading: permit `then <simple>; else` —
                    // a semicolon directly before `else` is absorbed.
                    if self.peek()?.tok == Tok::Semi && self.peek2()?.tok.is_name("else")
                    {
                        self.next()?;
                    }
                    // `else` binds to the nearest if.
                    let (els, last_block) = if self.peek()?.tok.is_name("else") {
                        self.next()?;
                        let (e, b) = self.parse_statement()?;
                        (Some(Box::new(e)), b)
                    } else {
                        (None, then_is_block)
                    };
                    // An if whose final branch is a block statement may
                    // omit the semicolon (practical reading of the
                    // paper's examples).
                    Ok((
                        Statement::If { cond, then: Box::new(then), els },
                        last_block,
                    ))
                }
                "while" if self.peek2()?.tok == Tok::LParen => {
                    self.next()?;
                    self.expect_tok(Tok::LParen)?;
                    let cond = self.parse_expr_top()?;
                    self.expect_tok(Tok::RParen)?;
                    let body = self.parse_block()?;
                    Ok((Statement::While { cond, body }, true))
                }
                "iterate" if matches!(self.peek2()?.tok, Tok::Var(_, _)) => {
                    self.next()?;
                    let var = self.parse_var_name()?;
                    let pos = if self.eat_kw("at")? {
                        Some(self.parse_var_name()?)
                    } else {
                        None
                    };
                    self.expect_kw("over")?;
                    let over = self.parse_value_statement()?;
                    let body = self.parse_block()?;
                    Ok((Statement::Iterate { var, pos, over, body }, true))
                }
                "try" if self.peek2()?.tok == Tok::LBrace => {
                    self.next()?;
                    let body = self.parse_block()?;
                    let mut catches = Vec::new();
                    while self.peek()?.tok.is_name("catch") {
                        self.next()?;
                        self.expect_tok(Tok::LParen)?;
                        let test = self.parse_catch_name_test()?;
                        let mut into_vars = Vec::new();
                        if self.eat_kw("into")? {
                            loop {
                                into_vars.push(self.parse_var_name()?);
                                if !matches!(self.peek()?.tok, Tok::Comma) {
                                    break;
                                }
                                self.next()?;
                            }
                        }
                        self.expect_tok(Tok::RParen)?;
                        let cbody = self.parse_block()?;
                        catches.push(CatchClause { test, into_vars, body: cbody });
                    }
                    if catches.is_empty() {
                        return Err(
                            self.err_at(t.start, "try requires at least one catch clause")
                        );
                    }
                    Ok((Statement::Try { body, catches }, true))
                }
                "continue" if self.peek2()?.tok == Tok::LParen => {
                    self.next()?;
                    self.expect_tok(Tok::LParen)?;
                    self.expect_tok(Tok::RParen)?;
                    Ok((Statement::Continue, false))
                }
                "break" if self.peek2()?.tok == Tok::LParen => {
                    self.next()?;
                    self.expect_tok(Tok::LParen)?;
                    self.expect_tok(Tok::RParen)?;
                    Ok((Statement::Break, false))
                }
                "procedure" if self.peek2()?.tok == Tok::LBrace => {
                    self.next()?;
                    let b = self.parse_block()?;
                    Ok((Statement::ProcedureBlock(b), true))
                }
                _ => self.parse_expr_statement(),
            },
            _ => self.parse_expr_statement(),
        }
    }

    fn parse_expr_statement(&mut self) -> XdmResult<(Statement, bool)> {
        let e = self.parse_expr_single()?;
        if e.is_syntactically_updating() {
            Ok((Statement::Update(e), false))
        } else {
            Ok((Statement::ExprStatement(e), false))
        }
    }

    /// ValueStatement ::= NonUpdatingExprSingle | ProcedureCall |
    /// ProcedureBlock. (Procedure calls parse as function calls; the
    /// engine resolves them.)
    pub(crate) fn parse_value_statement(&mut self) -> XdmResult<ValueStatement> {
        if self.peek()?.tok.is_name("procedure") && self.peek2()?.tok == Tok::LBrace {
            self.next()?;
            let b = self.parse_block()?;
            Ok(ValueStatement::ProcedureBlock(b))
        } else {
            Ok(ValueStatement::Expr(self.parse_expr_single()?))
        }
    }

    /// The NameTest of a catch clause: `*`, `*:*`, `*:local`,
    /// `prefix:*`, or a QName matching the error code.
    fn parse_catch_name_test(&mut self) -> XdmResult<NodeTest> {
        let t = self.next()?;
        match t.tok {
            Tok::Star => Ok(NodeTest::AnyName),
            Tok::FullWildcard => Ok(NodeTest::AnyName),
            Tok::LocalWildcard(l) => Ok(NodeTest::AnyNs(l)),
            Tok::PrefixWildcard(p) => {
                let uri = self.resolve_prefix(&p).ok_or_else(|| {
                    self.err_at(t.start, format!("undeclared namespace prefix {p:?}"))
                })?;
                Ok(NodeTest::NsWildcard(Some(uri)))
            }
            Tok::Name(p, l) => {
                let q = self.resolve_name(p.as_deref(), &l, NameCtx::Plain, t.start)?;
                Ok(NodeTest::Name(q))
            }
            other => {
                Err(self.err_at(t.start, format!("expected name test, found {other:?}")))
            }
        }
    }
}

/// Convenience for tests: the QName a catch test would match.
#[allow(dead_code)]
pub(crate) fn error_qname(local: &str) -> QName {
    QName::new(local)
}
