//! Crash-consistent coordinator journal for distributed (2PC) updates.
//!
//! The paper's atomic blocks (§III.C) and the ALDSP update path promise
//! that a multi-source `submit` commits everywhere or nowhere. Without
//! a durable record of the coordinator's protocol progress, that
//! promise only holds while the process stays alive: a crash between
//! `prepare` and `commit` leaves sources silently divergent. This
//! module is the missing write-ahead half — an append-only,
//! checksummed log the coordinator writes at each protocol point, and
//! that [`crate::service::DataSpace::recover`] replays after a crash
//! to resolve every in-doubt transaction (presumed abort) and finish
//! every decided one.
//!
//! Record sequence for a happy-path transaction over sources A, B:
//!
//! ```text
//! B <xid> A,B          Begin        — branches enrolled
//! P <xid> A            Prepared     — branch A voted yes
//! P <xid> B            Prepared     — branch B voted yes
//! D <xid>              CommitDecision — the point of no return
//! C <xid> A            Committed    — branch A applied
//! C <xid> B            Committed    — branch B applied
//! ```
//!
//! An aborting transaction ends with `A <xid>` instead of `D`. Each
//! line carries an FNV-1a-64 checksum suffix so a torn tail (the crash
//! happened *during* an append) is detected and skipped rather than
//! misread.
//!
//! The journal is an in-memory ring by default (bounded, like the
//! fault injector's event log) with optional file backing: with a
//! path attached, every append is written through and flushed before
//! the protocol proceeds — write-ahead in the textbook sense — and
//! [`CoordinatorJournal::open`] reloads it, tolerating a damaged
//! suffix.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::{BTreeMap, VecDeque};
use std::io::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;
use xdm::error::XdmResult;

use crate::errors::AldspCode;

/// Default ring capacity: enough for thousands of in-flight
/// transactions, bounded so soak runs don't grow without limit.
/// Completed transactions are pruned on [`CoordinatorJournal::scan`]
/// checkpoints, so the ring rarely nears this in practice.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 8192;

/// One coordinator log record. `xid` is the distributed transaction
/// id (the same id used for every branch's `TxId`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XaRecord {
    /// Transaction began; `branches` are the enrolled source names in
    /// protocol order.
    Begin { xid: u64, branches: Vec<String> },
    /// The named branch prepared (voted yes) and holds locks.
    Prepared { xid: u64, source: String },
    /// The commit decision — the protocol's point of no return. After
    /// this record exists, recovery rolls *forward*; before it,
    /// recovery presumes abort.
    CommitDecision { xid: u64 },
    /// The named branch's prepared writes were applied.
    Committed { xid: u64, source: String },
    /// The transaction aborted (voluntarily, or resolved by recovery).
    Aborted { xid: u64 },
}

impl XaRecord {
    /// The transaction this record belongs to.
    pub fn xid(&self) -> u64 {
        match self {
            XaRecord::Begin { xid, .. }
            | XaRecord::Prepared { xid, .. }
            | XaRecord::CommitDecision { xid }
            | XaRecord::Committed { xid, .. }
            | XaRecord::Aborted { xid } => *xid,
        }
    }

    /// Serialize to the record's line form, *without* the checksum
    /// suffix. Branch/source names are sanitized: the format is
    /// whitespace-delimited, so embedded spaces or commas would
    /// corrupt the frame.
    fn body(&self) -> String {
        match self {
            XaRecord::Begin { xid, branches } => {
                let names: Vec<String> =
                    branches.iter().map(|b| sanitize(b)).collect();
                format!("B {xid} {}", names.join(","))
            }
            XaRecord::Prepared { xid, source } => format!("P {xid} {}", sanitize(source)),
            XaRecord::CommitDecision { xid } => format!("D {xid}"),
            XaRecord::Committed { xid, source } => format!("C {xid} {}", sanitize(source)),
            XaRecord::Aborted { xid } => format!("A {xid}"),
        }
    }

    /// Serialize to the full journal line: `<body> #<fnv64 hex>`.
    pub fn to_line(&self) -> String {
        let body = self.body();
        format!("{body} #{:016x}", fnv1a64(body.as_bytes()))
    }

    /// Parse a journal line, verifying its checksum. Returns
    /// `aldsp:XA_JOURNAL_CORRUPT` on any mismatch or malformed frame.
    pub fn from_line(line: &str) -> XdmResult<XaRecord> {
        let corrupt = |why: &str| {
            AldspCode::XaJournalCorrupt.error(format!("journal record {why}: {line:?}"))
        };
        let (body, sum_hex) =
            line.rsplit_once(" #").ok_or_else(|| corrupt("missing checksum"))?;
        let sum = u64::from_str_radix(sum_hex, 16).map_err(|_| corrupt("bad checksum field"))?;
        if sum != fnv1a64(body.as_bytes()) {
            return Err(corrupt("checksum mismatch"));
        }
        let mut parts = body.split(' ');
        let tag = parts.next().ok_or_else(|| corrupt("empty"))?;
        let xid: u64 = parts
            .next()
            .and_then(|x| x.parse().ok())
            .ok_or_else(|| corrupt("bad xid"))?;
        let rest = parts.next();
        if parts.next().is_some() {
            return Err(corrupt("trailing fields"));
        }
        match (tag, rest) {
            ("B", Some(names)) => Ok(XaRecord::Begin {
                xid,
                branches: names.split(',').map(str::to_string).collect(),
            }),
            ("P", Some(source)) => Ok(XaRecord::Prepared { xid, source: source.to_string() }),
            ("D", None) => Ok(XaRecord::CommitDecision { xid }),
            ("C", Some(source)) => Ok(XaRecord::Committed { xid, source: source.to_string() }),
            ("A", None) => Ok(XaRecord::Aborted { xid }),
            _ => Err(corrupt("unknown tag/arity")),
        }
    }
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_whitespace() || c == ',' { '_' } else { c }).collect()
}

/// FNV-1a 64-bit — tiny, dependency-free, and plenty for detecting
/// torn writes (this is corruption *detection*, not cryptography).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Counters describing the journal's health, surfaced through
/// `DataSpace::recover` and `xqsh --explain`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended since construction (retained + evicted).
    pub appended: u64,
    /// Records evicted from the in-memory ring at capacity.
    pub evicted: u64,
    /// Corrupt lines skipped while loading the file backing.
    pub corrupt_skipped: u64,
}

/// The protocol state of one transaction, derived by
/// [`CoordinatorJournal::scan`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxJournalState {
    /// Branch names from the `Begin` record, in protocol order.
    pub branches: Vec<String>,
    /// Branches with a `Prepared` record.
    pub prepared: Vec<String>,
    /// True once a `CommitDecision` record exists.
    pub decided: bool,
    /// Branches with a `Committed` record.
    pub committed: Vec<String>,
    /// True once an `Aborted` record exists.
    pub aborted: bool,
}

impl TxJournalState {
    /// A decided transaction whose every branch has a `Committed`
    /// record — nothing left to do.
    pub fn fully_committed(&self) -> bool {
        self.decided && self.branches.iter().all(|b| self.committed.contains(b))
    }

    /// Resolved one way or the other: fully committed, or aborted.
    pub fn resolved(&self) -> bool {
        self.aborted || self.fully_committed()
    }

    /// In doubt: begun, no decision, not yet aborted. Presumed abort
    /// applies.
    pub fn in_doubt(&self) -> bool {
        !self.decided && !self.aborted
    }
}

#[derive(Debug, Default)]
struct JournalInner {
    ring: VecDeque<XaRecord>,
    capacity: usize,
    stats: JournalStats,
    /// Write-through file backing; `None` for in-memory-only.
    file: Option<std::fs::File>,
}

/// Append-only, checksummed coordinator log. Clones share state (the
/// [`crate::rel::Database`] idiom), so the `DataSpace`, the 2PC
/// driver, and tests all observe one journal.
#[derive(Debug, Clone, Default)]
pub struct CoordinatorJournal {
    inner: Arc<Mutex<JournalInner>>,
}

impl CoordinatorJournal {
    /// An empty in-memory journal with the default ring capacity.
    pub fn new() -> CoordinatorJournal {
        CoordinatorJournal::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// An empty in-memory journal holding at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> CoordinatorJournal {
        CoordinatorJournal {
            inner: Arc::new(Mutex::new(JournalInner {
                ring: VecDeque::new(),
                capacity,
                stats: JournalStats::default(),
                file: None,
            })),
        }
    }

    /// Open (or create) a file-backed journal at `path`, replaying any
    /// existing records into the ring. Lines that fail their checksum
    /// — a torn tail from a crash mid-append — are skipped and counted
    /// in [`JournalStats::corrupt_skipped`].
    pub fn open(path: impl AsRef<std::path::Path>) -> XdmResult<CoordinatorJournal> {
        let path = path.as_ref();
        let io_err = |what: &str, e: std::io::Error| {
            AldspCode::XaJournalCorrupt
                .error(format!("cannot {what} journal {}: {e}", path.display()))
        };
        let mut ring = VecDeque::new();
        let mut corrupt_skipped = 0u64;
        if path.exists() {
            let text =
                std::fs::read_to_string(path).map_err(|e| io_err("read", e))?;
            for line in text.lines() {
                if line.is_empty() {
                    continue;
                }
                match XaRecord::from_line(line) {
                    Ok(rec) => ring.push_back(rec),
                    Err(_) => corrupt_skipped += 1,
                }
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err("open", e))?;
        let appended = ring.len() as u64;
        Ok(CoordinatorJournal {
            inner: Arc::new(Mutex::new(JournalInner {
                ring,
                capacity: usize::MAX, // file-backed: the file is the bound
                stats: JournalStats { appended, evicted: 0, corrupt_skipped },
                file: Some(file),
            })),
        })
    }

    /// Append one record. With file backing, the line is written and
    /// flushed *before* this returns — the protocol must not advance
    /// past an unjournaled point.
    pub fn append(&self, record: XaRecord) -> XdmResult<()> {
        let mut inner = self.inner.lock();
        if let Some(file) = inner.file.as_mut() {
            let line = record.to_line();
            writeln!(file, "{line}")
                .and_then(|()| file.flush())
                .map_err(|e| {
                    AldspCode::XaJournalCorrupt.error(format!("journal append failed: {e}"))
                })?;
        }
        if inner.ring.len() >= inner.capacity {
            inner.ring.pop_front();
            inner.stats.evicted += 1;
        }
        inner.ring.push_back(record);
        inner.stats.appended += 1;
        Ok(())
    }

    /// Derive per-transaction protocol state from the retained
    /// records, in first-seen order.
    pub fn scan(&self) -> BTreeMap<u64, TxJournalState> {
        let inner = self.inner.lock();
        let mut map: BTreeMap<u64, TxJournalState> = BTreeMap::new();
        for rec in &inner.ring {
            let st = map.entry(rec.xid()).or_default();
            match rec {
                XaRecord::Begin { branches, .. } => st.branches = branches.clone(),
                XaRecord::Prepared { source, .. } => {
                    if !st.prepared.contains(source) {
                        st.prepared.push(source.clone());
                    }
                }
                XaRecord::CommitDecision { .. } => st.decided = true,
                XaRecord::Committed { source, .. } => {
                    if !st.committed.contains(source) {
                        st.committed.push(source.clone());
                    }
                }
                XaRecord::Aborted { .. } => st.aborted = true,
            }
        }
        map
    }

    /// True when every journaled transaction is resolved — the
    /// "clean journal" a no-op `recover()` asserts against.
    pub fn is_clean(&self) -> bool {
        self.scan().values().all(TxJournalState::resolved)
    }

    /// Drop records of resolved transactions from the in-memory ring
    /// (a checkpoint). File backing is left as-is: the file is an
    /// append-only history; compaction would be a rewrite, which a
    /// crash could tear. Returns how many records were pruned.
    pub fn checkpoint(&self) -> usize {
        let resolved: Vec<u64> = self
            .scan()
            .iter()
            .filter(|(_, st)| st.resolved())
            .map(|(xid, _)| *xid)
            .collect();
        let mut inner = self.inner.lock();
        let before = inner.ring.len();
        inner.ring.retain(|rec| !resolved.contains(&rec.xid()));
        before - inner.ring.len()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().ring.is_empty()
    }

    /// A snapshot of the retained records, oldest first.
    pub fn records(&self) -> Vec<XaRecord> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// Journal health counters.
    pub fn stats(&self) -> JournalStats {
        self.inner.lock().stats
    }
}

/// What a recovery pass did, counter-asserted by the chaos suite and
/// surfaced through `xqsh --explain`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Transactions found with no commit decision (presumed abort).
    pub in_doubt_found: u64,
    /// Branch commits replayed for decided-but-incomplete transactions.
    pub rolled_forward: u64,
    /// Branch rollbacks performed for in-doubt transactions.
    pub rolled_back: u64,
    /// Branch replays skipped because the branch had already reached
    /// the target state (idempotent replay at work).
    pub replays_skipped: u64,
}

impl RecoveryStats {
    /// True when the pass found nothing to do — the clean-journal
    /// no-op and the second half of the idempotency invariant.
    pub fn is_noop(&self) -> bool {
        *self == RecoveryStats::default()
    }
}

/// Scans a [`CoordinatorJournal`] and drives every unresolved
/// transaction to an outcome through idempotent branch operations.
///
/// Branch access is abstracted behind a resolver closure so the
/// manager doesn't care where databases live ([`crate::service::DataSpace`]
/// supplies its own registry). Recovery follows presumed abort:
///
/// 1. **No decision record** → the transaction is in doubt. Every
///    branch is rolled back (releasing prepared locks); an `Aborted`
///    record is journaled.
/// 2. **Decision, but missing `Committed` records** → roll forward:
///    replay `commit_branch` on each unfinished branch; journal each
///    `Committed`.
///
/// Both paths use idempotent branch calls, so recovering twice — or
/// crashing *during* recovery and recovering again — is safe: replays
/// that find the branch already resolved count as `replays_skipped`.
pub struct RecoveryManager<'a> {
    journal: &'a CoordinatorJournal,
}

impl<'a> RecoveryManager<'a> {
    /// A manager over `journal`.
    pub fn new(journal: &'a CoordinatorJournal) -> RecoveryManager<'a> {
        RecoveryManager { journal }
    }

    /// Run one recovery pass. `resolve` maps a journaled branch name
    /// to its database; unknown branches (a source dropped from the
    /// space since the crash) are counted as skipped replays rather
    /// than failing the whole pass.
    pub fn recover(
        &self,
        mut resolve: impl FnMut(&str) -> Option<crate::rel::Database>,
    ) -> XdmResult<RecoveryStats> {
        let mut stats = RecoveryStats::default();
        for (xid, st) in self.journal.scan() {
            if st.resolved() {
                continue;
            }
            let tx = crate::rel::TxId(xid);
            if st.in_doubt() {
                // Presumed abort: no decision record means no branch
                // may keep its locks or its writes.
                stats.in_doubt_found += 1;
                for branch in &st.branches {
                    match resolve(branch) {
                        Some(db) if db.rollback_branch(tx) => stats.rolled_back += 1,
                        _ => stats.replays_skipped += 1,
                    }
                }
                self.journal.append(XaRecord::Aborted { xid })?;
            } else {
                // Decided but incomplete: finish the commit.
                for branch in &st.branches {
                    if st.committed.contains(branch) {
                        continue;
                    }
                    match resolve(branch) {
                        Some(db) => {
                            if db.commit_branch(tx)? {
                                stats.rolled_forward += 1;
                            } else {
                                stats.replays_skipped += 1;
                            }
                        }
                        None => stats.replays_skipped += 1,
                    }
                    self.journal.append(XaRecord::Committed {
                        xid,
                        source: branch.clone(),
                    })?;
                }
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
#[allow(clippy::panic, clippy::unwrap_used, clippy::expect_used)]
mod journal_tests {
    use super::*;

    #[test]
    fn records_round_trip_through_line_form() {
        let records = [
            XaRecord::Begin { xid: 7, branches: vec!["A".into(), "B".into()] },
            XaRecord::Prepared { xid: 7, source: "A".into() },
            XaRecord::CommitDecision { xid: 7 },
            XaRecord::Committed { xid: 7, source: "B".into() },
            XaRecord::Aborted { xid: 9 },
        ];
        for rec in records {
            let line = rec.to_line();
            assert_eq!(XaRecord::from_line(&line).unwrap(), rec, "line: {line}");
        }
    }

    #[test]
    fn corrupt_lines_are_rejected() {
        let good = XaRecord::CommitDecision { xid: 3 }.to_line();
        // Flip one byte of the body: the checksum no longer matches.
        let torn = good.replacen('3', "4", 1);
        let err = XaRecord::from_line(&torn).unwrap_err();
        assert_eq!(AldspCode::of(&err), Some(AldspCode::XaJournalCorrupt));
        assert!(XaRecord::from_line("D 3").is_err(), "missing checksum");
        assert!(XaRecord::from_line("Z 3 #0").is_err(), "bad frame");
    }

    #[test]
    fn scan_derives_protocol_state() {
        let j = CoordinatorJournal::new();
        j.append(XaRecord::Begin { xid: 1, branches: vec!["A".into(), "B".into()] }).unwrap();
        j.append(XaRecord::Prepared { xid: 1, source: "A".into() }).unwrap();
        assert!(j.scan()[&1].in_doubt());
        assert!(!j.is_clean());
        j.append(XaRecord::Prepared { xid: 1, source: "B".into() }).unwrap();
        j.append(XaRecord::CommitDecision { xid: 1 }).unwrap();
        let st = &j.scan()[&1];
        assert!(st.decided && !st.fully_committed() && !st.resolved());
        j.append(XaRecord::Committed { xid: 1, source: "A".into() }).unwrap();
        j.append(XaRecord::Committed { xid: 1, source: "B".into() }).unwrap();
        assert!(j.scan()[&1].fully_committed());
        assert!(j.is_clean());
        assert_eq!(j.checkpoint(), 6, "resolved tx pruned");
        assert!(j.is_empty());
    }

    #[test]
    fn ring_evicts_at_capacity() {
        let j = CoordinatorJournal::with_capacity(2);
        for xid in 0..5 {
            j.append(XaRecord::Aborted { xid }).unwrap();
        }
        assert_eq!(j.len(), 2);
        let s = j.stats();
        assert_eq!((s.appended, s.evicted), (5, 3));
    }

    #[test]
    fn file_backing_survives_reopen_and_skips_torn_tail() {
        let dir = std::env::temp_dir().join(format!("xa-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("coord.log");
        let _ = std::fs::remove_file(&path);
        {
            let j = CoordinatorJournal::open(&path).unwrap();
            j.append(XaRecord::Begin { xid: 4, branches: vec!["A".into()] }).unwrap();
            j.append(XaRecord::Prepared { xid: 4, source: "A".into() }).unwrap();
        }
        // Simulate a crash mid-append: a torn, checksum-less tail.
        {
            use std::io::Write;
            let mut f =
                std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "D 4 #dead").unwrap();
        }
        let j = CoordinatorJournal::open(&path).unwrap();
        assert_eq!(j.len(), 2, "intact records reloaded");
        assert_eq!(j.stats().corrupt_skipped, 1, "torn tail skipped, counted");
        assert!(j.scan()[&4].in_doubt(), "the torn decision never happened");
        let _ = std::fs::remove_file(&path);
    }
}
