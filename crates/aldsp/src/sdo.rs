//! Service Data Objects: disconnected data graphs with change
//! summaries (§II.C, Figure 4).
//!
//! "The ALDSP APIs allow a client application to invoke a data
//! service, then operate on the results, and finally submit the
//! modified data back to the data service from whence it came. … the
//! new XML data is sent back along with a serialized change summary
//! that identifies those portions of the data that have been changed
//! and also records their previous values."

use std::cell::RefCell;

use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::node::{NodeHandle, NodeKind};
use xdm::qname::QName;
use xdm::sequence::{Item, Sequence};

/// One recorded modification: a leaf element whose text value changed.
#[derive(Debug, Clone)]
pub struct Change {
    /// The modified element (its *current* value is the new value).
    pub node: NodeHandle,
    /// The previous string value.
    pub old: String,
}

/// A disconnected data graph: instance data plus a change summary.
pub struct DataGraph {
    /// The logical data service this graph came from.
    pub service: String,
    data: Sequence,
    changes: RefCell<Vec<Change>>,
}

/// One step of an instance path: element local name plus occurrence
/// index among same-named siblings (0-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// Element local name.
    pub name: String,
    /// 0-based occurrence index.
    pub index: usize,
}

impl PathStep {
    /// Parse `"NAME"` or `"NAME#2"`.
    pub fn parse(s: &str) -> PathStep {
        match s.split_once('#') {
            Some((n, i)) => PathStep {
                name: n.to_string(),
                index: i.parse().unwrap_or(0),
            },
            None => PathStep { name: s.to_string(), index: 0 },
        }
    }
}

impl DataGraph {
    /// Wrap a read result.
    pub fn new(service: String, data: Sequence) -> DataGraph {
        DataGraph { service, data, changes: RefCell::new(Vec::new()) }
    }

    /// The instance data.
    pub fn instances(&self) -> &Sequence {
        &self.data
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The `i`-th instance element.
    pub fn instance(&self, i: usize) -> XdmResult<NodeHandle> {
        match self.data.items().get(i) {
            Some(Item::Node(n)) => Ok(n.clone()),
            _ => Err(XdmError::new(
                ErrorCode::DSP0005,
                format!("data graph has no instance {i}"),
            )),
        }
    }

    /// Resolve a path (`["Orders", "ORDER#1", "STATUS"]`) from an
    /// instance root to a leaf element.
    pub fn resolve(&self, instance: usize, path: &[&str]) -> XdmResult<NodeHandle> {
        let mut cur = self.instance(instance)?;
        for raw in path {
            let step = PathStep::parse(raw);
            let matches: Vec<NodeHandle> = cur
                .children()
                .into_iter()
                .filter(|c| {
                    c.kind() == NodeKind::Element
                        && c.name().map(|q| q.local.clone()).as_deref()
                            == Some(&step.name)
                })
                .collect();
            cur = matches.get(step.index).cloned().ok_or_else(|| {
                XdmError::new(
                    ErrorCode::DSP0005,
                    format!(
                        "path step {raw:?} not found under {}",
                        cur.name().map(|q| q.lexical()).unwrap_or_default()
                    ),
                )
            })?;
        }
        Ok(cur)
    }

    /// Read a value at a path.
    pub fn get_value(&self, instance: usize, path: &[&str]) -> XdmResult<String> {
        Ok(self.resolve(instance, path)?.string_value())
    }

    /// The SDO setter: change a leaf element's value, recording the
    /// old value in the change summary. Setting the same leaf twice
    /// keeps the *original* old value (SDO change-summary semantics).
    pub fn set_value(
        &self,
        instance: usize,
        path: &[&str],
        new_value: &str,
    ) -> XdmResult<()> {
        let node = self.resolve(instance, path)?;
        let old = node.string_value();
        if old == new_value {
            return Ok(());
        }
        let mut changes = self.changes.borrow_mut();
        if !changes.iter().any(|c| c.node == node) {
            changes.push(Change { node: node.clone(), old });
        }
        node.replace_value(new_value)?;
        Ok(())
    }

    /// The recorded changes.
    pub fn changes(&self) -> Vec<Change> {
        self.changes.borrow().clone()
    }

    /// True if anything was modified.
    pub fn is_changed(&self) -> bool {
        !self.changes.borrow().is_empty()
    }

    /// The recorded old value for a node, if it was changed.
    pub fn old_value_of(&self, node: &NodeHandle) -> Option<String> {
        self.changes
            .borrow()
            .iter()
            .find(|c| &c.node == node)
            .map(|c| c.old.clone())
    }

    /// Discard the change summary (after a successful submit).
    pub fn clear_changes(&self) {
        self.changes.borrow_mut().clear();
    }

    /// Serialize as the Figure-4 `<sdo:datagraph>` document: a
    /// `<changeSummary>` holding the previous values (with `sdo:ref`
    /// pointers) followed by the current data.
    pub fn to_datagraph_xml(&self) -> XdmResult<NodeHandle> {
        const SDO_NS: &str = "commonj.sdo";
        let root =
            NodeHandle::root_element(QName::with_prefix_ns("sdo", SDO_NS, "datagraph"));
        root.add_ns_decl("sdo", SDO_NS);
        let arena = root.arena().clone();
        let summary = NodeHandle::new_element(&arena, QName::new("changeSummary"));
        root.append_child(&summary)?;
        // Group changes by instance.
        for (i, item) in self.data.iter().enumerate() {
            let Item::Node(inst) = item else { continue };
            let inst_changes: Vec<Change> = self
                .changes
                .borrow()
                .iter()
                .filter(|c| c.node == *inst || c.node.ancestors().contains(inst))
                .cloned()
                .collect();
            if inst_changes.is_empty() {
                continue;
            }
            let name = inst.name().ok_or_else(|| {
                XdmError::new(ErrorCode::DSP0005, "instance is not an element")
            })?;
            let entry = NodeHandle::new_element(&arena, name.clone());
            entry.set_attribute(&NodeHandle::new_attribute(
                &arena,
                QName::with_prefix_ns("sdo", SDO_NS, "ref"),
                format!("#/sdo:datagraph/{}[{}]", name.local, i + 1),
            ))?;
            for c in &inst_changes {
                // Reconstruct the ancestor chain from the instance to
                // the changed leaf, with old value at the leaf.
                let mut chain: Vec<QName> = Vec::new();
                let mut cur = c.node.clone();
                while cur != *inst {
                    if let Some(q) = cur.name() {
                        chain.push(q);
                    }
                    match cur.parent() {
                        Some(p) => cur = p,
                        None => break,
                    }
                }
                chain.reverse();
                let mut parent = entry.clone();
                for (depth, q) in chain.iter().enumerate() {
                    let e = NodeHandle::new_element(&arena, q.clone());
                    if depth == chain.len() - 1 {
                        e.append_child(&NodeHandle::new_text(&arena, c.old.clone()))?;
                    }
                    parent.append_child(&e)?;
                    parent = e;
                }
            }
            summary.append_child(&entry)?;
        }
        // Current data.
        for item in self.data.iter() {
            if let Item::Node(n) = item {
                root.append_child(n)?; // deep-copied across arenas
            }
        }
        Ok(root)
    }

    /// Parse a Figure-4 `<sdo:datagraph>` document back into a
    /// [`DataGraph`] — the server-side receive path: the data section
    /// becomes the instances (carrying the *new* values) and the
    /// change summary re-creates the [`Change`] records (carrying the
    /// *old* values).
    pub fn from_datagraph_xml(
        service: impl Into<String>,
        datagraph: &NodeHandle,
    ) -> XdmResult<DataGraph> {
        let bad = |msg: &str| XdmError::new(ErrorCode::DSP0005, msg.to_string());
        if datagraph.name().is_none_or(|q| q.local != "datagraph") {
            return Err(bad("expected an sdo:datagraph element"));
        }
        let children = datagraph.children();
        let summary = children
            .iter()
            .find(|c| c.name().map(|q| q.local.clone()).as_deref() == Some("changeSummary"))
            .cloned();
        let instances: Vec<NodeHandle> = children
            .iter()
            .filter(|c| {
                c.kind() == NodeKind::Element
                    && c.name().map(|q| q.local.clone()).as_deref()
                        != Some("changeSummary")
            })
            .cloned()
            .collect();
        let graph = DataGraph::new(
            service.into(),
            instances.iter().cloned().map(Item::Node).collect(),
        );
        let Some(summary) = summary else { return Ok(graph) };
        for entry in summary.children() {
            if entry.kind() != NodeKind::Element {
                continue;
            }
            // sdo:ref="#/sdo:datagraph/Name[i]" → instance index.
            let ref_attr = entry
                .attributes()
                .into_iter()
                .find(|a| a.name().map(|q| q.local.clone()).as_deref() == Some("ref"))
                .map(|a| a.content().unwrap_or_default())
                .ok_or_else(|| bad("change-summary entry lacks sdo:ref"))?;
            let idx = ref_attr
                .rsplit('[')
                .next()
                .and_then(|s| s.strip_suffix(']'))
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| bad("malformed sdo:ref"))?
                .checked_sub(1)
                .ok_or_else(|| bad("sdo:ref index is 1-based"))?;
            let instance = instances
                .get(idx)
                .ok_or_else(|| bad("sdo:ref index out of range"))?;
            // Each leaf chain in the entry is one old value.
            fn leaves(
                node: &NodeHandle,
                path: &mut Vec<String>,
                out: &mut Vec<(Vec<String>, String)>,
            ) {
                let elem_children: Vec<NodeHandle> = node
                    .children()
                    .into_iter()
                    .filter(|c| c.kind() == NodeKind::Element)
                    .collect();
                if elem_children.is_empty() {
                    out.push((path.clone(), node.string_value()));
                    return;
                }
                for c in elem_children {
                    path.push(c.name().map(|q| q.local.to_string()).unwrap_or_default());
                    leaves(&c, path, out);
                    path.pop();
                }
            }
            let mut collected = Vec::new();
            leaves(&entry, &mut Vec::new(), &mut collected);
            for (path, old) in collected {
                // Resolve the same chain in the live instance. The
                // summary does not carry occurrence indexes, so gather
                // every node matching the name chain and prefer one
                // whose current value differs from the old value
                // (i.e. the one that was actually changed).
                fn matches(
                    node: &NodeHandle,
                    path: &[String],
                    out: &mut Vec<NodeHandle>,
                ) {
                    let Some((first, rest)) = path.split_first() else {
                        out.push(node.clone());
                        return;
                    };
                    for c in node.children() {
                        if c.kind() == NodeKind::Element
                            && c.name().map(|q| q.local.clone()).as_deref()
                                == Some(first.as_str())
                        {
                            matches(&c, rest, out);
                        }
                    }
                }
                let mut candidates = Vec::new();
                matches(instance, &path, &mut candidates);
                let Some(first) = candidates.first().cloned() else {
                    return Err(bad("change-summary path not found in data"));
                };
                let node = candidates
                    .into_iter()
                    .find(|s| s.string_value() != old)
                    .unwrap_or(first);
                graph.changes.borrow_mut().push(Change { node, old });
            }
        }
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlparse::{parse, serialize};

    fn graph() -> DataGraph {
        let xml = "<CustomerProfile><CID>7</CID><LAST_NAME>Carrey</LAST_NAME>\
                   <Orders><ORDER><OID>1</OID><STATUS>OPEN</STATUS></ORDER>\
                   <ORDER><OID>2</OID><STATUS>OPEN</STATUS></ORDER></Orders>\
                   </CustomerProfile>";
        let doc = parse(xml).unwrap();
        DataGraph::new(
            "CustomerProfile".into(),
            Sequence::one(Item::Node(doc.children()[0].clone())),
        )
    }

    #[test]
    fn get_and_set_values() {
        let g = graph();
        assert_eq!(g.get_value(0, &["LAST_NAME"]).unwrap(), "Carrey");
        g.set_value(0, &["LAST_NAME"], "Carey").unwrap();
        assert_eq!(g.get_value(0, &["LAST_NAME"]).unwrap(), "Carey");
        let changes = g.changes();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].old, "Carrey");
    }

    #[test]
    fn nested_paths_with_occurrence_index() {
        let g = graph();
        assert_eq!(g.get_value(0, &["Orders", "ORDER#1", "OID"]).unwrap(), "2");
        g.set_value(0, &["Orders", "ORDER#1", "STATUS"], "SHIPPED").unwrap();
        assert_eq!(
            g.get_value(0, &["Orders", "ORDER#1", "STATUS"]).unwrap(),
            "SHIPPED"
        );
        assert_eq!(g.get_value(0, &["Orders", "ORDER", "STATUS"]).unwrap(), "OPEN");
    }

    #[test]
    fn noop_set_records_nothing() {
        let g = graph();
        g.set_value(0, &["LAST_NAME"], "Carrey").unwrap();
        assert!(!g.is_changed());
    }

    #[test]
    fn double_set_keeps_original_old_value() {
        let g = graph();
        g.set_value(0, &["LAST_NAME"], "X").unwrap();
        g.set_value(0, &["LAST_NAME"], "Y").unwrap();
        let changes = g.changes();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].old, "Carrey");
        assert_eq!(changes[0].node.string_value(), "Y");
    }

    #[test]
    fn bad_paths_error() {
        let g = graph();
        assert!(g.set_value(0, &["NOPE"], "x").is_err());
        assert!(g.set_value(3, &["LAST_NAME"], "x").is_err());
        assert!(g.get_value(0, &["Orders", "ORDER#9", "OID"]).is_err());
    }

    #[test]
    fn figure4_datagraph_serialization() {
        let g = graph();
        g.set_value(0, &["LAST_NAME"], "Carey").unwrap();
        let dg = g.to_datagraph_xml().unwrap();
        let s = serialize(&dg);
        assert!(s.starts_with("<sdo:datagraph xmlns:sdo=\"commonj.sdo\">"));
        // Change summary holds the OLD value with an sdo:ref pointer…
        assert!(s.contains("<changeSummary>"));
        assert!(s.contains("sdo:ref=\"#/sdo:datagraph/CustomerProfile[1]\""));
        assert!(s.contains("<LAST_NAME>Carrey</LAST_NAME>"));
        // …and the data section holds the NEW value.
        assert!(s.contains("<LAST_NAME>Carey</LAST_NAME>"));
    }

    #[test]
    fn datagraph_with_nested_change_reconstructs_chain() {
        let g = graph();
        g.set_value(0, &["Orders", "ORDER#1", "STATUS"], "SHIPPED").unwrap();
        let s = serialize(&g.to_datagraph_xml().unwrap());
        assert!(s.contains("<Orders><ORDER><STATUS>OPEN</STATUS></ORDER></Orders>"));
    }

    #[test]
    fn old_value_lookup_and_clear() {
        let g = graph();
        g.set_value(0, &["LAST_NAME"], "Carey").unwrap();
        let node = g.resolve(0, &["LAST_NAME"]).unwrap();
        assert_eq!(g.old_value_of(&node).as_deref(), Some("Carrey"));
        g.clear_changes();
        assert!(g.old_value_of(&node).is_none());
        assert!(!g.is_changed());
    }
}

#[cfg(test)]
mod wire_tests {
    use super::*;
    use xmlparse::{parse, serialize};

    fn graph() -> DataGraph {
        let xml = "<CustomerProfile><CID>7</CID><LAST_NAME>Carrey</LAST_NAME>\
                   <Orders><ORDER><OID>1</OID><STATUS>OPEN</STATUS></ORDER>\
                   <ORDER><OID>2</OID><STATUS>OPEN</STATUS></ORDER></Orders>\
                   </CustomerProfile>";
        let doc = parse(xml).unwrap();
        DataGraph::new(
            "CustomerProfile".into(),
            Sequence::one(Item::Node(doc.children()[0].clone())),
        )
    }

    #[test]
    fn datagraph_xml_round_trip() {
        let g = graph();
        g.set_value(0, &["LAST_NAME"], "Carey").unwrap();
        g.set_value(0, &["Orders", "ORDER#1", "STATUS"], "SHIPPED").unwrap();
        // Serialize to the wire, re-parse on the "server side".
        let wire = serialize(&g.to_datagraph_xml().unwrap());
        let doc = parse(&wire).unwrap();
        let back =
            DataGraph::from_datagraph_xml("CustomerProfile", &doc.children()[0])
                .unwrap();
        assert_eq!(back.len(), 1);
        // New values in the data…
        assert_eq!(back.get_value(0, &["LAST_NAME"]).unwrap(), "Carey");
        assert_eq!(
            back.get_value(0, &["Orders", "ORDER#1", "STATUS"]).unwrap(),
            "SHIPPED"
        );
        // …old values restored in the change summary.
        let mut olds: Vec<String> =
            back.changes().iter().map(|c| c.old.clone()).collect();
        olds.sort();
        assert_eq!(olds, vec!["Carrey", "OPEN"]);
        // The changed node resolves to the right occurrence (ORDER#1,
        // because ORDER#0's STATUS still equals the old value "OPEN"
        // while ORDER#1's differs).
        let changed_status = back
            .changes()
            .into_iter()
            .find(|c| c.old == "OPEN")
            .unwrap();
        assert_eq!(changed_status.node.string_value(), "SHIPPED");
    }

    #[test]
    fn datagraph_without_changes_parses() {
        let g = graph();
        let wire = serialize(&g.to_datagraph_xml().unwrap());
        let doc = parse(&wire).unwrap();
        let back =
            DataGraph::from_datagraph_xml("CustomerProfile", &doc.children()[0])
                .unwrap();
        assert!(!back.is_changed());
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn paper_figure4_literal_datagraph_parses() {
        // The exact document from Figure 4.
        let xml = r##"<sdo:datagraph xmlns:sdo="commonj.sdo">
  <changeSummary>
    <cus:CustomerProfile sdo:ref="#/sdo:datagraph/cus:CustomerProfile[1]"
        xmlns:cus="ld:CustomerProfile">
      <LAST_NAME>Carrey</LAST_NAME>
    </cus:CustomerProfile>
  </changeSummary>
  <cus:CustomerProfile xmlns:cus="ld:CustomerProfile">
    <LAST_NAME>Carey</LAST_NAME>
  </cus:CustomerProfile>
</sdo:datagraph>"##;
        let doc = parse(xml).unwrap();
        let g = DataGraph::from_datagraph_xml("CustomerProfile", &doc.children()[0])
            .unwrap();
        assert_eq!(g.len(), 1);
        let changes = g.changes();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].old, "Carrey");
        assert_eq!(changes[0].node.string_value(), "Carey");
    }

    #[test]
    fn malformed_datagraphs_rejected() {
        let not_dg = parse("<x/>").unwrap();
        assert!(DataGraph::from_datagraph_xml("S", &not_dg.children()[0]).is_err());
        // Entry without sdo:ref.
        let xml = "<sdo:datagraph xmlns:sdo=\"commonj.sdo\">\
                   <changeSummary><P><A>old</A></P></changeSummary><P><A>new</A></P>\
                   </sdo:datagraph>";
        let doc = parse(xml).unwrap();
        assert!(DataGraph::from_datagraph_xml("S", &doc.children()[0]).is_err());
    }
}
