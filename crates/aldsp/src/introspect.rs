//! Source introspection (§II.A).
//!
//! "When pointed at a data source … ALDSP first introspects the
//! source's metadata … Introspecting a relational data source yields
//! one entity data service (with one read method and three update
//! methods, create, update, and delete) per table or view. … In the
//! presence of foreign key constraints, RDBMS introspection also
//! produces navigation functions … Introspecting a Web service data
//! source (based on WSDL) yields a library data service with multiple
//! methods, one per Web service operation."
//!
//! Registration binds each generated method to the shared engine as an
//! external function (reads, navigations) or external procedure
//! (create/update/delete — "a set of external XQSE procedures …
//! automatically provided … as a callable means to modify relational
//! source data", §III.A).

// Generated entity services (and their capability/materialization
// closures) must surface failures as XQSE-catchable errors, never
// panic: enforced at lint level.
#![deny(clippy::unwrap_used)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::node::NodeHandle;
use xdm::qname::QName;
use xdm::sequence::{Item, Sequence};

use xqeval::{ColClass, Engine, Env, OptCounters, SourceCapability};

use crate::lineage::SourceRef;
use crate::rel::{ColumnType, Condition, Database, SqlValue, TableSchema, WriteOp};
use crate::service::{DataService, Method, MethodKind, ServiceKind, SourceBinding};
use crate::ws::WebService;
use crate::xmlmap::{self, service_namespace};

/// Bound on the per-table keyed-select cache: entries are single-key
/// row sets, so this comfortably covers E1-scale fan-out (2 columns x
/// 5 000 keys) while keeping worst-case memory modest.
const SELECT_CACHE_CAPACITY: usize = 16_384;

/// Introspect every table of a relational source into entity data
/// services and register their methods on the engine.
pub fn introspect_relational(
    engine: &Engine,
    db: &Database,
) -> XdmResult<Vec<DataService>> {
    let mut out = Vec::new();
    // The source's write-path fast paths (index-accelerated PK
    // uniqueness checks) follow the engine's optimize flag; the
    // mirror is an `Arc<AtomicBool>` because `Database` is `Send`
    // while the engine flag is an `Rc<Cell<bool>>`.
    engine.register_opt_mirror(db.opt_flag());
    let table_names = db.table_names();
    for table in &table_names {
        let schema = db.schema(table)?;
        crate::decompose::register_schema(&db.name, &schema);
        let ns = service_namespace(&db.name, table);
        let mut methods = Vec::new();

        // Read method: TABLE() returns all rows as XML.
        register_read_all(engine, db, &schema, &ns);
        methods.push(Method { name: table.clone(), kind: MethodKind::Read, arity: 0 });

        // Keyed read helper for single-column PKs: getBy<PK>($v) — the
        // shape the paper's use cases call (ens1:getByEmployeeID).
        if schema.primary_key.len() == 1 {
            let pk = schema.primary_key[0].clone();
            register_read_by_key(engine, db, &schema, &ns, &pk)?;
            methods.push(Method {
                name: format!("getBy{pk}"),
                kind: MethodKind::Read,
                arity: 1,
            });
        }

        // C/U/D procedures.
        register_cud(engine, db, &schema, &ns);
        for (n, k) in [
            (format!("create{table}"), MethodKind::Create),
            (format!("update{table}"), MethodKind::Update),
            (format!("delete{table}"), MethodKind::Delete),
        ] {
            methods.push(Method { name: n, kind: k, arity: 1 });
        }

        // Navigation functions from foreign keys: in the service of
        // the *referenced* table, get<CHILD>($parent) returns the
        // referencing rows (cus:getORDER($CUSTOMER) in Figure 3).
        for other in &table_names {
            let other_schema = db.schema(other)?;
            for fk in &other_schema.foreign_keys {
                if &fk.ref_table == table {
                    register_navigation(engine, db, &schema, &other_schema, fk, &ns);
                    methods.push(Method {
                        name: format!("get{other}"),
                        kind: MethodKind::Navigation,
                        arity: 1,
                    });
                }
            }
        }

        out.push(DataService {
            name: format!("{}/{}", db.name, table),
            namespace: ns,
            kind: ServiceKind::Entity,
            shape: Some(table.clone()),
            methods,
            binding: SourceBinding::Relational { db: db.clone(), table: table.clone() },
        });
    }
    Ok(out)
}

fn one_element(args: &[Sequence], what: &str) -> XdmResult<NodeHandle> {
    let item = args
        .first()
        .ok_or_else(|| XdmError::new(ErrorCode::XPST0017, format!("{what}: missing argument")))?
        .exactly_one()?;
    match item {
        Item::Node(n) => Ok(n.clone()),
        _ => Err(XdmError::new(
            ErrorCode::XPTY0004,
            format!("{what}: argument must be an element"),
        )),
    }
}

/// Map a relational column type to the pushdown value class, if the
/// source can answer indexed point-selects on it.
fn col_class(ty: ColumnType) -> Option<ColClass> {
    match ty {
        ColumnType::Integer => Some(ColClass::Integer),
        ColumnType::Varchar => Some(ColClass::String),
        ColumnType::Boolean => Some(ColClass::Boolean),
        // Decimal/Date/Timestamp equality has value-semantics (e.g.
        // 1.0 = 1.00) that a lexical hash bucket cannot honor.
        ColumnType::Decimal | ColumnType::Date | ColumnType::Timestamp => None,
    }
}

/// Seal every node in a sequence that is about to enter a cache: the
/// trees will be served by reference to many evaluations, so their
/// arenas must be marked shared. Sealed trees are exactly what the
/// zero-copy constructor path can graft without a deep copy.
fn seal_sequence(seq: &Sequence) {
    for item in seq.iter() {
        if let Item::Node(n) = item {
            n.seal();
        }
    }
}

fn register_read_all(engine: &Engine, db: &Database, schema: &TableSchema, ns: &str) {
    let opt = engine.optimize_handle();
    let counters = engine.opt_counters();

    // Versioned XDM materialization cache: `(table version, tree)`.
    // The table→XML conversion is the dominant per-call cost of the
    // read method; the version stamp makes reuse exact — any committed
    // write to the table bumps its version and forces a rebuild, while
    // writes to *other* tables leave this entry valid.
    let mat: Rc<RefCell<Option<(u64, Sequence)>>> = Rc::new(RefCell::new(None));
    {
        let mat = mat.clone();
        engine.register_mat_flusher(Rc::new(move || {
            *mat.borrow_mut() = None;
        }));
    }

    // Pushdown capability: the mediator may replace a FLWOR
    // scan-then-filter over this read function with indexed
    // point-selects answered here.
    let columns: Vec<(String, ColClass)> = schema
        .columns
        .iter()
        .filter_map(|c| col_class(c.ty).map(|cl| (c.name.clone(), cl)))
        .collect();
    // Versioned per-key select cache (PR 4's batching layer): a FLWOR
    // that point-selects the same keys against an unchanged table
    // reuses the converted rows instead of re-probing the index and
    // rebuilding XDM. Keying on the *live* table version makes reuse
    // exact — any committed write bumps the version and misses — and
    // mirrors the materialization cache's invalidation story one level
    // down. `Engine::set_batch(false)` restores per-call probes.
    let select_cache: Rc<RefCell<xqeval::Lru<String, (u64, Sequence)>>> =
        Rc::new(RefCell::new(xqeval::Lru::new(SELECT_CACHE_CAPACITY)));
    let select = {
        let db = db.clone();
        let schema = schema.clone();
        let ns = ns.to_string();
        let table = schema.name.clone();
        let counters = counters.clone();
        let batch_on = engine.batch_handle();
        let select_cache = select_cache.clone();
        Rc::new(move |_env: &mut Env, col: &str, key: &str| -> XdmResult<Sequence> {
            let ty = schema
                .column(col)
                .ok_or_else(|| {
                    XdmError::new(
                        ErrorCode::DSP0003,
                        format!("pushdown on unknown column {col} of {table}"),
                    )
                })?
                .ty;
            // The canonical key the rewriter hands us always parses for
            // pushable classes; a failure means the comparison could
            // never match a stored value of this type.
            let v = match SqlValue::parse(ty, key) {
                Ok(v) => v,
                Err(_) => return Ok(Sequence::empty()),
            };
            if batch_on.get() {
                let ver = db.table_version(&table).unwrap_or(0);
                let ck = format!("{col}\u{1}{key}");
                if let Some((v0, seq)) = select_cache.borrow_mut().get(&ck) {
                    if *v0 == ver {
                        return Ok(seq.clone());
                    }
                }
                OptCounters::bump(&counters.indexed_selects);
                let rows = db.select_indexed(&table, &vec![(col.to_string(), v)])?;
                let seq = xmlmap::rows_to_sequence(&schema, &ns, &rows);
                seal_sequence(&seq);
                select_cache.borrow_mut().insert(ck, (ver, seq.clone()));
                return Ok(seq);
            }
            OptCounters::bump(&counters.indexed_selects);
            let rows = db.select_indexed(&table, &vec![(col.to_string(), v)])?;
            Ok(xmlmap::rows_to_sequence(&schema, &ns, &rows))
        }) as Rc<dyn Fn(&mut Env, &str, &str) -> XdmResult<Sequence>>
    };
    let version = {
        let db = db.clone();
        let table = schema.name.clone();
        Rc::new(move || db.table_version(&table).unwrap_or(0)) as Rc<dyn Fn() -> u64>
    };
    let served_version = {
        let mat = mat.clone();
        let db = db.clone();
        let table = schema.name.clone();
        Rc::new(move || match &*mat.borrow() {
            // The read function last served this snapshot (under
            // breaker-open degradation it is *older* than the live
            // version, so derived caches stamp themselves stale).
            Some((v, _)) => *v,
            None => db.table_version(&table).unwrap_or(0),
        }) as Rc<dyn Fn() -> u64>
    };
    engine.register_source_capability(
        QName::with_ns(ns.to_string(), schema.name.clone()),
        SourceCapability { columns, select, version, served_version },
    );

    let db = db.clone();
    let schema = schema.clone();
    let ns = ns.to_string();
    let table = schema.name.clone();
    engine.register_external_function(
        QName::with_ns(ns.clone(), table.clone()),
        0,
        Rc::new(move |_env, _args| {
            if !opt.get() {
                // Kill-switch: seed behavior — full scan + rebuild.
                let rows = db.scan(&table)?;
                return Ok(xmlmap::rows_to_sequence(&schema, &ns, &rows));
            }
            let known = mat.borrow().as_ref().map(|(v, _)| *v);
            let (ver, rows) = db.scan_if_changed(&table, known)?;
            match rows {
                None => {
                    // Version unchanged: the cached tree is exact.
                    if let Some((_, seq)) = &*mat.borrow() {
                        OptCounters::bump(&counters.mat_hits);
                        return Ok(seq.clone());
                    }
                    // Defensive: a flusher ran between the version
                    // probe and here — rebuild from a full scan.
                    let rows = db.scan(&table)?;
                    let seq = xmlmap::rows_to_sequence(&schema, &ns, &rows);
                    seal_sequence(&seq);
                    OptCounters::bump(&counters.mat_misses);
                    *mat.borrow_mut() = Some((ver, seq.clone()));
                    Ok(seq)
                }
                Some(rows) => {
                    OptCounters::bump(&counters.mat_misses);
                    let seq = xmlmap::rows_to_sequence(&schema, &ns, &rows);
                    seal_sequence(&seq);
                    // Key on the version the scan *served* (under an
                    // outage this is the stale snapshot's version, so
                    // recovery forces a rebuild).
                    *mat.borrow_mut() = Some((ver, seq.clone()));
                    Ok(seq)
                }
            }
        }),
    );
}

fn register_read_by_key(
    engine: &Engine,
    db: &Database,
    schema: &TableSchema,
    ns: &str,
    pk: &str,
) -> XdmResult<()> {
    let db = db.clone();
    let schema = schema.clone();
    let ns = ns.to_string();
    let table = schema.name.clone();
    let pk = pk.to_string();
    let pk_ty = schema
        .column(&pk)
        .ok_or_else(|| {
            XdmError::new(
                ErrorCode::DSP0003,
                format!("primary key column {pk} missing from table {table}"),
            )
        })?
        .ty;
    let opt = engine.optimize_handle();
    let counters = engine.opt_counters();
    engine.register_external_function(
        QName::with_ns(ns.clone(), format!("getBy{pk}")),
        1,
        Rc::new(move |_env, args| {
            let key = args[0].string_value()?;
            if key.is_empty() {
                return Ok(Sequence::empty());
            }
            let v = SqlValue::parse(pk_ty, &key)?;
            let rows = if opt.get() {
                OptCounters::bump(&counters.indexed_selects);
                db.select_indexed(&table, &vec![(pk.clone(), v)])?
            } else {
                db.select(&table, &vec![(pk.clone(), v)])?
            };
            Ok(xmlmap::rows_to_sequence(&schema, &ns, &rows))
        }),
    );
    Ok(())
}

fn register_cud(engine: &Engine, db: &Database, schema: &TableSchema, ns: &str) {
    let table = schema.name.clone();
    // create<TABLE>($row as element(TABLE)) → key element.
    {
        let db = db.clone();
        let schema = schema.clone();
        let ns = ns.to_string();
        let table = table.clone();
        engine.register_external_procedure(
            QName::with_ns(ns.clone(), format!("create{table}")),
            1,
            false,
            Rc::new(move |_env, args| {
                let elem = one_element(&args, &format!("create{table}"))?;
                let row = xmlmap::xml_to_row(&schema, &elem)?;
                db.execute(vec![WriteOp::Insert { table: table.clone(), row: row.clone() }])?;
                // Return the key element <TABLE_KEY>…</TABLE_KEY>.
                let key = NodeHandle::root_element(QName::new(format!("{table}_KEY")));
                let arena = key.arena().clone();
                for pk in &schema.primary_key {
                    let i = schema.col_index(pk).ok_or_else(|| {
                        XdmError::new(
                            ErrorCode::DSP0003,
                            format!("primary key column {pk} missing from table {table}"),
                        )
                    })?;
                    let c = NodeHandle::new_element(&arena, QName::new(pk.clone()));
                    c.append_child(&NodeHandle::new_text(&arena, row[i].lexical()))?;
                    key.append_child(&c)?;
                }
                Ok(Sequence::one(Item::Node(key)))
            }),
        );
    }
    // update<TABLE>($row): keyed update of all non-key columns.
    {
        let db = db.clone();
        let schema = schema.clone();
        let table = table.clone();
        engine.register_external_procedure(
            QName::with_ns(ns.to_string(), format!("update{table}")),
            1,
            false,
            Rc::new(move |_env, args| {
                let elem = one_element(&args, &format!("update{table}"))?;
                let row = xmlmap::xml_to_row(&schema, &elem)?;
                let cond = pk_condition(&schema, &row)?;
                let set: Condition = schema
                    .columns
                    .iter()
                    .zip(&row)
                    .filter(|(c, _)| !schema.primary_key.contains(&c.name))
                    .map(|(c, v)| (c.name.clone(), v.clone()))
                    .collect();
                db.execute(vec![WriteOp::Update {
                    table: table.clone(),
                    set,
                    cond,
                    expect_rows: 1,
                }])?;
                Ok(Sequence::empty())
            }),
        );
    }
    // delete<TABLE>($row): keyed delete.
    {
        let db = db.clone();
        let schema = schema.clone();
        let table = table.clone();
        engine.register_external_procedure(
            QName::with_ns(ns.to_string(), format!("delete{table}")),
            1,
            false,
            Rc::new(move |_env, args| {
                let elem = one_element(&args, &format!("delete{table}"))?;
                let cond: Condition = schema
                    .primary_key
                    .iter()
                    .map(|pk| {
                        xmlmap::xml_field(&schema, &elem, pk).map(|v| (pk.clone(), v))
                    })
                    .collect::<XdmResult<_>>()?;
                db.execute(vec![WriteOp::Delete {
                    table: table.clone(),
                    cond,
                    expect_rows: 1,
                }])?;
                Ok(Sequence::empty())
            }),
        );
    }
}

fn pk_condition(schema: &TableSchema, row: &[SqlValue]) -> XdmResult<Condition> {
    schema
        .primary_key
        .iter()
        .map(|pk| {
            let i = schema.col_index(pk).ok_or_else(|| {
                XdmError::new(ErrorCode::DSP0003, format!("missing pk column {pk}"))
            })?;
            if row[i].is_null() {
                return Err(XdmError::new(
                    ErrorCode::DSP0003,
                    format!("NULL primary key {pk}"),
                ));
            }
            Ok((pk.clone(), row[i].clone()))
        })
        .collect()
}

fn register_navigation(
    engine: &Engine,
    db: &Database,
    parent_schema: &TableSchema,
    child_schema: &TableSchema,
    fk: &crate::rel::ForeignKey,
    parent_ns: &str,
) {
    let db = db.clone();
    let parent_schema = parent_schema.clone();
    let child_schema = child_schema.clone();
    let fk = fk.clone();
    let child_ns = service_namespace(&db.name, &child_schema.name);
    let fname = format!("get{}", child_schema.name);
    let opt = engine.optimize_handle();
    let counters = engine.opt_counters();
    engine.register_external_function(
        QName::with_ns(parent_ns.to_string(), fname.clone()),
        1,
        Rc::new(move |_env, args| {
            let parent = one_element(&args, &fname)?;
            // FK columns of the child match the referenced (key)
            // values read from the parent element.
            let cond: Condition = fk
                .columns
                .iter()
                .zip(&fk.ref_columns)
                .map(|(child_col, parent_col)| {
                    xmlmap::xml_field(&parent_schema, &parent, parent_col)
                        .map(|v| (child_col.clone(), v))
                })
                .collect::<XdmResult<_>>()?;
            // FK columns are rarely the child's primary key, so the
            // seed's select() was a full scan per navigation call —
            // the O(n²) heart of experiment E1. The secondary index
            // turns it into a hash probe.
            let rows = if opt.get() {
                OptCounters::bump(&counters.indexed_selects);
                db.select_indexed(&child_schema.name, &cond)?
            } else {
                db.select(&child_schema.name, &cond)?
            };
            Ok(xmlmap::rows_to_sequence(&child_schema, &child_ns, &rows))
        }),
    );
}

/// Introspect a web service into a library data service.
///
/// Each operation is registered twice: as an ordinary arity-1
/// external function (the per-call path, which under the batch layer
/// consults a per-evaluation memo and the service's read-through
/// response cache before paying a round trip), and as a *batchable*
/// entry point that the FLWOR evaluator flushes coalesced request
/// batches through ([`WebService::call_many`]). With
/// `XQSE_DISABLE_BATCH=1` (or optimization off) both collapse to the
/// plain per-call breaker path.
pub fn introspect_web_service(
    engine: &Engine,
    ws: &Rc<WebService>,
) -> XdmResult<DataService> {
    let ns = format!("ld:ws/{}", ws.name);
    // Handlers are arbitrary closures: a procedure call, update
    // statement, or datagraph submission may change what the service
    // would answer. The statement engine reports those through
    // `Engine::note_source_write`; bump the service's read-through
    // epoch there so the persistent response cache stops serving
    // pre-write responses on the normal path (stale-read degradation
    // still may, explicitly counted).
    {
        let ws2 = ws.clone();
        engine.register_write_listener(Rc::new(move || ws2.invalidate_read_through()));
    }
    let mut methods = Vec::new();
    for op_name in ws.operation_names() {
        let qname = QName::with_ns(ns.clone(), op_name.clone());
        let memo_key = {
            let svc = ws.name.clone();
            let op = op_name.clone();
            move |request: &Sequence| {
                format!("{svc}\u{2}{}", crate::ws::request_fingerprint(&op, request))
            }
        };

        let opt = engine.optimize_handle();
        let batch_on = engine.batch_handle();
        let counters = engine.opt_counters();
        let ws2 = ws.clone();
        let op2 = op_name.clone();
        let key_of = memo_key.clone();
        engine.register_external_function(
            qname.clone(),
            1,
            Rc::new(move |env: &mut Env, args: Vec<Sequence>| {
                OptCounters::bump(&counters.ws_requests);
                if !(opt.get() && batch_on.get()) {
                    OptCounters::bump(&counters.ws_issued);
                    return ws2.call(&op2, &args[0]);
                }
                // Per-evaluation memo: identical requests inside one
                // FLWOR or `iterate` body short-circuit here without
                // touching the breaker path.
                let key = key_of(&args[0]);
                if let Some(hit) = env.ws_memo.get(&key) {
                    OptCounters::bump(&counters.ws_coalesced);
                    return Ok(hit.clone());
                }
                // Cross-call read-through: a previous evaluation may
                // already hold this exact response.
                if let Some(hit) = ws2.cached(&op2, &args[0]) {
                    OptCounters::bump(&counters.ws_coalesced);
                    env.ws_memo.insert(key, hit.clone());
                    return Ok(hit);
                }
                OptCounters::bump(&counters.ws_issued);
                let resp = ws2.call(&op2, &args[0])?;
                env.ws_memo.insert(key, resp.clone());
                Ok(resp)
            }),
        );

        let opt = engine.optimize_handle();
        let batch_on = engine.batch_handle();
        let counters = engine.opt_counters();
        let ws2 = ws.clone();
        let op2 = op_name.clone();
        engine.register_batchable_function(
            qname,
            1,
            Rc::new(move |env: &mut Env, requests: &[Sequence]| {
                let n = requests.len();
                OptCounters::add(&counters.ws_requests, n as u64);
                if !(opt.get() && batch_on.get()) {
                    // The evaluator gates batching, but keep the
                    // fallback correct if called directly.
                    OptCounters::add(&counters.ws_issued, n as u64);
                    return requests.iter().map(|r| ws2.call(&op2, r)).collect();
                }
                // Partition into memo / read-through hits and misses;
                // only misses pay the (single) batched round trip.
                let mut out: Vec<Option<Sequence>> = vec![None; n];
                let mut miss_idx = Vec::new();
                let mut miss_reqs = Vec::new();
                for (i, req) in requests.iter().enumerate() {
                    let key = memo_key(req);
                    if let Some(hit) = env.ws_memo.get(&key) {
                        OptCounters::bump(&counters.ws_coalesced);
                        out[i] = Some(hit.clone());
                    } else if let Some(hit) = ws2.cached(&op2, req) {
                        OptCounters::bump(&counters.ws_coalesced);
                        env.ws_memo.insert(key, hit.clone());
                        out[i] = Some(hit);
                    } else {
                        miss_idx.push(i);
                        miss_reqs.push(req.clone());
                    }
                }
                if !miss_reqs.is_empty() {
                    OptCounters::bump(&counters.ws_batches);
                    let unique = WebService::unique_requests(&op2, &miss_reqs);
                    OptCounters::add(&counters.ws_issued, unique as u64);
                    OptCounters::add(
                        &counters.ws_coalesced,
                        (miss_reqs.len() - unique) as u64,
                    );
                    let resps = ws2.call_many(&op2, &miss_reqs)?;
                    for (i, resp) in miss_idx.into_iter().zip(resps) {
                        env.ws_memo.insert(memo_key(&requests[i]), resp.clone());
                        out[i] = Some(resp);
                    }
                }
                Ok(out
                    .into_iter()
                    .map(|o| o.unwrap_or_else(Sequence::empty))
                    .collect())
            }),
        );

        methods.push(Method {
            name: op_name,
            kind: MethodKind::LibraryFunction,
            arity: 1,
        });
    }
    Ok(DataService {
        name: format!("ws/{}", ws.name),
        namespace: ns,
        kind: ServiceKind::Library,
        shape: None,
        methods,
        binding: SourceBinding::Ws { name: ws.name.clone() },
    })
}

/// Build the function-name → source resolver the lineage analyzer
/// needs: which registered QNames are table reads, and which are
/// navigation functions (and to where).
pub fn source_resolver(
    services: &HashMap<String, DataService>,
) -> HashMap<QName, SourceRef> {
    let mut map = HashMap::new();
    for svc in services.values() {
        let SourceBinding::Relational { db, table } = &svc.binding else { continue };
        for m in &svc.methods {
            match m.kind {
                MethodKind::Read if m.arity == 0 => {
                    map.insert(
                        QName::with_ns(svc.namespace.clone(), m.name.clone()),
                        SourceRef::TableScan { source: db.name.clone(), table: table.clone() },
                    );
                }
                MethodKind::Navigation => {
                    // get<CHILD> navigates to the child table.
                    let child = m.name.trim_start_matches("get").to_string();
                    map.insert(
                        QName::with_ns(svc.namespace.clone(), m.name.clone()),
                        SourceRef::Navigation {
                            source: db.name.clone(),
                            child_table: child,
                        },
                    );
                }
                _ => {}
            }
        }
    }
    map
}
