//! WSDL introspection.
//!
//! §II.A: "Introspecting a Web service data source (based on WSDL)
//! yields a library data service with multiple methods, one per Web
//! service operation. The methods' input and output types correspond
//! to the schema information found in the WSDL."
//!
//! [`parse_wsdl`] reads the subset of WSDL 1.1 that drives
//! introspection — `definitions/portType/operation` with
//! `input`/`output` message references resolved through
//! `definitions/message/part[@element]` — and produces the operation
//! metadata a [`crate::ws::WebService`] is built from. Handlers (the
//! in-process stand-ins for the remote endpoints) are attached by
//! name, keeping the metadata/implementation split a real WSDL import
//! would have.

use std::collections::HashMap;

use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::node::{NodeHandle, NodeKind};

use crate::ws::{WebService, WsHandler};

/// Operation metadata recovered from a WSDL document.
#[derive(Debug, Clone, PartialEq)]
pub struct WsdlOperation {
    /// Operation name.
    pub name: String,
    /// Input element local name.
    pub input_element: String,
    /// Output element local name.
    pub output_element: String,
}

/// A parsed WSDL: service name, target namespace, operations.
#[derive(Debug, Clone)]
pub struct Wsdl {
    /// The service name (from `definitions/@name` or
    /// `definitions/service/@name`).
    pub name: String,
    /// The target namespace.
    pub target_namespace: String,
    /// Operations in portType order.
    pub operations: Vec<WsdlOperation>,
}

fn werr(msg: impl Into<String>) -> XdmError {
    XdmError::new(ErrorCode::DSP0005, format!("WSDL: {}", msg.into()))
}

fn local(n: &NodeHandle) -> String {
    n.name().map(|q| q.local.to_string()).unwrap_or_default()
}

fn attr(n: &NodeHandle, name: &str) -> Option<String> {
    n.attributes()
        .into_iter()
        .find(|a| a.name().map(|q| q.local.clone()).as_deref() == Some(name))
        .and_then(|a| a.content())
}

/// Strip a `tns:`-style prefix from a QName reference.
fn local_ref(s: &str) -> String {
    s.rsplit(':').next().unwrap_or(s).to_string()
}

fn elements<'a>(
    parent: &NodeHandle,
    name: &'a str,
) -> impl Iterator<Item = NodeHandle> + use<'a> {
    parent
        .children()
        .into_iter()
        .filter(move |c| c.kind() == NodeKind::Element && local(c) == name)
}

/// Parse a WSDL 1.1 document (as XML text).
pub fn parse_wsdl(xml: &str) -> XdmResult<Wsdl> {
    let doc = xmlparse::parse(xml)?;
    let defs = doc
        .children()
        .into_iter()
        .find(|c| c.kind() == NodeKind::Element)
        .ok_or_else(|| werr("no document element"))?;
    if local(&defs) != "definitions" {
        return Err(werr(format!(
            "expected wsdl:definitions, found {}",
            local(&defs)
        )));
    }
    let target_namespace = attr(&defs, "targetNamespace").unwrap_or_default();
    let name = attr(&defs, "name")
        .or_else(|| elements(&defs, "service").next().and_then(|s| attr(&s, "name")))
        .unwrap_or_else(|| "WebService".to_string());

    // message name → element local name (first part with @element).
    let mut messages: HashMap<String, String> = HashMap::new();
    for m in elements(&defs, "message") {
        let Some(mname) = attr(&m, "name") else { continue };
        if let Some(elem) = elements(&m, "part").find_map(|p| attr(&p, "element")) {
            messages.insert(mname, local_ref(&elem));
        }
    }

    let mut operations = Vec::new();
    for pt in elements(&defs, "portType") {
        for op in elements(&pt, "operation") {
            let op_name = attr(&op, "name")
                .ok_or_else(|| werr("operation without a name"))?;
            let resolve = |kind: &str| -> XdmResult<String> {
                let msg = elements(&op, kind)
                    .next()
                    .and_then(|io| attr(&io, "message"))
                    .ok_or_else(|| {
                        werr(format!("operation {op_name} lacks an {kind} message"))
                    })?;
                messages.get(&local_ref(&msg)).cloned().ok_or_else(|| {
                    werr(format!(
                        "message {msg} (for operation {op_name}) has no element part"
                    ))
                })
            };
            operations.push(WsdlOperation {
                input_element: resolve("input")?,
                output_element: resolve("output")?,
                name: op_name,
            });
        }
    }
    if operations.is_empty() {
        return Err(werr("no operations found in any portType"));
    }
    Ok(Wsdl { name, target_namespace, operations })
}

impl Wsdl {
    /// Build a [`WebService`] from this metadata, attaching one
    /// handler per operation by name. Every operation must be covered.
    pub fn into_web_service(
        self,
        mut handlers: HashMap<String, WsHandler>,
    ) -> XdmResult<WebService> {
        let mut svc = WebService::new(&self.name, &self.target_namespace);
        for op in &self.operations {
            let handler = handlers.remove(&op.name).ok_or_else(|| {
                werr(format!("no handler provided for operation {}", op.name))
            })?;
            svc.add_operation(&op.name, &op.input_element, &op.output_element, handler);
        }
        Ok(svc)
    }
}

/// The credit-rating WSDL as the paper's testbed would have served it.
pub const CREDIT_RATING_WSDL: &str = r#"<?xml version="1.0"?>
<definitions name="CreditRating"
    targetNamespace="urn:creditrating/types"
    xmlns="http://schemas.xmlsoap.org/wsdl/"
    xmlns:tns="urn:creditrating/types">
  <message name="getCreditRatingRequest">
    <part name="parameters" element="tns:getCreditRating"/>
  </message>
  <message name="getCreditRatingResponse">
    <part name="parameters" element="tns:getCreditRatingResponse"/>
  </message>
  <portType name="CreditRatingPortType">
    <operation name="getCreditRating">
      <input message="tns:getCreditRatingRequest"/>
      <output message="tns:getCreditRatingResponse"/>
    </operation>
  </portType>
  <service name="CreditRating"/>
</definitions>
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use xdm::sequence::Sequence;

    #[test]
    fn parses_credit_rating_wsdl() {
        let w = parse_wsdl(CREDIT_RATING_WSDL).unwrap();
        assert_eq!(w.name, "CreditRating");
        assert_eq!(w.target_namespace, "urn:creditrating/types");
        assert_eq!(
            w.operations,
            vec![WsdlOperation {
                name: "getCreditRating".into(),
                input_element: "getCreditRating".into(),
                output_element: "getCreditRatingResponse".into(),
            }]
        );
    }

    #[test]
    fn builds_web_service_with_handlers() {
        let w = parse_wsdl(CREDIT_RATING_WSDL).unwrap();
        let mut handlers: HashMap<String, WsHandler> = HashMap::new();
        handlers.insert(
            "getCreditRating".into(),
            Rc::new(|_req: &Sequence| Ok(Sequence::empty())),
        );
        let svc = w.into_web_service(handlers).unwrap();
        assert_eq!(svc.operation_names(), vec!["getCreditRating"]);
        assert_eq!(
            svc.operation("getCreditRating").unwrap().output_element,
            "getCreditRatingResponse"
        );
    }

    #[test]
    fn missing_handler_is_an_error() {
        let w = parse_wsdl(CREDIT_RATING_WSDL).unwrap();
        assert!(w.into_web_service(HashMap::new()).is_err());
    }

    #[test]
    fn multi_operation_port_type() {
        let xml = r#"<definitions name="Multi" targetNamespace="urn:m"
            xmlns:tns="urn:m">
          <message name="aIn"><part element="tns:AReq"/></message>
          <message name="aOut"><part element="tns:AResp"/></message>
          <message name="bIn"><part element="tns:BReq"/></message>
          <message name="bOut"><part element="tns:BResp"/></message>
          <portType name="P">
            <operation name="doA">
              <input message="tns:aIn"/><output message="tns:aOut"/>
            </operation>
            <operation name="doB">
              <input message="tns:bIn"/><output message="tns:bOut"/>
            </operation>
          </portType>
        </definitions>"#;
        let w = parse_wsdl(xml).unwrap();
        assert_eq!(w.operations.len(), 2);
        assert_eq!(w.operations[1].name, "doB");
        assert_eq!(w.operations[1].input_element, "BReq");
    }

    #[test]
    fn malformed_wsdl_rejected() {
        assert!(parse_wsdl("<notwsdl/>").is_err());
        // Operation referencing a missing message.
        let xml = r#"<definitions name="X" targetNamespace="urn:x" xmlns:tns="urn:x">
          <portType name="P">
            <operation name="op">
              <input message="tns:nope"/><output message="tns:nope"/>
            </operation>
          </portType>
        </definitions>"#;
        assert!(parse_wsdl(xml).is_err());
        // No operations at all.
        let xml = r#"<definitions name="X" targetNamespace="urn:x"/>"#;
        assert!(parse_wsdl(xml).is_err());
    }
}
