//! The data-service model and the `DataSpace`.
//!
//! §II.A: "ALDSP models an enterprise … as a set of interrelated data
//! services. … ALDSP 3.0 supports two kinds of data services, entity
//! data services and library data services." Each method is realized
//! as an XQuery function or an XQSE procedure callable from client
//! programs, ad-hoc queries, and higher-level logical services —
//! here, as registrations on the shared [`xqse::Xqse`] engine.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::qname::QName;
use xdm::sequence::Sequence;

use xqeval::context::Env;
use xqse::Xqse;

use std::sync::Arc;

use parking_lot::Mutex;

use crate::decompose::{self, OccPolicy, UpdateOverride};
use crate::fault::{FaultInjector, Op};
use crate::introspect;
use crate::journal::{CoordinatorJournal, RecoveryManager, RecoveryStats};
use crate::lineage::Lineage;
use crate::rel::Database;
use crate::resilience::{Access, Resilience};
use crate::sdo::DataGraph;
use crate::ws::WebService;

/// Entity vs library data service (§II.A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceKind {
    /// A service-enabled business object with a shape.
    Entity,
    /// A bag of library functions/procedures (e.g. a web service).
    Library,
}

/// The operation types of §II.A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// Read function (fetch instances).
    Read,
    /// Navigation function (traverse a relationship).
    Navigation,
    /// Create procedure.
    Create,
    /// Update procedure.
    Update,
    /// Delete procedure.
    Delete,
    /// Supporting library function (read-only).
    LibraryFunction,
    /// Supporting library procedure (side effects).
    LibraryProcedure,
}

/// One method of a data service.
#[derive(Debug, Clone)]
pub struct Method {
    /// Local name (e.g. `CUSTOMER`, `createCUSTOMER`, `getORDER`).
    pub name: String,
    /// Operation type.
    pub kind: MethodKind,
    /// Number of parameters.
    pub arity: usize,
}

/// Where a physical service's data lives.
#[derive(Clone)]
pub enum SourceBinding {
    /// A table in a relational source.
    Relational {
        /// The database.
        db: Database,
        /// The table name.
        table: String,
    },
    /// A web-service source.
    Ws {
        /// The service name.
        name: String,
    },
    /// A logical service defined by XQuery over other services.
    Logical,
}

/// A data service: name, namespace, kind, shape, methods.
#[derive(Clone)]
pub struct DataService {
    /// Service name (`db1/CUSTOMER`, `CustomerProfile`, …).
    pub name: String,
    /// The service namespace (`ld:` + name).
    pub namespace: String,
    /// Entity or library.
    pub kind: ServiceKind,
    /// The shape element local name (entity services).
    pub shape: Option<String>,
    /// The methods.
    pub methods: Vec<Method>,
    /// The data binding.
    pub binding: SourceBinding,
}

struct LogicalMeta {
    lineage: Lineage,
    policy: OccPolicy,
    update_override: UpdateOverride,
}

/// The dataspace: sources + data services + the shared XQSE engine.
///
/// This is the reproduction's stand-in for an ALDSP server instance.
///
/// ```
/// use aldsp::rel::{Column, ColumnType, Database, SqlValue, TableSchema};
/// use aldsp::service::DataSpace;
///
/// let db = Database::new("db1");
/// db.create_table(TableSchema {
///     name: "ITEM".into(),
///     columns: vec![
///         Column::required("ID", ColumnType::Integer),
///         Column::required("NAME", ColumnType::Varchar),
///     ],
///     primary_key: vec!["ID".into()],
///     foreign_keys: vec![],
/// }).unwrap();
/// db.insert("ITEM", vec![SqlValue::Int(1), SqlValue::Str("widget".into())]).unwrap();
///
/// let space = DataSpace::new();
/// space.register_relational_source(&db).unwrap();
/// let out = space
///     .engine()
///     .eval_expr_str("fn:data(i:ITEM()/NAME)", &[("i", "ld:db1/ITEM")])
///     .unwrap();
/// assert_eq!(out.string_value().unwrap(), "widget");
/// ```
pub struct DataSpace {
    xqse: Xqse,
    services: RefCell<HashMap<String, DataService>>,
    databases: RefCell<HashMap<String, Database>>,
    web_services: RefCell<HashMap<String, Rc<WebService>>>,
    logical: RefCell<HashMap<String, Rc<RefCell<LogicalMeta>>>>,
    /// Rendered SQL of the last default-update decomposition
    /// (observability for tests/benches/EXPERIMENTS.md).
    pub last_decomposition: RefCell<Vec<String>>,
    /// The dataspace-wide fault-injection / resilience handle, shared
    /// with every registered source (present and future).
    access: RefCell<Access>,
    /// The 2PC coordinator journal every multi-source submit writes
    /// through; [`DataSpace::recover`] replays it after a crash.
    journal: RefCell<CoordinatorJournal>,
}

impl Default for DataSpace {
    fn default() -> Self {
        DataSpace::new()
    }
}

impl DataSpace {
    /// An empty dataspace.
    pub fn new() -> DataSpace {
        DataSpace {
            xqse: Xqse::new(),
            services: RefCell::new(HashMap::new()),
            databases: RefCell::new(HashMap::new()),
            web_services: RefCell::new(HashMap::new()),
            logical: RefCell::new(HashMap::new()),
            last_decomposition: RefCell::new(Vec::new()),
            access: RefCell::new(Access::none()),
            journal: RefCell::new(CoordinatorJournal::new()),
        }
    }

    /// The coordinator journal (clones share state, like `Database`).
    pub fn journal(&self) -> CoordinatorJournal {
        self.journal.borrow().clone()
    }

    /// Replace the coordinator journal — e.g. with a file-backed one
    /// ([`CoordinatorJournal::open`]) so submits survive the process,
    /// or with another space's journal to model a restarted
    /// coordinator recovering its predecessor's log.
    pub fn set_journal(&self, journal: CoordinatorJournal) {
        *self.journal.borrow_mut() = journal;
    }

    /// Run one crash-recovery pass over the coordinator journal: roll
    /// back every in-doubt transaction (begun, no commit decision —
    /// presumed abort) and roll forward every decided-but-incomplete
    /// one, through the sources' idempotent branch operations.
    ///
    /// On a clean journal this is a no-op (`RecoveryStats::is_noop()`),
    /// and running it twice is equivalent to running it once — the
    /// invariants the chaos suite counter-asserts. Totals are also
    /// accumulated on the engine for `xqsh --explain`.
    pub fn recover(&self) -> XdmResult<RecoveryStats> {
        let journal = self.journal();
        let stats = RecoveryManager::new(&journal)
            .recover(|source| self.database(source))?;
        if !stats.is_noop() {
            // Rolled-forward commits changed source state after the
            // original submit's caches were primed; treat recovery
            // like any other committed write.
            self.engine().note_source_write();
        }
        self.engine().note_recovery(
            stats.in_doubt_found,
            stats.rolled_forward,
            stats.rolled_back,
            stats.replays_skipped,
        );
        Ok(stats)
    }

    /// Install a fault injector across the dataspace: every already
    /// registered source and every source registered later consults it
    /// before each operation. Returns the shared handle so tests can
    /// inspect the injection log.
    pub fn install_fault_injector(
        &self,
        injector: FaultInjector,
    ) -> Arc<Mutex<FaultInjector>> {
        let handle = Arc::new(Mutex::new(injector));
        self.access.borrow_mut().injector = Some(handle.clone());
        self.propagate_access();
        handle
    }

    /// Install a resilience policy (retry/timeout/circuit breaker)
    /// across the dataspace, mirroring [`DataSpace::install_fault_injector`].
    pub fn install_resilience(&self, resilience: Resilience) -> Arc<Mutex<Resilience>> {
        let handle = Arc::new(Mutex::new(resilience));
        self.access.borrow_mut().resilience = Some(handle.clone());
        self.propagate_access();
        handle
    }

    /// The dataspace's current access handle.
    pub fn access(&self) -> Access {
        self.access.borrow().clone()
    }

    /// Install a pre-built access handle (fault injector + resilience
    /// cores) and propagate it to every registered source. This is how
    /// serving-pool worker builders share one injector/breaker across
    /// all workers: the main thread builds the `Access` once, each
    /// worker's builder installs the same clone, and the `Arc` cores
    /// inside make a breaker trip observed by one worker visible to
    /// all.
    pub fn install_access(&self, access: Access) {
        *self.access.borrow_mut() = access;
        self.propagate_access();
    }

    fn propagate_access(&self) {
        let access = self.access.borrow().clone();
        for db in self.databases.borrow().values() {
            db.set_access(access.clone());
        }
        for ws in self.web_services.borrow().values() {
            ws.set_access(access.clone());
        }
    }

    /// The statement engine.
    pub fn xqse(&self) -> &Xqse {
        &self.xqse
    }

    /// The expression engine.
    pub fn engine(&self) -> &xqeval::Engine {
        self.xqse.engine()
    }

    /// Register a relational source: introspection creates one entity
    /// data service per table (§II.A) and binds its methods.
    pub fn register_relational_source(&self, db: &Database) -> XdmResult<Vec<String>> {
        let services = introspect::introspect_relational(self.engine(), db)?;
        let mut names = Vec::new();
        db.set_access(self.access.borrow().clone());
        self.databases.borrow_mut().insert(db.name.clone(), db.clone());
        for s in services {
            names.push(s.name.clone());
            self.services.borrow_mut().insert(s.name.clone(), s);
        }
        Ok(names)
    }

    /// Register a web-service source: one library data service with a
    /// method per operation.
    pub fn register_web_service(&self, ws: WebService) -> XdmResult<String> {
        let ws = Rc::new(ws);
        let svc = introspect::introspect_web_service(self.engine(), &ws)?;
        let name = svc.name.clone();
        ws.set_access(self.access.borrow().clone());
        self.web_services.borrow_mut().insert(ws.name.clone(), ws);
        self.services.borrow_mut().insert(name.clone(), svc);
        Ok(name)
    }

    /// Register a logical entity data service: XQuery/XQSE source text
    /// defining its methods, plus the designated primary read function
    /// (§II.C: lineage is computed "by analyzing a specially
    /// designated 'primary' data service read function").
    pub fn register_logical_service(
        &self,
        name: &str,
        source_text: &str,
        primary_read: &QName,
    ) -> XdmResult<()> {
        let module = self.xqse.load(source_text)?;
        let decl = module
            .prolog
            .functions
            .iter()
            .find(|f| &f.name == primary_read)
            .ok_or_else(|| {
                XdmError::new(
                    ErrorCode::DSP0005,
                    format!("primary read function {primary_read} not in module"),
                )
            })?;
        let body = decl.body.as_ref().ok_or_else(|| {
            XdmError::new(ErrorCode::DSP0002, "primary read function is external")
        })?;
        let resolver = introspect::source_resolver(&self.services.borrow());
        let lineage = crate::lineage::analyze(body, &resolver)?;
        let mut methods: Vec<Method> = module
            .prolog
            .functions
            .iter()
            .map(|f| Method {
                name: f.name.local.to_string(),
                kind: if f.name == *primary_read { MethodKind::Read } else { MethodKind::LibraryFunction },
                arity: f.params.len(),
            })
            .collect();
        methods.extend(module.prolog.procedures.iter().map(|p| Method {
            name: p.name.local.to_string(),
            kind: if p.readonly {
                MethodKind::LibraryFunction
            } else {
                MethodKind::LibraryProcedure
            },
            arity: p.params.len(),
        }));
        let shape = Some(lineage.root.element.local.to_string());
        self.logical.borrow_mut().insert(
            name.to_string(),
            Rc::new(RefCell::new(LogicalMeta {
                lineage,
                policy: OccPolicy::UpdatedValues,
                update_override: UpdateOverride::None,
            })),
        );
        self.services.borrow_mut().insert(
            name.to_string(),
            DataService {
                name: name.to_string(),
                namespace: format!("ld:{name}"),
                kind: ServiceKind::Entity,
                shape,
                methods,
                binding: SourceBinding::Logical,
            },
        );
        Ok(())
    }

    /// Look up a data service.
    pub fn service(&self, name: &str) -> Option<DataService> {
        self.services.borrow().get(name).cloned()
    }

    /// All registered service names.
    pub fn service_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.services.borrow().keys().cloned().collect();
        v.sort();
        v
    }

    /// A registered database by source name.
    pub fn database(&self, name: &str) -> Option<Database> {
        self.databases.borrow().get(name).cloned()
    }

    /// The lineage computed for a logical service.
    pub fn lineage(&self, service: &str) -> Option<Lineage> {
        self.logical
            .borrow()
            .get(service)
            .map(|m| m.borrow().lineage.clone())
    }

    /// Choose the optimistic-concurrency policy for a logical service
    /// (§II.C lists the three supported choices).
    pub fn set_occ_policy(&self, service: &str, policy: OccPolicy) -> XdmResult<()> {
        let logical = self.logical.borrow();
        let meta = logical.get(service).ok_or_else(|| {
            XdmError::new(ErrorCode::DSP0005, format!("no logical service {service}"))
        })?;
        meta.borrow_mut().policy = policy;
        Ok(())
    }

    /// Install (or clear) an update override for a logical service —
    /// the ALDSP 2.5 "Java update override" slot, now writable in XQSE
    /// (the paper's raison d'être).
    pub fn set_update_override(
        &self,
        service: &str,
        update_override: UpdateOverride,
    ) -> XdmResult<()> {
        let logical = self.logical.borrow();
        let meta = logical.get(service).ok_or_else(|| {
            XdmError::new(ErrorCode::DSP0005, format!("no logical service {service}"))
        })?;
        meta.borrow_mut().update_override = update_override;
        Ok(())
    }

    /// Invoke a read method and wrap the result in an SDO data graph
    /// (the "get" half of Figure 4).
    pub fn get(
        &self,
        service: &str,
        method: &str,
        args: Vec<Sequence>,
    ) -> XdmResult<DataGraph> {
        let svc = self.service(service).ok_or_else(|| {
            XdmError::new(ErrorCode::DSP0005, format!("no data service {service}"))
        })?;
        let name = QName::with_ns(svc.namespace.clone(), method);
        self.access().run(service, Op::Get, || {
            let mut env = Env::new();
            let data = self.engine().call(&name, args.clone(), &mut env)?;
            Ok(DataGraph::new(service.to_string(), data))
        })
    }

    /// Submit a changed data graph back — the "update" half of
    /// Figure 4. Runs the update override if one is installed,
    /// otherwise the default lineage-based decomposition under 2PC.
    pub fn submit(&self, graph: &DataGraph) -> XdmResult<()> {
        let meta = self
            .logical
            .borrow()
            .get(&graph.service)
            .cloned()
            .ok_or_else(|| {
                XdmError::new(
                    ErrorCode::DSP0005,
                    format!("no logical service {}", graph.service),
                )
            })?;
        let ovr = meta.borrow().update_override.clone();
        let out = self.access().run(&graph.service, Op::Submit, || match &ovr {
            UpdateOverride::None => self.default_submit_raw(graph),
            UpdateOverride::Rust(f) => f(self, graph),
            UpdateOverride::Procedure(name) => {
                // Hand the full SDO datagraph (data + change summary)
                // to the XQSE procedure, as ALDSP hands it to update
                // overrides.
                let dg = graph.to_datagraph_xml()?;
                let mut env = Env::new();
                self.xqse
                    .call_procedure(name, vec![Sequence::one(
                        xdm::sequence::Item::Node(dg),
                    )], &mut env)
                    .map(|_| ())
            }
        });
        if out.is_ok() {
            // A committed submission may have changed what dependent
            // sources would answer (web-service handlers are arbitrary
            // closures); their read-through caches must not keep
            // serving pre-submit responses on the fresh path.
            self.engine().note_source_write();
        }
        out
    }

    /// Render the ALDSP "design view" of a data service (Figure 1):
    /// shape, methods by operation type, and — for logical services —
    /// the dependencies recovered from lineage.
    pub fn describe(&self, service: &str) -> XdmResult<String> {
        use std::fmt::Write as _;
        let svc = self.service(service).ok_or_else(|| {
            XdmError::new(ErrorCode::DSP0005, format!("no data service {service}"))
        })?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} data service: {}",
            match svc.kind {
                ServiceKind::Entity => "entity",
                ServiceKind::Library => "library",
            },
            svc.name
        );
        let _ = writeln!(out, "  namespace: {}", svc.namespace);
        if let Some(shape) = &svc.shape {
            let _ = writeln!(out, "  shape: element({shape})");
        }
        let _ = writeln!(out, "  methods:");
        for m in &svc.methods {
            let kind = match m.kind {
                MethodKind::Read => "read",
                MethodKind::Navigation => "navigate",
                MethodKind::Create => "create",
                MethodKind::Update => "update",
                MethodKind::Delete => "delete",
                MethodKind::LibraryFunction => "function",
                MethodKind::LibraryProcedure => "procedure",
            };
            let _ = writeln!(out, "    {:<9} {}#{}", kind, m.name, m.arity);
        }
        if let Some(lineage) = self.lineage(service) {
            let _ = writeln!(out, "  depends on:");
            for shape in lineage.all_shapes() {
                let _ = writeln!(
                    out,
                    "    {}/{} (element {})",
                    shape.source, shape.table, shape.element.local
                );
            }
            if !lineage.root.unmapped.is_empty() {
                let _ = writeln!(
                    out,
                    "  not updatable (no lineage): {}",
                    lineage.root.unmapped.join(", ")
                );
            }
        }
        Ok(out)
    }

    /// Create a full logical instance: the top-level row plus nested
    /// child rows, decomposed to the owning sources under 2PC.
    pub fn create_instance(
        &self,
        service: &str,
        instance: &xdm::node::NodeHandle,
    ) -> XdmResult<()> {
        let lineage = self.lineage(service).ok_or_else(|| {
            XdmError::new(ErrorCode::DSP0005, format!("no logical service {service}"))
        })?;
        let plan = decompose::decompose_create(&lineage, instance)?;
        *self.last_decomposition.borrow_mut() = plan.iter_sql().collect();
        self.access()
            .run(service, Op::Submit, || decompose::execute(self, plan.clone()))
    }

    /// Delete a logical instance (children first, then the top row).
    pub fn delete_instance(
        &self,
        service: &str,
        instance: &xdm::node::NodeHandle,
    ) -> XdmResult<()> {
        let lineage = self.lineage(service).ok_or_else(|| {
            XdmError::new(ErrorCode::DSP0005, format!("no logical service {service}"))
        })?;
        let plan = decompose::decompose_delete(&lineage, instance)?;
        *self.last_decomposition.borrow_mut() = plan.iter_sql().collect();
        self.access()
            .run(service, Op::Submit, || decompose::execute(self, plan.clone()))
    }

    /// The default update path: decompose against lineage and execute
    /// under two-phase commit across the affected sources.
    pub fn default_submit(&self, graph: &DataGraph) -> XdmResult<()> {
        self.access()
            .run(&graph.service, Op::Submit, || self.default_submit_raw(graph))
    }

    fn default_submit_raw(&self, graph: &DataGraph) -> XdmResult<()> {
        let meta = self
            .logical
            .borrow()
            .get(&graph.service)
            .cloned()
            .ok_or_else(|| {
                XdmError::new(
                    ErrorCode::DSP0005,
                    format!("no logical service {}", graph.service),
                )
            })?;
        let (lineage, policy) = {
            let m = meta.borrow();
            (m.lineage.clone(), m.policy.clone())
        };
        let plan = decompose::decompose_update(&lineage, graph, &policy)?;
        *self.last_decomposition.borrow_mut() =
            plan.iter_sql().collect::<Vec<String>>();
        decompose::execute(self, plan)
    }
}
