//! SQL DDL introspection.
//!
//! Real ALDSP introspects JDBC metadata; the equivalent developer
//! artifact for the simulator is the `CREATE TABLE` DDL of the source.
//! [`parse_create_table`] reads the common DDL subset — column
//! definitions with types and `NOT NULL`, table- and column-level
//! `PRIMARY KEY`, and table-level `FOREIGN KEY … REFERENCES` (named
//! via `CONSTRAINT`) — into a [`TableSchema`], and
//! [`apply_ddl`] executes a script of such statements against a
//! [`Database`].

use xdm::error::{ErrorCode, XdmError, XdmResult};

use crate::rel::{Column, ColumnType, Database, ForeignKey, TableSchema};

fn derr(msg: impl Into<String>) -> XdmError {
    XdmError::new(ErrorCode::DSP0003, format!("DDL: {}", msg.into()))
}

/// A tiny word-oriented scanner over one statement.
struct Scan {
    toks: Vec<String>,
    pos: usize,
}

impl Scan {
    fn new(src: &str) -> Scan {
        let mut toks = Vec::new();
        let mut cur = String::new();
        for c in src.chars() {
            match c {
                '(' | ')' | ',' => {
                    if !cur.is_empty() {
                        toks.push(std::mem::take(&mut cur));
                    }
                    toks.push(c.to_string());
                }
                c if c.is_whitespace() => {
                    if !cur.is_empty() {
                        toks.push(std::mem::take(&mut cur));
                    }
                }
                c => cur.push(c),
            }
        }
        if !cur.is_empty() {
            toks.push(cur);
        }
        Scan { toks, pos: 0 }
    }

    fn peek(&self) -> Option<&str> {
        self.toks.get(self.pos).map(|s| s.as_str())
    }

    fn next(&mut self) -> Option<String> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.eq_ignore_ascii_case(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, what: &str) -> XdmResult<String> {
        self.next().ok_or_else(|| derr(format!("expected {what}, found end")))
    }

    fn expect_sym(&mut self, sym: &str) -> XdmResult<()> {
        let t = self.expect(sym)?;
        if t == sym {
            Ok(())
        } else {
            Err(derr(format!("expected {sym:?}, found {t:?}")))
        }
    }

    /// Parse a parenthesized, comma-separated identifier list.
    fn ident_list(&mut self) -> XdmResult<Vec<String>> {
        self.expect_sym("(")?;
        let mut out = Vec::new();
        loop {
            let t = self.expect("identifier")?;
            if t == ")" {
                break;
            }
            if t == "," {
                continue;
            }
            out.push(unquote(&t));
        }
        Ok(out)
    }
}

fn unquote(s: &str) -> String {
    s.trim_matches(|c| c == '"' || c == '`').to_string()
}

fn column_type(name: &str) -> XdmResult<ColumnType> {
    let upper = name.to_ascii_uppercase();
    let base = upper.split('(').next().unwrap_or(&upper);
    Ok(match base {
        "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => ColumnType::Integer,
        "DECIMAL" | "NUMERIC" | "NUMBER" => ColumnType::Decimal,
        "VARCHAR" | "VARCHAR2" | "CHAR" | "TEXT" | "CLOB" | "STRING" => {
            ColumnType::Varchar
        }
        "BOOLEAN" | "BOOL" | "BIT" => ColumnType::Boolean,
        "DATE" => ColumnType::Date,
        "TIMESTAMP" | "DATETIME" => ColumnType::Timestamp,
        other => return Err(derr(format!("unsupported column type {other}"))),
    })
}

/// Parse one `CREATE TABLE` statement into a schema.
pub fn parse_create_table(sql: &str) -> XdmResult<TableSchema> {
    let sql = sql.trim().trim_end_matches(';');
    let mut s = Scan::new(sql);
    if !(s.eat_kw("CREATE") && s.eat_kw("TABLE")) {
        return Err(derr("expected CREATE TABLE"));
    }
    let name = unquote(&s.expect("table name")?);
    s.expect_sym("(")?;
    let mut columns: Vec<Column> = Vec::new();
    let mut primary_key: Vec<String> = Vec::new();
    let mut foreign_keys: Vec<ForeignKey> = Vec::new();
    let mut fk_counter = 0usize;
    loop {
        match s.peek() {
            Some(")") => {
                s.next();
                break;
            }
            Some(",") => {
                s.next();
                continue;
            }
            None => return Err(derr("unterminated column list")),
            _ => {}
        }
        // Table-level constraints.
        if s.peek().is_some_and(|t| t.eq_ignore_ascii_case("PRIMARY")) {
            s.next();
            if !s.eat_kw("KEY") {
                return Err(derr("expected KEY after PRIMARY"));
            }
            primary_key = s.ident_list()?;
            continue;
        }
        let mut constraint_name = None;
        if s.peek().is_some_and(|t| t.eq_ignore_ascii_case("CONSTRAINT")) {
            s.next();
            constraint_name = Some(unquote(&s.expect("constraint name")?));
            // Fall through to PRIMARY/FOREIGN.
            if s.eat_kw("PRIMARY") {
                if !s.eat_kw("KEY") {
                    return Err(derr("expected KEY after PRIMARY"));
                }
                primary_key = s.ident_list()?;
                continue;
            }
        }
        if s.peek().is_some_and(|t| t.eq_ignore_ascii_case("FOREIGN")) {
            s.next();
            if !s.eat_kw("KEY") {
                return Err(derr("expected KEY after FOREIGN"));
            }
            let cols = s.ident_list()?;
            if !s.eat_kw("REFERENCES") {
                return Err(derr("expected REFERENCES"));
            }
            let ref_table = unquote(&s.expect("referenced table")?);
            let ref_cols = s.ident_list()?;
            if cols.len() != ref_cols.len() {
                return Err(derr("FOREIGN KEY column count mismatch"));
            }
            fk_counter += 1;
            foreign_keys.push(ForeignKey {
                name: constraint_name
                    .unwrap_or_else(|| format!("FK_{name}_{fk_counter}")),
                columns: cols,
                ref_table,
                ref_columns: ref_cols,
            });
            continue;
        }
        // A column definition: NAME TYPE [NOT NULL] [PRIMARY KEY].
        let col_name = unquote(&s.expect("column name")?);
        let mut ty_tok = s.expect("column type")?;
        // Swallow a parenthesized length/precision, e.g. VARCHAR ( 40 ).
        if s.peek() == Some("(") {
            while let Some(t) = s.next() {
                ty_tok.push_str(&t);
                if t == ")" {
                    break;
                }
            }
        }
        let ty = column_type(&ty_tok)?;
        let mut nullable = true;
        loop {
            if s.eat_kw("NOT") {
                if !s.eat_kw("NULL") {
                    return Err(derr("expected NULL after NOT"));
                }
                nullable = false;
            } else if s.eat_kw("PRIMARY") {
                if !s.eat_kw("KEY") {
                    return Err(derr("expected KEY after PRIMARY"));
                }
                primary_key = vec![col_name.clone()];
                nullable = false;
            } else if s.eat_kw("NULL") {
                // explicit NULL: keep nullable
            } else if s.eat_kw("DEFAULT") {
                s.expect("default value")?; // recorded nowhere; skipped
            } else {
                break;
            }
        }
        columns.push(Column { name: col_name, ty, nullable });
    }
    if columns.is_empty() {
        return Err(derr(format!("table {name} has no columns")));
    }
    Ok(TableSchema { name, columns, primary_key, foreign_keys })
}

/// Execute a DDL script (semicolon-separated `CREATE TABLE`s, `--`
/// line comments allowed) against a database.
pub fn apply_ddl(db: &Database, script: &str) -> XdmResult<Vec<String>> {
    let cleaned: String = script
        .lines()
        .map(|l| l.split("--").next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    let mut created = Vec::new();
    for stmt in cleaned.split(';') {
        if stmt.trim().is_empty() {
            continue;
        }
        let schema = parse_create_table(stmt)?;
        created.push(schema.name.clone());
        db.create_table(schema)?;
    }
    Ok(created)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CUSTOMER_DDL: &str = r#"
        -- the paper's customer database
        CREATE TABLE CUSTOMER (
            CID INTEGER PRIMARY KEY,
            FIRST_NAME VARCHAR(40) NOT NULL,
            LAST_NAME VARCHAR(40) NOT NULL,
            SSN VARCHAR(11)
        );
        CREATE TABLE "ORDER" (
            OID INTEGER NOT NULL,
            CID INTEGER NOT NULL,
            ORDER_DATE DATE,
            TOTAL_ORDER_AMOUNT DECIMAL(10,2),
            STATUS VARCHAR(16) DEFAULT 'OPEN',
            PRIMARY KEY (OID),
            CONSTRAINT FK_ORDER_CUSTOMER
                FOREIGN KEY (CID) REFERENCES CUSTOMER (CID)
        );
    "#;

    #[test]
    fn parses_column_level_constraints() {
        let s = parse_create_table(
            "CREATE TABLE T (ID INT PRIMARY KEY, NAME VARCHAR(10) NOT NULL, AGE INT)",
        )
        .unwrap();
        assert_eq!(s.name, "T");
        assert_eq!(s.primary_key, vec!["ID"]);
        assert!(!s.columns[0].nullable);
        assert!(!s.columns[1].nullable);
        assert!(s.columns[2].nullable);
        assert_eq!(s.columns[1].ty, ColumnType::Varchar);
    }

    #[test]
    fn parses_table_level_constraints_and_fks() {
        let db = Database::new("db1");
        let created = apply_ddl(&db, CUSTOMER_DDL).unwrap();
        assert_eq!(created, vec!["CUSTOMER", "ORDER"]);
        let order = db.schema("ORDER").unwrap();
        assert_eq!(order.primary_key, vec!["OID"]);
        assert_eq!(order.foreign_keys.len(), 1);
        let fk = &order.foreign_keys[0];
        assert_eq!(fk.name, "FK_ORDER_CUSTOMER");
        assert_eq!(fk.columns, vec!["CID"]);
        assert_eq!(fk.ref_table, "CUSTOMER");
        assert_eq!(order.column("ORDER_DATE").unwrap().ty, ColumnType::Date);
        assert_eq!(
            order.column("TOTAL_ORDER_AMOUNT").unwrap().ty,
            ColumnType::Decimal
        );
    }

    #[test]
    fn ddl_sourced_schema_introspects_like_hand_built() {
        // End to end: DDL → introspection → navigation function works.
        let db = Database::new("db1");
        apply_ddl(&db, CUSTOMER_DDL).unwrap();
        let space = crate::service::DataSpace::new();
        space.register_relational_source(&db).unwrap();
        let svc = space.service("db1/CUSTOMER").unwrap();
        assert!(svc.methods.iter().any(|m| m.name == "getORDER"));
    }

    #[test]
    fn type_mapping_and_case_insensitivity() {
        let s = parse_create_table(
            "create table X (a bigint, b numeric, c text, d bool, e timestamp)",
        )
        .unwrap();
        let types: Vec<ColumnType> = s.columns.iter().map(|c| c.ty).collect();
        assert_eq!(
            types,
            vec![
                ColumnType::Integer,
                ColumnType::Decimal,
                ColumnType::Varchar,
                ColumnType::Boolean,
                ColumnType::Timestamp
            ]
        );
    }

    #[test]
    fn bad_ddl_rejected() {
        assert!(parse_create_table("DROP TABLE X").is_err());
        assert!(parse_create_table("CREATE TABLE X ()").is_err());
        assert!(parse_create_table("CREATE TABLE X (A BLOB)").is_err());
        assert!(parse_create_table(
            "CREATE TABLE X (A INT, FOREIGN KEY (A, B) REFERENCES Y (C))"
        )
        .is_err());
    }
}
