//! Data-lineage analysis of primary read functions (§II.C).
//!
//! "To automatically propagate client data changes to (just) the
//! relevant backend data sources, ALDSP must identify where the
//! changed data originated from. Basically, the data lineage must be
//! determined. ALDSP computes the required lineage by analyzing a
//! specially designated 'primary' data service read function."
//!
//! The analyzer walks the function body's AST looking for the
//! canonical integration shape of Figure 3:
//!
//! ```text
//! for $ROW in src:TABLE()                      -- top-level table
//! return <Shape>
//!   <Field>{fn:data($ROW/COL)}</Field>         -- field lineage
//!   <Wrapper>{ for $C in src:getCHILD($ROW)    -- navigation join
//!              return <Child>…</Child> }</Wrapper>
//!   <Wrapper2>{ for $K in src2:TABLE2()        -- value join
//!               where $ROW/K eq $K/K return … }</Wrapper2>
//!   { for $r in ws:call(…) return <X>…</X> }   -- unmappable (ws)
//! </Shape>
//! ```
//!
//! Every element whose provenance cannot be proven is recorded as
//! *unmapped*; updates touching unmapped elements fail decomposition
//! with `DSP0002`, which is precisely when ALDSP developers reach for
//! an update override — the paper's motivating scenario for XQSE.

use std::collections::HashMap;

use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::qname::QName;

use xqparser::ast::{
    Axis, DirectContent, DirectElement, Expr, FlworClause, PathStart, Step,
};

/// What a registered function reads.
#[derive(Debug, Clone)]
pub enum SourceRef {
    /// A full-table read function.
    TableScan {
        /// Source (database) name.
        source: String,
        /// Table name.
        table: String,
    },
    /// A navigation function to a child table.
    Navigation {
        /// Source name.
        source: String,
        /// The child (referencing) table.
        child_table: String,
    },
}

/// A field: constructed element ← table column.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldMap {
    /// The constructed element's local name.
    pub element: String,
    /// The originating column.
    pub column: String,
}

/// A nested row shape.
#[derive(Debug, Clone)]
pub struct ChildShape {
    /// The wrapper element around the nested rows (e.g. `Orders`),
    /// if any.
    pub wrapper: Option<String>,
    /// The nested shape.
    pub node: ShapeNode,
}

/// One row-producing level of the shape.
#[derive(Debug, Clone)]
pub struct ShapeNode {
    /// The constructed element name for each row instance.
    pub element: QName,
    /// Source (database) name.
    pub source: String,
    /// Table name.
    pub table: String,
    /// Field lineage.
    pub fields: Vec<FieldMap>,
    /// Nested shapes.
    pub children: Vec<ChildShape>,
    /// Elements with unprovable provenance (not updatable).
    pub unmapped: Vec<String>,
}

impl ShapeNode {
    /// The column a constructed element maps to.
    pub fn column_of(&self, element: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|f| f.element == element)
            .map(|f| f.column.as_str())
    }

    /// The constructed element carrying a given column.
    pub fn element_of(&self, column: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|f| f.column == column)
            .map(|f| f.element.as_str())
    }
}

/// The result of analyzing a primary read function.
#[derive(Debug, Clone)]
pub struct Lineage {
    /// The top-level shape.
    pub root: ShapeNode,
}

impl Lineage {
    /// Find the shape (at any nesting depth) whose constructed element
    /// matches `name`.
    pub fn shape_for_element(&self, name: &QName) -> Option<&ShapeNode> {
        fn walk<'a>(n: &'a ShapeNode, name: &QName) -> Option<&'a ShapeNode> {
            if &n.element == name {
                return Some(n);
            }
            n.children.iter().find_map(|c| walk(&c.node, name))
        }
        walk(&self.root, name)
    }

    /// All shapes, root first.
    pub fn all_shapes(&self) -> Vec<&ShapeNode> {
        fn walk<'a>(n: &'a ShapeNode, out: &mut Vec<&'a ShapeNode>) {
            out.push(n);
            for c in &n.children {
                walk(&c.node, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }

    /// The distinct sources this lineage touches.
    pub fn sources(&self) -> Vec<String> {
        let mut v: Vec<String> =
            self.all_shapes().iter().map(|s| s.source.clone()).collect();
        v.sort();
        v.dedup();
        v
    }
}

/// Analyze a primary read function body against a resolver mapping
/// registered function names to sources.
pub fn analyze(
    body: &Expr,
    resolver: &HashMap<QName, SourceRef>,
) -> XdmResult<Lineage> {
    match try_analyze_flwor(body, resolver) {
        Some(root) => Ok(Lineage { root }),
        None => Err(XdmError::new(
            ErrorCode::DSP0002,
            "primary read function does not have an analyzable \
             for-over-source / return-constructor shape",
        )),
    }
}

/// Try to analyze `for $v in <source-call> … return <Elem>…</Elem>`.
fn try_analyze_flwor(
    expr: &Expr,
    resolver: &HashMap<QName, SourceRef>,
) -> Option<ShapeNode> {
    let Expr::Flwor { clauses, ret } = expr else { return None };
    let FlworClause::For { var, source, .. } = clauses.first()? else { return None };
    let Expr::FunctionCall { name, .. } = source else { return None };
    let (source_name, table) = match resolver.get(name)? {
        SourceRef::TableScan { source, table } => (source.clone(), table.clone()),
        SourceRef::Navigation { source, child_table } => {
            (source.clone(), child_table.clone())
        }
    };
    let Expr::DirectElement(de) = &**ret else { return None };
    let mut node = ShapeNode {
        element: de.name.clone(),
        source: source_name,
        table,
        fields: Vec::new(),
        children: Vec::new(),
        unmapped: Vec::new(),
    };
    analyze_shape_content(de, var, resolver, &mut node);
    Some(node)
}

fn analyze_shape_content(
    de: &DirectElement,
    var: &QName,
    resolver: &HashMap<QName, SourceRef>,
    node: &mut ShapeNode,
) {
    for content in &de.content {
        match content {
            DirectContent::Element(child) => {
                // A field element? (single fn:data($var/COL) content)
                if let Some(col) = single_field_column(child, var) {
                    node.fields.push(FieldMap {
                        element: child.name.local.to_string(),
                        column: col,
                    });
                    continue;
                }
                // A wrapper around a nested row shape?
                if let [DirectContent::Expr(inner)] = child.content.as_slice() {
                    if let Some(nested) = try_analyze_flwor(inner, resolver) {
                        node.children.push(ChildShape {
                            wrapper: Some(child.name.local.to_string()),
                            node: nested,
                        });
                        continue;
                    }
                }
                // Otherwise: unprovable provenance.
                node.unmapped.push(child.name.local.to_string());
            }
            DirectContent::Expr(e) => {
                // A bare embedded FLWOR constructing child elements
                // without a wrapper (Figure 3's CreditRating).
                if let Some(nested) = try_analyze_flwor(e, resolver) {
                    node.children.push(ChildShape { wrapper: None, node: nested });
                } else if let Some(elem) = constructed_element_name(e) {
                    node.unmapped.push(elem);
                }
            }
            _ => {}
        }
    }
}

/// Recognize `{fn:data($var/COL)}` (also fn:string, or the bare path)
/// as the only content of a field element; return the column name.
fn single_field_column(de: &DirectElement, var: &QName) -> Option<String> {
    let [DirectContent::Expr(e)] = de.content.as_slice() else { return None };
    let inner = match e {
        Expr::FunctionCall { name, args }
            if (name.local == "data" || name.local == "string") && args.len() == 1 =>
        {
            &args[0]
        }
        other => other,
    };
    let Expr::Path { start: PathStart::Expr(base), steps } = inner else { return None };
    let Expr::VarRef(v) = &**base else { return None };
    if v != var {
        return None;
    }
    match steps.as_slice() {
        [Step {
            axis: Axis::Child,
            test: xqparser::ast::NodeTest::Name(q),
            predicates,
        }] if predicates.is_empty() => Some(q.local.to_string()),
        _ => None,
    }
}

/// If the expression is a FLWOR returning a direct element (or a bare
/// constructor), the element's local name — used to label unmapped
/// output.
fn constructed_element_name(e: &Expr) -> Option<String> {
    match e {
        Expr::Flwor { ret, .. } => constructed_element_name(ret),
        Expr::DirectElement(de) => Some(de.name.local.to_string()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqparser::parser::parse_expr;

    fn resolver() -> HashMap<QName, SourceRef> {
        let mut m = HashMap::new();
        m.insert(
            QName::with_ns("ld:db1/CUSTOMER", "CUSTOMER"),
            SourceRef::TableScan { source: "db1".into(), table: "CUSTOMER".into() },
        );
        m.insert(
            QName::with_ns("ld:db1/CUSTOMER", "getORDER"),
            SourceRef::Navigation { source: "db1".into(), child_table: "ORDER".into() },
        );
        m.insert(
            QName::with_ns("ld:db2/CREDIT_CARD", "CREDIT_CARD"),
            SourceRef::TableScan { source: "db2".into(), table: "CREDIT_CARD".into() },
        );
        m
    }

    const NS: &[(&str, &str)] = &[
        ("cus", "ld:db1/CUSTOMER"),
        ("cre", "ld:db2/CREDIT_CARD"),
        ("ws", "urn:ws"),
    ];

    #[test]
    fn figure3_shape_analyzes() {
        let body = parse_expr(
            "for $CUSTOMER in cus:CUSTOMER() \
             return <CustomerProfile> \
               <CID>{fn:data($CUSTOMER/CID)}</CID> \
               <LAST_NAME>{fn:data($CUSTOMER/LAST_NAME)}</LAST_NAME> \
               <Orders>{ \
                 for $ORDER in cus:getORDER($CUSTOMER) \
                 return <ORDER> \
                   <OID>{fn:data($ORDER/OID)}</OID> \
                   <STATUS>{fn:data($ORDER/STATUS)}</STATUS> \
                 </ORDER> \
               }</Orders> \
               <Cards>{ \
                 for $CC in cre:CREDIT_CARD() \
                 where $CUSTOMER/CID eq $CC/CID \
                 return <CARD><CCID>{fn:data($CC/CCID)}</CCID></CARD> \
               }</Cards> \
               { for $r in ws:rate($CUSTOMER) return <Rating>{fn:data($r)}</Rating> } \
             </CustomerProfile>",
            NS,
        )
        .unwrap();
        let lin = analyze(&body, &resolver()).unwrap();
        let root = &lin.root;
        assert_eq!(root.table, "CUSTOMER");
        assert_eq!(root.source, "db1");
        assert_eq!(root.column_of("LAST_NAME"), Some("LAST_NAME"));
        assert_eq!(root.column_of("CID"), Some("CID"));
        assert_eq!(root.children.len(), 2);
        let orders = &root.children[0];
        assert_eq!(orders.wrapper.as_deref(), Some("Orders"));
        assert_eq!(orders.node.table, "ORDER");
        assert_eq!(orders.node.column_of("STATUS"), Some("STATUS"));
        let cards = &root.children[1];
        assert_eq!(cards.node.source, "db2");
        assert_eq!(cards.node.table, "CREDIT_CARD");
        // The web-service part is unmapped.
        assert_eq!(root.unmapped, vec!["Rating"]);
        // Sources deduped and sorted.
        assert_eq!(lin.sources(), vec!["db1", "db2"]);
    }

    #[test]
    fn renamed_fields_map_to_columns() {
        // <Total>{fn:data($O/TOTAL_ORDER_AMOUNT)}</Total> — element and
        // column names differ (Figure 3's TOTAL).
        let body = parse_expr(
            "for $C in cus:CUSTOMER() \
             return <P><Surname>{fn:data($C/LAST_NAME)}</Surname></P>",
            NS,
        )
        .unwrap();
        let lin = analyze(&body, &resolver()).unwrap();
        assert_eq!(lin.root.column_of("Surname"), Some("LAST_NAME"));
        assert_eq!(lin.root.element_of("LAST_NAME"), Some("Surname"));
    }

    #[test]
    fn computed_fields_are_unmapped() {
        let body = parse_expr(
            "for $C in cus:CUSTOMER() \
             return <P> \
               <CID>{fn:data($C/CID)}</CID> \
               <Label>{fn:concat($C/CID, '-', $C/LAST_NAME)}</Label> \
             </P>",
            NS,
        )
        .unwrap();
        let lin = analyze(&body, &resolver()).unwrap();
        assert_eq!(lin.root.fields.len(), 1);
        assert_eq!(lin.root.unmapped, vec!["Label"]);
    }

    #[test]
    fn unanalyzable_body_is_dsp0002() {
        let body = parse_expr("1 + 1", NS).unwrap();
        let err = analyze(&body, &resolver()).unwrap_err();
        assert!(err.is(ErrorCode::DSP0002));
        // A for over an unregistered function also fails.
        let body =
            parse_expr("for $x in ws:all() return <P><A>{fn:data($x/A)}</A></P>", NS)
                .unwrap();
        assert!(analyze(&body, &resolver()).is_err());
    }

    #[test]
    fn shape_for_element_finds_nested() {
        let body = parse_expr(
            "for $C in cus:CUSTOMER() \
             return <P><Orders>{for $O in cus:getORDER($C) \
                     return <O><OID>{fn:data($O/OID)}</OID></O>}</Orders></P>",
            NS,
        )
        .unwrap();
        let lin = analyze(&body, &resolver()).unwrap();
        assert!(lin.shape_for_element(&QName::new("P")).is_some());
        let o = lin.shape_for_element(&QName::new("O")).unwrap();
        assert_eq!(o.table, "ORDER");
        assert!(lin.shape_for_element(&QName::new("Nope")).is_none());
        assert_eq!(lin.all_shapes().len(), 2);
    }

    #[test]
    fn bare_path_fields_also_map() {
        // Without fn:data — still provably column-sourced.
        let body = parse_expr(
            "for $C in cus:CUSTOMER() return <P><CID>{$C/CID}</CID></P>",
            NS,
        )
        .unwrap();
        let lin = analyze(&body, &resolver()).unwrap();
        assert_eq!(lin.root.column_of("CID"), Some("CID"));
    }
}
