//! Cross-module ALDSP tests: decomposition, OCC policies, overrides,
//! and the end-to-end disconnected-update story of Figure 4.

use std::rc::Rc;

use xdm::error::ErrorCode;
use xdm::qname::QName;
use xdm::sequence::{Item, Sequence};

use crate::decompose::{OccPolicy, UpdateOverride};
use crate::demo;
use crate::rel::SqlValue;

fn demo3() -> demo::Demo {
    demo::build(3, 2, 2).unwrap()
}

fn last_name_in_db(d: &demo::Demo, cid: i64) -> String {
    let rows = d
        .db1
        .select("CUSTOMER", &vec![("CID".into(), SqlValue::Int(cid))])
        .unwrap();
    rows[0][2].lexical()
}

// ------------------------------------------------- figure 4 round trip

#[test]
fn disconnected_update_round_trip() {
    // Figure 4: get → modify ("Carrey" → "Carey") → submit.
    let d = demo3();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    let before = g.get_value(0, &["LAST_NAME"]).unwrap();
    g.set_value(0, &["LAST_NAME"], "Changed").unwrap();
    d.space.submit(&g).unwrap();
    assert_eq!(last_name_in_db(&d, 1), "Changed");
    assert_ne!(before, "Changed");
    // The generated SQL is a keyed, conditioned UPDATE.
    let sql = d.space.last_decomposition.borrow().clone();
    assert_eq!(sql.len(), 1);
    assert!(sql[0].contains("UPDATE CUSTOMER SET LAST_NAME = 'Changed'"), "{sql:?}");
    assert!(sql[0].contains("CID = 1"), "{sql:?}");
    // UpdatedValues policy: old value conditioned into the WHERE.
    assert!(sql[0].contains(&format!("LAST_NAME = '{before}'")), "{sql:?}");
}

#[test]
fn unaffected_sources_not_touched() {
    // §II.C: "unaffected data sources are not involved in an update".
    let d = demo3();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    g.set_value(0, &["LAST_NAME"], "OnlyDb1").unwrap();
    let (c2_before, a2_before) = d.db2.stats();
    d.space.submit(&g).unwrap();
    let (c2_after, a2_after) = d.db2.stats();
    assert_eq!((c2_before, a2_before), (c2_after, a2_after), "db2 must be untouched");
}

#[test]
fn nested_order_update_decomposes_to_child_table() {
    let d = demo3();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    g.set_value(0, &["Orders", "ORDER#1", "STATUS"], "CANCELLED").unwrap();
    d.space.submit(&g).unwrap();
    let rows = d
        .db1
        .select("ORDER", &vec![("OID".into(), SqlValue::Int(2))])
        .unwrap();
    assert_eq!(rows[0][4], SqlValue::Str("CANCELLED".into()));
}

#[test]
fn renamed_element_updates_original_column() {
    // <TOTAL> maps to TOTAL_ORDER_AMOUNT.
    let d = demo3();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    g.set_value(0, &["Orders", "ORDER", "TOTAL"], "123.45").unwrap();
    d.space.submit(&g).unwrap();
    let rows = d
        .db1
        .select("ORDER", &vec![("OID".into(), SqlValue::Int(1))])
        .unwrap();
    assert_eq!(rows[0][3].lexical(), "123.45");
    let sql = d.space.last_decomposition.borrow().clone();
    assert!(sql[0].contains("SET TOTAL_ORDER_AMOUNT = 123.45"), "{sql:?}");
}

#[test]
fn cross_source_update_runs_2pc() {
    let d = demo3();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    g.set_value(0, &["LAST_NAME"], "Both").unwrap();
    g.set_value(0, &["CreditCards", "CREDIT_CARD", "BRAND"], "NEWBRAND").unwrap();
    d.space.submit(&g).unwrap();
    assert_eq!(last_name_in_db(&d, 1), "Both");
    let cards = d
        .db2
        .select("CREDIT_CARD", &vec![("CCID".into(), SqlValue::Int(1))])
        .unwrap();
    assert_eq!(cards[0][3], SqlValue::Str("NEWBRAND".into()));
    let sql = d.space.last_decomposition.borrow().clone();
    assert_eq!(sql.len(), 2);
    assert!(sql.iter().any(|s| s.starts_with("[db1]")));
    assert!(sql.iter().any(|s| s.starts_with("[db2]")));
}

#[test]
fn multiple_changes_same_row_merge_into_one_statement() {
    let d = demo3();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    g.set_value(0, &["LAST_NAME"], "A").unwrap();
    g.set_value(0, &["FIRST_NAME"], "B").unwrap();
    d.space.submit(&g).unwrap();
    let sql = d.space.last_decomposition.borrow().clone();
    assert_eq!(sql.len(), 1, "one UPDATE for two fields: {sql:?}");
    assert!(sql[0].contains("LAST_NAME = 'A'"));
    assert!(sql[0].contains("FIRST_NAME = 'B'"));
}

#[test]
fn unmapped_element_update_fails_with_dsp0002() {
    // CreditRating comes from the web service — no lineage.
    let d = demo3();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    g.set_value(0, &["CreditRating"], "999").unwrap();
    let err = d.space.submit(&g).unwrap_err();
    assert!(err.is(ErrorCode::DSP0002));
}

// ----------------------------------------------------------- policies

#[test]
fn occ_read_values_widens_where_clause() {
    let d = demo3();
    d.space
        .set_occ_policy("CustomerProfile", OccPolicy::ReadValues)
        .unwrap();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    g.set_value(0, &["LAST_NAME"], "Wide").unwrap();
    d.space.submit(&g).unwrap();
    let sql = d.space.last_decomposition.borrow().clone();
    // All read fields of the row are conditioned.
    assert!(sql[0].contains("FIRST_NAME = "), "{sql:?}");
    assert!(sql[0].contains("LAST_NAME = "), "{sql:?}");
    assert!(sql[0].contains("CID = 1"), "{sql:?}");
}

#[test]
fn occ_chosen_subset_narrows_where_clause() {
    let d = demo3();
    d.space
        .set_occ_policy(
            "CustomerProfile",
            OccPolicy::ChosenSubset(vec!["FIRST_NAME".into()]),
        )
        .unwrap();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    g.set_value(0, &["LAST_NAME"], "Narrow").unwrap();
    d.space.submit(&g).unwrap();
    let sql = d.space.last_decomposition.borrow().clone();
    assert!(sql[0].contains("WHERE CID = 1 AND FIRST_NAME = "), "{sql:?}");
    // The changed column's old value is NOT conditioned.
    assert!(!sql[0].contains("LAST_NAME = 'Carey'"), "{sql:?}");
}

#[test]
fn occ_conflict_detected_and_nothing_applied() {
    let d = demo3();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    g.set_value(0, &["LAST_NAME"], "Mine").unwrap();
    // A concurrent writer sneaks in after the read.
    d.db1
        .execute(vec![crate::rel::WriteOp::Update {
            table: "CUSTOMER".into(),
            set: vec![("LAST_NAME".into(), SqlValue::Str("Theirs".into()))],
            cond: vec![("CID".into(), SqlValue::Int(1))],
            expect_rows: 1,
        }])
        .unwrap();
    let err = d.space.submit(&g).unwrap_err();
    assert!(err.is(ErrorCode::DSP0001), "{err}");
    // The concurrent write survives (no lost update).
    assert_eq!(last_name_in_db(&d, 1), "Theirs");
}

#[test]
fn occ_chosen_subset_misses_conflicts_outside_subset() {
    // The trade-off the paper's third policy makes: a version-column
    // policy does not see conflicting writes to other columns.
    let d = demo3();
    d.space
        .set_occ_policy(
            "CustomerProfile",
            OccPolicy::ChosenSubset(vec!["FIRST_NAME".into()]),
        )
        .unwrap();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    g.set_value(0, &["LAST_NAME"], "Mine").unwrap();
    d.db1
        .execute(vec![crate::rel::WriteOp::Update {
            table: "CUSTOMER".into(),
            set: vec![("LAST_NAME".into(), SqlValue::Str("Theirs".into()))],
            cond: vec![("CID".into(), SqlValue::Int(1))],
            expect_rows: 1,
        }])
        .unwrap();
    // Submit succeeds — the subset (FIRST_NAME) did not change.
    d.space.submit(&g).unwrap();
    assert_eq!(last_name_in_db(&d, 1), "Mine");
}

// ----------------------------------------------------------- overrides

#[test]
fn rust_override_replaces_default_handling() {
    // The ALDSP 2.5 story: a "Java" override takes over.
    let d = demo3();
    let called = Rc::new(std::cell::RefCell::new(false));
    let c2 = called.clone();
    d.space
        .set_update_override(
            "CustomerProfile",
            UpdateOverride::Rust(Rc::new(move |_space, _graph| {
                *c2.borrow_mut() = true;
                Ok(())
            })),
        )
        .unwrap();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    g.set_value(0, &["LAST_NAME"], "X").unwrap();
    d.space.submit(&g).unwrap();
    assert!(*called.borrow());
    // Default handling did NOT run.
    assert_ne!(last_name_in_db(&d, 1), "X");
}

#[test]
fn rust_override_can_extend_default_handling() {
    // "The update override could either extend or replace the default
    // update handling logic" (§II.C).
    let d = demo3();
    d.space
        .set_update_override(
            "CustomerProfile",
            UpdateOverride::Rust(Rc::new(|space, graph| {
                // Enforce a business rule, then delegate.
                for c in graph.changes() {
                    if c.node.string_value().is_empty() {
                        return Err(xdm::error::XdmError::new(
                            ErrorCode::DSP0003,
                            "empty values are not allowed",
                        ));
                    }
                }
                space.default_submit(graph)
            })),
        )
        .unwrap();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    g.set_value(0, &["LAST_NAME"], "Extended").unwrap();
    d.space.submit(&g).unwrap();
    assert_eq!(last_name_in_db(&d, 1), "Extended");
    // And the rule fires.
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    g.set_value(0, &["LAST_NAME"], "").unwrap();
    assert!(d.space.submit(&g).is_err());
}

#[test]
fn xqse_override_receives_datagraph() {
    // The ALDSP 3.0 story: the override is an XQSE procedure. This one
    // audits the change and applies the update via the physical
    // update procedure — no Java required.
    let d = demo3();
    d.space
        .xqse()
        .load(
            r#"
declare namespace ovr = "urn:ovr";
declare namespace cus = "ld:db1/CUSTOMER";
declare procedure ovr:handleUpdate($dg as element()) as empty-sequence()
{
  iterate $profile over $dg/CustomerProfile {
    declare $row := <CUSTOMER>
        <CID>{fn:data($profile/CID)}</CID>
        <FIRST_NAME>{fn:data($profile/FIRST_NAME)}</FIRST_NAME>
        <LAST_NAME>{fn:data($profile/LAST_NAME)}</LAST_NAME>
      </CUSTOMER>;
    cus:updateCUSTOMER($row);
  }
};
"#,
        )
        .unwrap();
    d.space
        .set_update_override(
            "CustomerProfile",
            UpdateOverride::Procedure(QName::with_ns("urn:ovr", "handleUpdate")),
        )
        .unwrap();
    let g = d.space.get("CustomerProfile", "getProfile", vec![]).unwrap();
    g.set_value(0, &["LAST_NAME"], "ViaXqse").unwrap();
    d.space.submit(&g).unwrap();
    assert_eq!(last_name_in_db(&d, 1), "ViaXqse");
}

// -------------------------------------------------- create and delete

#[test]
fn create_instance_decomposes_across_sources() {
    let d = demo3();
    let xml = "<CustomerProfile><CID>99</CID><LAST_NAME>New</LAST_NAME>\
               <FIRST_NAME>Person</FIRST_NAME>\
               <Orders><ORDER><OID>990</OID><CID>99</CID><STATUS>OPEN</STATUS></ORDER></Orders>\
               <CreditCards><CREDIT_CARD><CCID>990</CCID><CID>99</CID>\
               <NUMBER>4000-99</NUMBER></CREDIT_CARD></CreditCards>\
               </CustomerProfile>";
    let doc = xmlparse::parse(xml).unwrap();
    let inst = doc.children()[0].clone();
    d.space.create_instance("CustomerProfile", &inst).unwrap();
    assert_eq!(last_name_in_db(&d, 99), "New");
    assert_eq!(
        d.db1.select("ORDER", &vec![("OID".into(), SqlValue::Int(990))]).unwrap().len(),
        1
    );
    assert_eq!(
        d.db2
            .select("CREDIT_CARD", &vec![("CCID".into(), SqlValue::Int(990))])
            .unwrap()
            .len(),
        1
    );
}

#[test]
fn delete_instance_removes_children_first() {
    let d = demo3();
    let g = d.space.get("CustomerProfile", "getProfileById", vec![Sequence::one(
        Item::string("2"),
    )]).unwrap();
    let inst = g.instance(0).unwrap();
    d.space.delete_instance("CustomerProfile", &inst).unwrap();
    assert!(d
        .db1
        .select("CUSTOMER", &vec![("CID".into(), SqlValue::Int(2))])
        .unwrap()
        .is_empty());
    assert!(d
        .db1
        .select("ORDER", &vec![("CID".into(), SqlValue::Int(2))])
        .unwrap()
        .is_empty());
    assert!(d
        .db2
        .select("CREDIT_CARD", &vec![("CID".into(), SqlValue::Int(2))])
        .unwrap()
        .is_empty());
    // Others survive.
    assert_eq!(d.db1.row_count("CUSTOMER").unwrap(), 2);
}

// ------------------------------------------ use case 1, full platform

#[test]
fn use_case_1_user_defined_delete_via_xqse() {
    // §III.D.1: augment the generated methods with an XQSE procedure
    // that deletes by id, internally using the default delete method.
    let d = demo3();
    d.space
        .xqse()
        .load(
            r#"
declare namespace tns = "urn:uc1";
declare namespace cus = "ld:db1/CUSTOMER";
declare procedure tns:deleteByCID($cid as xs:string) as empty-sequence()
{
  declare $cust := cus:getByCID($cid);
  if (fn:not(fn:empty($cust))) then cus:deleteCUSTOMER($cust);
};
"#,
        )
        .unwrap();
    let mut env = xqeval::Env::new();
    d.space
        .xqse()
        .call_procedure(
            &QName::with_ns("urn:uc1", "deleteByCID"),
            vec![Sequence::one(Item::string("3"))],
            &mut env,
        )
        .unwrap();
    assert_eq!(d.db1.row_count("CUSTOMER").unwrap(), 2);
    // Deleting a non-existent id is a no-op (the `if` guard).
    d.space
        .xqse()
        .call_procedure(
            &QName::with_ns("urn:uc1", "deleteByCID"),
            vec![Sequence::one(Item::string("404"))],
            &mut env,
        )
        .unwrap();
    assert_eq!(d.db1.row_count("CUSTOMER").unwrap(), 2);
}

// ------------------------------------------------------ physical CUD

#[test]
fn generated_physical_methods_work_from_queries() {
    let d = demo3();
    let engine = d.space.engine();
    // Read method.
    let out = engine
        .eval_expr_str("fn:count(cus:CUSTOMER())", &[("cus", "ld:db1/CUSTOMER")])
        .unwrap();
    assert_eq!(out.string_value().unwrap(), "3");
    // Navigation function.
    let out = engine
        .eval_expr_str(
            "for $c in cus:CUSTOMER()[CID eq '1'] return fn:count(cus:getORDER($c))",
            &[("cus", "ld:db1/CUSTOMER")],
        )
        .unwrap();
    assert_eq!(out.string_value().unwrap(), "2");
    // Keyed read.
    let out = engine
        .eval_expr_str(
            "fn:data(cus:getByCID('2')/LAST_NAME)",
            &[("cus", "ld:db1/CUSTOMER")],
        )
        .unwrap();
    assert_eq!(out.string_value().unwrap(), "Borkar");
}

#[test]
fn service_catalog_metadata() {
    use crate::service::{MethodKind, ServiceKind};
    let d = demo3();
    let names = d.space.service_names();
    assert!(names.contains(&"db1/CUSTOMER".to_string()));
    assert!(names.contains(&"db1/ORDER".to_string()));
    assert!(names.contains(&"db2/CREDIT_CARD".to_string()));
    assert!(names.contains(&"ws/CreditRating".to_string()));
    assert!(names.contains(&"CustomerProfile".to_string()));
    let cust = d.space.service("db1/CUSTOMER").unwrap();
    assert_eq!(cust.kind, ServiceKind::Entity);
    let kinds: Vec<MethodKind> = cust.methods.iter().map(|m| m.kind).collect();
    assert!(kinds.contains(&MethodKind::Read));
    assert!(kinds.contains(&MethodKind::Create));
    assert!(kinds.contains(&MethodKind::Update));
    assert!(kinds.contains(&MethodKind::Delete));
    assert!(kinds.contains(&MethodKind::Navigation));
    let ws = d.space.service("ws/CreditRating").unwrap();
    assert_eq!(ws.kind, ServiceKind::Library);
    let logical = d.space.service("CustomerProfile").unwrap();
    assert_eq!(logical.shape.as_deref(), Some("CustomerProfile"));
}

#[test]
fn describe_renders_design_view() {
    let d = demo3();
    let s = d.space.describe("CustomerProfile").unwrap();
    assert!(s.contains("entity data service: CustomerProfile"), "{s}");
    assert!(s.contains("shape: element(CustomerProfile)"), "{s}");
    assert!(s.contains("db1/CUSTOMER"), "{s}");
    assert!(s.contains("db2/CREDIT_CARD"), "{s}");
    assert!(s.contains("not updatable (no lineage): CreditRating"), "{s}");
    let s = d.space.describe("db1/CUSTOMER").unwrap();
    assert!(s.contains("read      CUSTOMER#0"), "{s}");
    assert!(s.contains("navigate  getORDER#1"), "{s}");
    assert!(s.contains("create    createCUSTOMER#1"), "{s}");
    assert!(d.space.describe("nosuch").is_err());
}
