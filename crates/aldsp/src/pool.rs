//! The concurrent serving layer: a fixed pool of worker threads, each
//! owning its own single-threaded XQSE [`Engine`](xqeval::Engine)
//! (the `Rc`/`RefCell` XDM arena is deliberately not shared), all
//! bound to the same `Arc`-shared [`Database`](crate::rel::Database)
//! handles, fed by a bounded MPMC work queue.
//!
//! ALDSP was a middle-tier server multiplexing many concurrent client
//! requests over shared relational and web-service sources (PAPER
//! §II). This module reproduces that regime:
//!
//! * **Engine per worker.** The XDM arena, plan cache, join and
//!   materialization caches are all `Rc`/`Cell` structures — cheap,
//!   single-threaded, and correct precisely because no other thread
//!   ever sees them. Each worker builds its **own** [`DataSpace`]
//!   (via the caller-supplied builder) over the **shared** database
//!   handles; plan-cache invalidation by registration generation
//!   therefore still works per worker.
//! * **Shard-locked sources.** `rel::Database` holds one `RwLock` per
//!   table, so readers of different tables — and concurrent readers
//!   of the same table — never contend; see the concurrency-model
//!   notes in [`crate::rel`].
//! * **Shared breaker/injector cores.** Worker builders install one
//!   shared [`Access`](crate::resilience::Access) (the `Arc<Mutex<…>>`
//!   injector/breaker cores inside it are the shared state), so a
//!   circuit breaker tripped by one worker is immediately observed by
//!   all, while each worker thread keeps its own lock-free cached
//!   clone of the `Access` for the hot path.
//!
//! * **Request budgets and admission control.** The spec can attach a
//!   per-request [`Budget`] (deadline / fuel / memory); the pool
//!   stamps the deadline at *admission*, so time spent queued counts
//!   against it. [`ServePool::offer`] is the overload-facing entry:
//!   a full queue sheds instantly with `aldsp:OVERLOADED` instead of
//!   blocking, and a request whose deadline expired while queued is
//!   shed at dispatch without running. Budget terminations
//!   (`aldsp:DEADLINE_EXCEEDED` and friends) and sheds are counted in
//!   the [`PoolReport`] and folded into the aggregated [`OptStats`].
//! * **Panic containment.** `serve_one` runs under `catch_unwind`: a
//!   panicking request answers its client with a typed
//!   `aldsp:SRC_UNAVAILABLE` error instead of deadlocking every
//!   client blocked on the dead worker's queue.
//!
//! The kill switch `XQSE_SERVE_WORKERS` overrides the requested
//! worker count (e.g. `XQSE_SERVE_WORKERS=1` reproduces the
//! single-threaded numbers; EXPERIMENTS.md E14 relies on this).
//! `XQSE_DISABLE_BUDGETS=1` disables budget creation entirely.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use xdm::error::{XdmError, XdmResult};
use xdm::sequence::{Item, Sequence};

use xqeval::context::Env;
use xqeval::{Budget, BudgetClock, OptStats};

use crate::errors::AldspCode;
use crate::fault;
use crate::service::DataSpace;

/// Configuration for a [`ServePool`].
#[derive(Clone)]
pub struct ServeSpec {
    /// Requested worker count (≥ 1). The `XQSE_SERVE_WORKERS`
    /// environment variable, when set to a positive integer,
    /// overrides this.
    pub workers: usize,
    /// Bound of the MPMC request queue; senders block when it is
    /// full (closed-loop back-pressure, like a server's accept
    /// backlog). `0` means "4 × workers".
    pub queue_capacity: usize,
    /// Per-request wall-clock deadline in ms, stamped at admission
    /// (queue wait counts). `None` = no deadline.
    pub deadline_ms: Option<u64>,
    /// Per-request evaluation-fuel allowance. `None` = unlimited.
    pub fuel: Option<u64>,
    /// Per-request XDM allocation ceiling. `None` = unlimited.
    pub memory: Option<u64>,
    /// Clock deadlines are read against. `None` = real elapsed time
    /// since pool start; chaos tests install the resilience layer's
    /// virtual clock here for deterministic expiry.
    pub clock: Option<BudgetClock>,
}

impl fmt::Debug for ServeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeSpec")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("deadline_ms", &self.deadline_ms)
            .field("fuel", &self.fuel)
            .field("memory", &self.memory)
            .field("clock", &self.clock.as_ref().map(|_| "<custom>"))
            .finish()
    }
}

impl ServeSpec {
    /// A spec with the default queue bound and no budgets.
    pub fn new(workers: usize) -> ServeSpec {
        ServeSpec {
            workers,
            queue_capacity: 0,
            deadline_ms: None,
            fuel: None,
            memory: None,
            clock: None,
        }
    }

    /// Give every request a wall-clock deadline (builder style).
    pub fn with_deadline_ms(mut self, ms: u64) -> ServeSpec {
        self.deadline_ms = Some(ms);
        self
    }

    /// Give every request an evaluation-fuel allowance.
    pub fn with_fuel(mut self, steps: u64) -> ServeSpec {
        self.fuel = Some(steps);
        self
    }

    /// Give every request an XDM allocation ceiling.
    pub fn with_memory(mut self, units: u64) -> ServeSpec {
        self.memory = Some(units);
        self
    }

    /// Read deadlines off `clock` instead of real elapsed time.
    pub fn with_clock(mut self, clock: BudgetClock) -> ServeSpec {
        self.clock = Some(clock);
        self
    }
}

/// A request argument — the subset of XDM items a serving client can
/// pass across threads.
#[derive(Debug, Clone)]
pub enum ServeArg {
    /// An `xs:integer`.
    Int(i64),
    /// An `xs:string`.
    Str(String),
}

impl ServeArg {
    fn to_sequence(&self) -> Sequence {
        match self {
            ServeArg::Int(i) => Sequence::one(Item::integer(*i)),
            ServeArg::Str(s) => Sequence::one(Item::string(s.clone())),
        }
    }
}

/// One unit of serving work. All payloads are plain data (`String`s
/// and integers) so requests cross the thread boundary without
/// touching the XDM arena.
#[derive(Debug, Clone)]
pub enum ServeRequest {
    /// Invoke a data-service read method and return the serialized
    /// instances (the Figure-4 "get" half).
    Get {
        /// The data service (e.g. `CustomerProfile`).
        service: String,
        /// The read method (e.g. `getProfileById`).
        method: String,
        /// Method arguments.
        args: Vec<ServeArg>,
    },
    /// Run an XQSE program text and return the serialized result.
    Run {
        /// The program source.
        program: String,
    },
    /// Read a data graph, apply SDO leaf changes, and submit it back
    /// (the Figure-4 "update" half — decomposition + 2PC underneath).
    Submit {
        /// The logical data service.
        service: String,
        /// The read method used to fetch the graph.
        method: String,
        /// Read-method arguments.
        args: Vec<ServeArg>,
        /// Leaf edits: `(instance index, path steps, new value)`.
        sets: Vec<(usize, Vec<String>, String)>,
    },
}

/// A completed request: which worker served it and what came back
/// (serialized XML for reads, `"ok"` for submits).
#[derive(Debug, Clone)]
pub struct ServeReply {
    /// Index of the worker that served the request.
    pub worker: usize,
    /// Serialized result or the typed error the request raised.
    pub result: Result<String, XdmError>,
}

/// Per-pool totals returned by [`ServePool::shutdown`].
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// Effective worker count (after the kill switch).
    pub workers: usize,
    /// Requests served per worker (indexed by worker).
    pub served: Vec<u64>,
    /// Sum of every worker's optimizer/plan/ws counters — the totals
    /// line `xqsh --explain` prints under the pool. Pool-level sheds
    /// and budget cancellations are folded into its `budget_*`
    /// fields.
    pub stats: OptStats,
    /// Builder failures, by worker (a failed worker answers every
    /// request it dequeues with the error instead of crashing the
    /// pool).
    pub init_errors: Vec<Option<String>>,
    /// Requests presented to the pool ([`ServePool::call`] +
    /// [`ServePool::offer`]). Always
    /// `completed + shed + cancelled`.
    pub offered: u64,
    /// Requests that ran to completion — success or an ordinary
    /// (non-budget) error.
    pub completed: u64,
    /// Requests refused without running: queue full at [`offer`]
    /// time, pool shut down, or deadline already consumed by queue
    /// wait at dispatch.
    ///
    /// [`offer`]: ServePool::offer
    pub shed: u64,
    /// Requests that started but were terminated by their budget
    /// (deadline, fuel, memory, or explicit cancel).
    pub cancelled: u64,
}

/// Shared admission/outcome counters (atomic: clients bump `offered`
/// and `shed`, workers bump the rest).
#[derive(Default)]
struct PoolCounters {
    offered: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    cancelled: AtomicU64,
}

struct Job {
    request: ServeRequest,
    reply: Arc<ReplySlot>,
    /// The request's budget, stamped at admission; `None` when the
    /// spec sets no limits (or budgets are disabled).
    budget: Option<Arc<Budget>>,
}

#[derive(Default)]
struct ReplySlot {
    slot: Mutex<Option<ServeReply>>,
    ready: Condvar,
}

impl ReplySlot {
    fn fill(&self, reply: ServeReply) {
        if let Ok(mut guard) = self.slot.lock() {
            *guard = Some(reply);
            self.ready.notify_all();
        }
    }

    fn wait(&self) -> ServeReply {
        let fallback = || ServeReply {
            worker: usize::MAX,
            result: Err(crate::errors::AldspCode::SrcUnavailable
                .error("serve pool reply channel poisoned")),
        };
        let Ok(mut guard) = self.slot.lock() else { return fallback() };
        loop {
            if let Some(reply) = guard.take() {
                return reply;
            }
            guard = match self.ready.wait(guard) {
                Ok(g) => g,
                Err(_) => return fallback(),
            };
        }
    }
}

struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Why [`Queue::try_push`] refused a job.
enum Refused {
    /// The queue is at capacity — the pool is overloaded.
    Full,
    /// The pool is shutting down.
    Closed,
}

/// Bounded MPMC queue on std `Mutex`/`Condvar`: producers block when
/// full, workers block when empty, `close` wakes everyone for a
/// drain-then-exit shutdown.
struct Queue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl Queue {
    fn new(capacity: usize) -> Queue {
        Queue {
            inner: Mutex::new(QueueInner { jobs: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue, blocking while full. Returns `false` when the queue
    /// is (or becomes) closed — the job is dropped, not served.
    fn push(&self, job: Job) -> bool {
        let Ok(mut inner) = self.inner.lock() else { return false };
        loop {
            if inner.closed {
                return false;
            }
            if inner.jobs.len() < self.capacity {
                inner.jobs.push_back(job);
                self.not_empty.notify_one();
                return true;
            }
            inner = match self.not_full.wait(inner) {
                Ok(g) => g,
                Err(_) => return false,
            };
        }
    }

    /// Non-blocking enqueue: refuse instead of waiting when the queue
    /// is full. Admission control for the overload path — the caller
    /// turns a refusal into an immediate `aldsp:OVERLOADED` reply.
    fn try_push(&self, job: Job) -> Result<(), Refused> {
        let Ok(mut inner) = self.inner.lock() else { return Err(Refused::Closed) };
        if inner.closed {
            return Err(Refused::Closed);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(Refused::Full);
        }
        inner.jobs.push_back(job);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while empty. `None` means closed **and**
    /// drained: time for the worker to exit.
    fn pop(&self) -> Option<Job> {
        let Ok(mut inner) = self.inner.lock() else { return None };
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = match self.not_empty.wait(inner) {
                Ok(g) => g,
                Err(_) => return None,
            };
        }
    }

    fn close(&self) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.closed = true;
        }
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

struct WorkerExit {
    served: u64,
    stats: OptStats,
    init_error: Option<String>,
}

/// The serving pool: `workers` threads, each with its own engine and
/// dataspace, pulling [`ServeRequest`]s off one bounded queue.
///
/// `builder(i)` runs **on** worker `i`'s thread and must register the
/// shared sources into a fresh [`DataSpace`] (databases clone-share
/// state; web services are rebuilt per worker because their handlers
/// are `Rc` closures). See [`crate::demo::assemble`] for the
/// canonical builder body.
pub struct ServePool {
    queue: Arc<Queue>,
    handles: Vec<JoinHandle<WorkerExit>>,
    workers: usize,
    /// Budget knobs copied from the spec.
    deadline_ms: Option<u64>,
    fuel: Option<u64>,
    memory: Option<u64>,
    /// Clock request deadlines read from (spec override, or real
    /// elapsed ms since pool start).
    clock: BudgetClock,
    counters: Arc<PoolCounters>,
}

/// Effective worker count: the `XQSE_SERVE_WORKERS` kill switch wins
/// over the spec when it parses as a positive integer.
pub fn effective_workers(requested: usize) -> usize {
    let forced = std::env::var("XQSE_SERVE_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1);
    forced.unwrap_or(requested).max(1)
}

impl ServePool {
    /// Start the pool. `builder(i)` is invoked once on each worker
    /// thread to construct that worker's `DataSpace` over the shared
    /// source handles.
    pub fn start<B>(spec: ServeSpec, builder: B) -> ServePool
    where
        B: Fn(usize) -> XdmResult<DataSpace> + Send + Sync + 'static,
    {
        let workers = effective_workers(spec.workers);
        let capacity = if spec.queue_capacity == 0 {
            workers * 4
        } else {
            spec.queue_capacity
        };
        let queue = Arc::new(Queue::new(capacity));
        let builder = Arc::new(builder);
        let counters = Arc::new(PoolCounters::default());
        let clock = spec.clock.clone().unwrap_or_else(|| {
            let t0 = std::time::Instant::now();
            Arc::new(move || t0.elapsed().as_millis() as u64)
        });
        // No worker serves before every worker has finished building:
        // builders write the shared sources' access slots, and a
        // half-initialized pool must not serve requests with faults or
        // breakers only partially installed.
        let barrier = Arc::new(std::sync::Barrier::new(workers));
        let handles = (0..workers)
            .map(|i| {
                let queue = queue.clone();
                let builder = builder.clone();
                let barrier = barrier.clone();
                let counters = counters.clone();
                std::thread::spawn(move || {
                    worker_loop(i, &queue, builder.as_ref(), &barrier, &counters)
                })
            })
            .collect();
        ServePool {
            queue,
            handles,
            workers,
            deadline_ms: spec.deadline_ms,
            fuel: spec.fuel,
            memory: spec.memory,
            clock,
            counters,
        }
    }

    /// Build the budget for one admitted request: the deadline is
    /// stamped *now*, so queue wait counts against it. `None` when the
    /// spec sets no limits or `XQSE_DISABLE_BUDGETS=1`.
    fn make_budget(&self) -> Option<Arc<Budget>> {
        if !xqeval::budget::budgets_enabled() {
            return None;
        }
        if self.deadline_ms.is_none() && self.fuel.is_none() && self.memory.is_none() {
            return None;
        }
        let mut b = Budget::with_clock(self.clock.clone());
        if let Some(ms) = self.deadline_ms {
            b = b.deadline_in(ms);
        }
        if let Some(steps) = self.fuel {
            b = b.limit_fuel(steps);
        }
        if let Some(units) = self.memory {
            b = b.limit_memory(units);
        }
        Some(Arc::new(b))
    }

    /// Effective worker count (after the kill switch).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Serve one request, blocking until a worker replies (the
    /// closed-loop client primitive: each client thread has at most
    /// one request in flight; a full queue applies back-pressure by
    /// blocking the client, never by shedding).
    pub fn call(&self, request: ServeRequest) -> ServeReply {
        self.counters.offered.fetch_add(1, Ordering::Relaxed);
        let reply = Arc::new(ReplySlot::default());
        let job = Job { request, reply: reply.clone(), budget: self.make_budget() };
        if !self.queue.push(job) {
            self.counters.shed.fetch_add(1, Ordering::Relaxed);
            return ServeReply {
                worker: usize::MAX,
                result: Err(AldspCode::Overloaded.error("serve pool is shut down")),
            };
        }
        reply.wait()
    }

    /// Serve one request with *load-shedding admission*: when the
    /// queue is full the request is refused immediately with
    /// `aldsp:OVERLOADED` instead of blocking — the open-loop /
    /// overload-facing entry point. Admitted requests block for their
    /// reply exactly like [`ServePool::call`].
    pub fn offer(&self, request: ServeRequest) -> ServeReply {
        self.counters.offered.fetch_add(1, Ordering::Relaxed);
        let reply = Arc::new(ReplySlot::default());
        let job = Job { request, reply: reply.clone(), budget: self.make_budget() };
        match self.queue.try_push(job) {
            Ok(()) => reply.wait(),
            Err(refused) => {
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
                let msg = match refused {
                    Refused::Full => "request shed: serve queue is full",
                    Refused::Closed => "serve pool is shut down",
                };
                ServeReply {
                    worker: usize::MAX,
                    result: Err(AldspCode::Overloaded.error(msg)),
                }
            }
        }
    }

    /// Close the queue, let the workers drain it, join them, and
    /// aggregate their counters.
    pub fn shutdown(self) -> PoolReport {
        self.queue.close();
        let mut report = PoolReport {
            workers: self.workers,
            served: Vec::with_capacity(self.handles.len()),
            stats: OptStats::default(),
            init_errors: Vec::with_capacity(self.handles.len()),
            offered: self.counters.offered.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
        };
        for handle in self.handles {
            match handle.join() {
                Ok(exit) => {
                    report.served.push(exit.served);
                    report.stats.accumulate(&exit.stats);
                    report.init_errors.push(exit.init_error);
                }
                Err(_) => {
                    report.served.push(0);
                    report.init_errors.push(Some("worker panicked".to_string()));
                }
            }
        }
        // Sheds are counted in the pool counter, never in any engine:
        // queue-full sheds happen on client threads outside an engine,
        // and dispatch-time sheds deliberately skip the engine counter.
        // Fold the pool total into the aggregated stats so one
        // `--explain` line covers the whole budget story.
        report.stats.budget_shed += report.shed;
        report
    }
}

fn worker_loop(
    idx: usize,
    queue: &Queue,
    builder: &(dyn Fn(usize) -> XdmResult<DataSpace> + Send + Sync),
    barrier: &std::sync::Barrier,
    counters: &PoolCounters,
) -> WorkerExit {
    // Tag this thread so injected faults record which worker hit them.
    fault::set_current_worker(Some(idx));
    let space = builder(idx);
    let init_error = space.as_ref().err().map(|e| e.to_string());
    barrier.wait();
    let mut served = 0u64;
    while let Some(job) = queue.pop() {
        // Dispatch-time shed: if queue wait already consumed the
        // deadline (or the client cancelled while queued), answer
        // OVERLOADED without starting any work.
        if let Some(b) = &job.budget {
            if b.check().is_err() {
                // Counted only in the pool counter; shutdown() folds
                // `report.shed` into the aggregated stats, so bumping
                // the engine counter here too would double-count.
                counters.shed.fetch_add(1, Ordering::Relaxed);
                job.reply.fill(ServeReply {
                    worker: idx,
                    result: Err(AldspCode::Overloaded.error(
                        "request shed at dispatch: queue wait consumed the deadline",
                    )),
                });
                continue;
            }
        }
        let result = match &space {
            Ok(space) => {
                // Budget creation is already gated on the kill switch;
                // force_budget installs/clears unconditionally so the
                // thread-local never leaks across requests even if the
                // env changes mid-run.
                space.engine().force_budget(job.budget.clone());
                // Contain panics: a panicking request must answer its
                // client, or every later client blocks forever on a
                // worker that no longer exists.
                let outcome = catch_unwind(AssertUnwindSafe(|| serve_one(space, &job.request)))
                    .unwrap_or_else(|_| {
                        Err(AldspCode::SrcUnavailable
                            .error("serving worker panicked while evaluating the request"))
                    });
                space.engine().force_budget(None);
                note_budget_outcome(space, counters, &outcome);
                outcome
            }
            Err(e) => {
                counters.completed.fetch_add(1, Ordering::Relaxed);
                Err(e.clone())
            }
        };
        served += 1;
        job.reply.fill(ServeReply { worker: idx, result });
    }
    let stats = match &space {
        Ok(space) => space.engine().opt_stats(),
        Err(_) => OptStats::default(),
    };
    WorkerExit { served, stats, init_error }
}

/// Classify a served request's outcome: budget terminations bump the
/// engine's per-dimension counters and the pool's `cancelled` bucket;
/// everything else — success or ordinary error — is `completed`.
fn note_budget_outcome(
    space: &DataSpace,
    counters: &PoolCounters,
    outcome: &Result<String, XdmError>,
) {
    let budget_code = match outcome {
        Err(e) => match crate::errors::AldspCode::of(e) {
            Some(
                code @ (AldspCode::DeadlineExceeded
                | AldspCode::FuelExhausted
                | AldspCode::MemoryLimit
                | AldspCode::Cancelled),
            ) => Some(code),
            _ => None,
        },
        Ok(_) => None,
    };
    match budget_code {
        Some(code) => {
            counters.cancelled.fetch_add(1, Ordering::Relaxed);
            let opt = space.engine().opt_counters();
            let cell = match code {
                AldspCode::DeadlineExceeded => &opt.budget_deadline,
                AldspCode::FuelExhausted => &opt.budget_fuel,
                AldspCode::MemoryLimit => &opt.budget_memory,
                _ => &opt.budget_cancelled,
            };
            cell.set(cell.get() + 1);
        }
        None => {
            counters.completed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn serve_one(space: &DataSpace, request: &ServeRequest) -> Result<String, XdmError> {
    match request {
        ServeRequest::Get { service, method, args } => {
            let args = args.iter().map(ServeArg::to_sequence).collect();
            let graph = space.get(service, method, args)?;
            Ok(xmlparse::serialize_sequence(graph.instances()))
        }
        ServeRequest::Run { program } => {
            // Streamed reply path: an eligible expression body comes
            // back lazy and is serialized as the pipeline drains, so a
            // paging/probing program never materializes the tuples an
            // early exit skips. Deferred evaluation errors (mid-stream
            // source faults, budget expiry) surface through the
            // fallible stream serializer as ordinary error replies.
            let mut env = Env::new();
            let out = space.xqse().run_lazy_with_env(program, &mut env)?;
            Ok(xmlparse::serialize_sequence_stream(&out)?)
        }
        ServeRequest::Submit { service, method, args, sets } => {
            let args = args.iter().map(ServeArg::to_sequence).collect();
            let graph = space.get(service, method, args)?;
            for (instance, path, value) in sets {
                let steps: Vec<&str> = path.iter().map(String::as_str).collect();
                graph.set_value(*instance, &steps, value)?;
            }
            space.submit(&graph)?;
            Ok("ok".to_string())
        }
    }
}

/// Serve `requests` through `clients` closed-loop client threads over
/// an existing pool and return `(replies, elapsed)`. Requests are
/// dealt round-robin to clients; each client blocks on one request at
/// a time (the E14 driver).
pub fn drive_closed_loop(
    pool: &ServePool,
    requests: &[ServeRequest],
    clients: usize,
) -> (Vec<ServeReply>, std::time::Duration) {
    let clients = clients.max(1);
    let started = std::time::Instant::now();
    let replies: Mutex<Vec<(usize, ServeReply)>> = Mutex::new(Vec::new());
    let next: AtomicU64 = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= requests.len() {
                    break;
                }
                let reply = pool.call(requests[i].clone());
                if let Ok(mut sink) = replies.lock() {
                    sink.push((i, reply));
                }
            });
        }
    });
    let elapsed = started.elapsed();
    let mut indexed = replies.into_inner().unwrap_or_default();
    indexed.sort_by_key(|(i, _)| *i);
    (indexed.into_iter().map(|(_, r)| r).collect(), elapsed)
}

/// The overload driver: like [`drive_closed_loop`] but each client
/// submits through [`ServePool::offer`], so arrivals the pool cannot
/// absorb are **shed instantly** with `aldsp:OVERLOADED` instead of
/// back-pressuring the client. Running many more clients than workers
/// approximates an open-loop arrival process at several multiples of
/// the pool's capacity — the E15 overload experiment drives 4 workers
/// with 4× the clients and asserts sheds fail fast while admitted
/// goodput holds.
pub fn drive_open_loop(
    pool: &ServePool,
    requests: &[ServeRequest],
    clients: usize,
) -> (Vec<ServeReply>, std::time::Duration) {
    let clients = clients.max(1);
    let started = std::time::Instant::now();
    let replies: Mutex<Vec<(usize, ServeReply)>> = Mutex::new(Vec::new());
    let next: AtomicU64 = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= requests.len() {
                    break;
                }
                let reply = pool.offer(requests[i].clone());
                if let Ok(mut sink) = replies.lock() {
                    sink.push((i, reply));
                }
            });
        }
    });
    let elapsed = started.elapsed();
    let mut indexed = replies.into_inner().unwrap_or_default();
    indexed.sort_by_key(|(i, _)| *i);
    (indexed.into_iter().map(|(_, r)| r).collect(), elapsed)
}
