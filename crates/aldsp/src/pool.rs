//! The concurrent serving layer: a fixed pool of worker threads, each
//! owning its own single-threaded XQSE [`Engine`](xqeval::Engine)
//! (the `Rc`/`RefCell` XDM arena is deliberately not shared), all
//! bound to the same `Arc`-shared [`Database`](crate::rel::Database)
//! handles, fed by a bounded MPMC work queue.
//!
//! ALDSP was a middle-tier server multiplexing many concurrent client
//! requests over shared relational and web-service sources (PAPER
//! §II). This module reproduces that regime:
//!
//! * **Engine per worker.** The XDM arena, plan cache, join and
//!   materialization caches are all `Rc`/`Cell` structures — cheap,
//!   single-threaded, and correct precisely because no other thread
//!   ever sees them. Each worker builds its **own** [`DataSpace`]
//!   (via the caller-supplied builder) over the **shared** database
//!   handles; plan-cache invalidation by registration generation
//!   therefore still works per worker.
//! * **Shard-locked sources.** `rel::Database` holds one `RwLock` per
//!   table, so readers of different tables — and concurrent readers
//!   of the same table — never contend; see the concurrency-model
//!   notes in [`crate::rel`].
//! * **Shared breaker/injector cores.** Worker builders install one
//!   shared [`Access`](crate::resilience::Access) (the `Arc<Mutex<…>>`
//!   injector/breaker cores inside it are the shared state), so a
//!   circuit breaker tripped by one worker is immediately observed by
//!   all, while each worker thread keeps its own lock-free cached
//!   clone of the `Access` for the hot path.
//!
//! The kill switch `XQSE_SERVE_WORKERS` overrides the requested
//! worker count (e.g. `XQSE_SERVE_WORKERS=1` reproduces the
//! single-threaded numbers; EXPERIMENTS.md E14 relies on this).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use xdm::error::{XdmError, XdmResult};
use xdm::sequence::{Item, Sequence};

use xqeval::context::Env;
use xqeval::OptStats;

use crate::fault;
use crate::service::DataSpace;

/// Configuration for a [`ServePool`].
#[derive(Debug, Clone)]
pub struct ServeSpec {
    /// Requested worker count (≥ 1). The `XQSE_SERVE_WORKERS`
    /// environment variable, when set to a positive integer,
    /// overrides this.
    pub workers: usize,
    /// Bound of the MPMC request queue; senders block when it is
    /// full (closed-loop back-pressure, like a server's accept
    /// backlog). `0` means "4 × workers".
    pub queue_capacity: usize,
}

impl ServeSpec {
    /// A spec with the default queue bound.
    pub fn new(workers: usize) -> ServeSpec {
        ServeSpec { workers, queue_capacity: 0 }
    }
}

/// A request argument — the subset of XDM items a serving client can
/// pass across threads.
#[derive(Debug, Clone)]
pub enum ServeArg {
    /// An `xs:integer`.
    Int(i64),
    /// An `xs:string`.
    Str(String),
}

impl ServeArg {
    fn to_sequence(&self) -> Sequence {
        match self {
            ServeArg::Int(i) => Sequence::one(Item::integer(*i)),
            ServeArg::Str(s) => Sequence::one(Item::string(s.clone())),
        }
    }
}

/// One unit of serving work. All payloads are plain data (`String`s
/// and integers) so requests cross the thread boundary without
/// touching the XDM arena.
#[derive(Debug, Clone)]
pub enum ServeRequest {
    /// Invoke a data-service read method and return the serialized
    /// instances (the Figure-4 "get" half).
    Get {
        /// The data service (e.g. `CustomerProfile`).
        service: String,
        /// The read method (e.g. `getProfileById`).
        method: String,
        /// Method arguments.
        args: Vec<ServeArg>,
    },
    /// Run an XQSE program text and return the serialized result.
    Run {
        /// The program source.
        program: String,
    },
    /// Read a data graph, apply SDO leaf changes, and submit it back
    /// (the Figure-4 "update" half — decomposition + 2PC underneath).
    Submit {
        /// The logical data service.
        service: String,
        /// The read method used to fetch the graph.
        method: String,
        /// Read-method arguments.
        args: Vec<ServeArg>,
        /// Leaf edits: `(instance index, path steps, new value)`.
        sets: Vec<(usize, Vec<String>, String)>,
    },
}

/// A completed request: which worker served it and what came back
/// (serialized XML for reads, `"ok"` for submits).
#[derive(Debug, Clone)]
pub struct ServeReply {
    /// Index of the worker that served the request.
    pub worker: usize,
    /// Serialized result or the typed error the request raised.
    pub result: Result<String, XdmError>,
}

/// Per-pool totals returned by [`ServePool::shutdown`].
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// Effective worker count (after the kill switch).
    pub workers: usize,
    /// Requests served per worker (indexed by worker).
    pub served: Vec<u64>,
    /// Sum of every worker's optimizer/plan/ws counters — the totals
    /// line `xqsh --explain` prints under the pool.
    pub stats: OptStats,
    /// Builder failures, by worker (a failed worker answers every
    /// request it dequeues with the error instead of crashing the
    /// pool).
    pub init_errors: Vec<Option<String>>,
}

struct Job {
    request: ServeRequest,
    reply: Arc<ReplySlot>,
}

#[derive(Default)]
struct ReplySlot {
    slot: Mutex<Option<ServeReply>>,
    ready: Condvar,
}

impl ReplySlot {
    fn fill(&self, reply: ServeReply) {
        if let Ok(mut guard) = self.slot.lock() {
            *guard = Some(reply);
            self.ready.notify_all();
        }
    }

    fn wait(&self) -> ServeReply {
        let fallback = || ServeReply {
            worker: usize::MAX,
            result: Err(crate::errors::AldspCode::SrcUnavailable
                .error("serve pool reply channel poisoned")),
        };
        let Ok(mut guard) = self.slot.lock() else { return fallback() };
        loop {
            if let Some(reply) = guard.take() {
                return reply;
            }
            guard = match self.ready.wait(guard) {
                Ok(g) => g,
                Err(_) => return fallback(),
            };
        }
    }
}

struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// Bounded MPMC queue on std `Mutex`/`Condvar`: producers block when
/// full, workers block when empty, `close` wakes everyone for a
/// drain-then-exit shutdown.
struct Queue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl Queue {
    fn new(capacity: usize) -> Queue {
        Queue {
            inner: Mutex::new(QueueInner { jobs: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue, blocking while full. Returns `false` when the queue
    /// is (or becomes) closed — the job is dropped, not served.
    fn push(&self, job: Job) -> bool {
        let Ok(mut inner) = self.inner.lock() else { return false };
        loop {
            if inner.closed {
                return false;
            }
            if inner.jobs.len() < self.capacity {
                inner.jobs.push_back(job);
                self.not_empty.notify_one();
                return true;
            }
            inner = match self.not_full.wait(inner) {
                Ok(g) => g,
                Err(_) => return false,
            };
        }
    }

    /// Dequeue, blocking while empty. `None` means closed **and**
    /// drained: time for the worker to exit.
    fn pop(&self) -> Option<Job> {
        let Ok(mut inner) = self.inner.lock() else { return None };
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = match self.not_empty.wait(inner) {
                Ok(g) => g,
                Err(_) => return None,
            };
        }
    }

    fn close(&self) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.closed = true;
        }
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

struct WorkerExit {
    served: u64,
    stats: OptStats,
    init_error: Option<String>,
}

/// The serving pool: `workers` threads, each with its own engine and
/// dataspace, pulling [`ServeRequest`]s off one bounded queue.
///
/// `builder(i)` runs **on** worker `i`'s thread and must register the
/// shared sources into a fresh [`DataSpace`] (databases clone-share
/// state; web services are rebuilt per worker because their handlers
/// are `Rc` closures). See [`crate::demo::assemble`] for the
/// canonical builder body.
pub struct ServePool {
    queue: Arc<Queue>,
    handles: Vec<JoinHandle<WorkerExit>>,
    workers: usize,
}

/// Effective worker count: the `XQSE_SERVE_WORKERS` kill switch wins
/// over the spec when it parses as a positive integer.
pub fn effective_workers(requested: usize) -> usize {
    let forced = std::env::var("XQSE_SERVE_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1);
    forced.unwrap_or(requested).max(1)
}

impl ServePool {
    /// Start the pool. `builder(i)` is invoked once on each worker
    /// thread to construct that worker's `DataSpace` over the shared
    /// source handles.
    pub fn start<B>(spec: ServeSpec, builder: B) -> ServePool
    where
        B: Fn(usize) -> XdmResult<DataSpace> + Send + Sync + 'static,
    {
        let workers = effective_workers(spec.workers);
        let capacity = if spec.queue_capacity == 0 {
            workers * 4
        } else {
            spec.queue_capacity
        };
        let queue = Arc::new(Queue::new(capacity));
        let builder = Arc::new(builder);
        // No worker serves before every worker has finished building:
        // builders write the shared sources' access slots, and a
        // half-initialized pool must not serve requests with faults or
        // breakers only partially installed.
        let barrier = Arc::new(std::sync::Barrier::new(workers));
        let handles = (0..workers)
            .map(|i| {
                let queue = queue.clone();
                let builder = builder.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    worker_loop(i, &queue, builder.as_ref(), &barrier)
                })
            })
            .collect();
        ServePool { queue, handles, workers }
    }

    /// Effective worker count (after the kill switch).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Serve one request, blocking until a worker replies (the
    /// closed-loop client primitive: each client thread has at most
    /// one request in flight).
    pub fn call(&self, request: ServeRequest) -> ServeReply {
        let reply = Arc::new(ReplySlot::default());
        let job = Job { request, reply: reply.clone() };
        if !self.queue.push(job) {
            return ServeReply {
                worker: usize::MAX,
                result: Err(crate::errors::AldspCode::SrcUnavailable
                    .error("serve pool is shut down")),
            };
        }
        reply.wait()
    }

    /// Close the queue, let the workers drain it, join them, and
    /// aggregate their counters.
    pub fn shutdown(self) -> PoolReport {
        self.queue.close();
        let mut report = PoolReport {
            workers: self.workers,
            served: Vec::with_capacity(self.handles.len()),
            stats: OptStats::default(),
            init_errors: Vec::with_capacity(self.handles.len()),
        };
        for handle in self.handles {
            match handle.join() {
                Ok(exit) => {
                    report.served.push(exit.served);
                    report.stats.accumulate(&exit.stats);
                    report.init_errors.push(exit.init_error);
                }
                Err(_) => {
                    report.served.push(0);
                    report.init_errors.push(Some("worker panicked".to_string()));
                }
            }
        }
        report
    }
}

fn worker_loop(
    idx: usize,
    queue: &Queue,
    builder: &(dyn Fn(usize) -> XdmResult<DataSpace> + Send + Sync),
    barrier: &std::sync::Barrier,
) -> WorkerExit {
    // Tag this thread so injected faults record which worker hit them.
    fault::set_current_worker(Some(idx));
    let space = builder(idx);
    let init_error = space.as_ref().err().map(|e| e.to_string());
    barrier.wait();
    let mut served = 0u64;
    while let Some(job) = queue.pop() {
        let result = match &space {
            Ok(space) => serve_one(space, &job.request),
            Err(e) => Err(e.clone()),
        };
        served += 1;
        job.reply.fill(ServeReply { worker: idx, result });
    }
    let stats = match &space {
        Ok(space) => space.engine().opt_stats(),
        Err(_) => OptStats::default(),
    };
    WorkerExit { served, stats, init_error }
}

fn serve_one(space: &DataSpace, request: &ServeRequest) -> Result<String, XdmError> {
    match request {
        ServeRequest::Get { service, method, args } => {
            let args = args.iter().map(ServeArg::to_sequence).collect();
            let graph = space.get(service, method, args)?;
            Ok(xmlparse::serialize_sequence(graph.instances()))
        }
        ServeRequest::Run { program } => {
            let mut env = Env::new();
            let out = space.xqse().run_with_env(program, &mut env)?;
            Ok(xmlparse::serialize_sequence(&out))
        }
        ServeRequest::Submit { service, method, args, sets } => {
            let args = args.iter().map(ServeArg::to_sequence).collect();
            let graph = space.get(service, method, args)?;
            for (instance, path, value) in sets {
                let steps: Vec<&str> = path.iter().map(String::as_str).collect();
                graph.set_value(*instance, &steps, value)?;
            }
            space.submit(&graph)?;
            Ok("ok".to_string())
        }
    }
}

/// Serve `requests` through `clients` closed-loop client threads over
/// an existing pool and return `(replies, elapsed)`. Requests are
/// dealt round-robin to clients; each client blocks on one request at
/// a time (the E14 driver).
pub fn drive_closed_loop(
    pool: &ServePool,
    requests: &[ServeRequest],
    clients: usize,
) -> (Vec<ServeReply>, std::time::Duration) {
    let clients = clients.max(1);
    let started = std::time::Instant::now();
    let replies: Mutex<Vec<(usize, ServeReply)>> = Mutex::new(Vec::new());
    let next: AtomicU64 = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= requests.len() {
                    break;
                }
                let reply = pool.call(requests[i].clone());
                if let Ok(mut sink) = replies.lock() {
                    sink.push((i, reply));
                }
            });
        }
    });
    let elapsed = started.elapsed();
    let mut indexed = replies.into_inner().unwrap_or_default();
    indexed.sort_by_key(|(i, _)| *i);
    (indexed.into_iter().map(|(_, r)| r).collect(), elapsed)
}
