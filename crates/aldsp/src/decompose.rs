//! Update decomposition (§II.C).
//!
//! "An update operation enters ALDSP at runtime as a C/U/D call on a
//! data service … and is then decomposed into a set of lower-level
//! updates to be propagated to the affected sources." The change
//! summary plus the lineage of the primary read function determine
//! which rows of which tables in which sources are affected; the
//! optimistic-concurrency policy chooses the "sameness" predicates
//! conditioned into the generated `UPDATE … WHERE` statements; and the
//! whole operation executes under two-phase commit when several
//! sources are touched.
//!
//! Multi-source execution runs the *journaled* coordinator
//! ([`TwoPhaseCoordinator::run_journaled`]): every protocol point is
//! recorded in the space's [`crate::journal::CoordinatorJournal`]
//! before it advances, so a coordinator crash (injected
//! `FaultKind::CrashPoint`, surfacing as `aldsp:XA_COORD_CRASH`)
//! leaves enough state for [`DataSpace::recover`] to finish or undo
//! the transaction.

// This is the write path: a panic here poisons nothing (parking_lot)
// but still kills the submit mid-protocol without a journal record —
// everything must degrade through typed Results.
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::HashMap;
use std::rc::Rc;

use xdm::error::{ErrorCode, XdmError, XdmResult};
use xdm::node::{NodeHandle, NodeKind};
use xdm::qname::QName;

use crate::lineage::{Lineage, ShapeNode};
use crate::rel::{Condition, SqlValue, TableSchema, TwoPhaseCoordinator, TxOutcome, WriteOp};
use crate::sdo::DataGraph;
use crate::service::DataSpace;

/// The optimistic-concurrency policies of §II.C.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OccPolicy {
    /// "All values that were *read* must still be the same (at update
    /// time) as their original (read time) values."
    ReadValues,
    /// "All values that were *updated* must still be the same as their
    /// original values."
    UpdatedValues,
    /// "A *chosen subset* of the values that were read (such as a
    /// timestamp or a version id) must still be the same \[as\] their
    /// original values."
    ChosenSubset(Vec<String>),
}

/// A native update-override implementation.
pub type RustOverride = Rc<dyn Fn(&DataSpace, &DataGraph) -> XdmResult<()>>;

/// The update-override slot: ALDSP 2.5 required Java here; ALDSP 3.0's
/// XQSE makes it a procedure. The reproduction supports both a native
/// closure (the "Java" baseline) and an XQSE procedure by name.
#[derive(Clone)]
pub enum UpdateOverride {
    /// Default decomposition.
    None,
    /// A native override (models the Java update override of ALDSP
    /// 2.5).
    Rust(RustOverride),
    /// An XQSE procedure invoked with the serialized SDO datagraph.
    Procedure(QName),
}

/// A decomposed plan: per-source write batches.
#[derive(Debug, Clone, Default)]
pub struct DecompositionPlan {
    /// (source name, ops) batches.
    pub per_source: Vec<(String, Vec<WriteOp>)>,
}

impl DecompositionPlan {
    /// Total statement count.
    pub fn statement_count(&self) -> usize {
        self.per_source.iter().map(|(_, ops)| ops.len()).sum()
    }

    /// Number of distinct sources touched.
    pub fn source_count(&self) -> usize {
        self.per_source.len()
    }

    /// Rendered SQL, for observability.
    pub fn iter_sql(&self) -> impl Iterator<Item = String> + '_ {
        self.per_source.iter().flat_map(|(src, ops)| {
            ops.iter().map(move |op| format!("[{src}] {}", op.to_sql()))
        })
    }

    fn push(&mut self, source: &str, op: WriteOp) {
        match self.per_source.iter_mut().find(|(s, _)| s == source) {
            Some((_, ops)) => ops.push(op),
            None => self.per_source.push((source.to_string(), vec![op])),
        }
    }
}

/// One affected row during decomposition.
struct RowDelta {
    source: String,
    table: String,
    row_element: NodeHandle,
    shape_element: QName,
    /// column → (old lexical, new lexical)
    changed: Vec<(String, String, String)>,
}

/// Decompose a changed data graph into per-source conditioned updates.
pub fn decompose_update(
    lineage: &Lineage,
    graph: &DataGraph,
    policy: &OccPolicy,
) -> XdmResult<DecompositionPlan> {
    // Group changes by their containing row element.
    let mut rows: Vec<RowDelta> = Vec::new();
    for change in graph.changes() {
        let leaf = &change.node;
        let leaf_name = leaf
            .name()
            .map(|q| q.local)
            .ok_or_else(|| XdmError::new(ErrorCode::DSP0002, "change target unnamed"))?;
        // Walk up to the nearest element matching a lineage shape.
        let mut cur = Some(leaf.clone());
        let mut found: Option<(&ShapeNode, NodeHandle)> = None;
        while let Some(node) = cur {
            if node.kind() == NodeKind::Element {
                if let Some(name) = node.name() {
                    if let Some(shape) = lineage.shape_for_element(&name) {
                        found = Some((shape, node.clone()));
                        break;
                    }
                }
            }
            cur = node.parent();
        }
        let Some((shape, row_element)) = found else {
            return Err(XdmError::new(
                ErrorCode::DSP0002,
                format!("no lineage shape contains changed element {leaf_name}"),
            ));
        };
        let Some(column) = shape.column_of(&leaf_name) else {
            return Err(XdmError::new(
                ErrorCode::DSP0002,
                format!(
                    "element {leaf_name} of shape {} has no provable lineage; \
                     an update override is required",
                    shape.element
                ),
            ));
        };
        let new_value = leaf.string_value();
        let pos = match rows.iter().position(|r| r.row_element == row_element) {
            Some(p) => p,
            None => {
                rows.push(RowDelta {
                    source: shape.source.clone(),
                    table: shape.table.clone(),
                    row_element: row_element.clone(),
                    shape_element: shape.element.clone(),
                    changed: Vec::new(),
                });
                rows.len() - 1
            }
        };
        if let Some(delta) = rows.get_mut(pos) {
            delta.changed.push((column.to_string(), change.old.clone(), new_value));
        }
    }

    // Build one conditioned UPDATE per affected row.
    let mut plan = DecompositionPlan::default();
    for delta in rows {
        let shape = lineage.shape_for_element(&delta.shape_element).ok_or_else(|| {
            XdmError::new(
                ErrorCode::DSP0002,
                format!("lineage shape for element {} disappeared", delta.shape_element),
            )
        })?;
        plan.push(
            &delta.source,
            build_update(shape, &delta, graph, policy)?,
        );
    }
    Ok(plan)
}

/// Read a field's *original* (read-time) value from the row element:
/// the recorded old value if it was changed, else the current value.
fn original_field_value(
    graph: &DataGraph,
    row: &NodeHandle,
    element: &str,
) -> Option<String> {
    let node = row
        .children()
        .into_iter()
        .find(|c| c.name().map(|q| q.local.clone()).as_deref() == Some(element))?;
    Some(graph.old_value_of(&node).unwrap_or_else(|| node.string_value()))
}

fn typed(schema: &TableSchema, column: &str, lexical: &str) -> XdmResult<SqlValue> {
    let col = schema.column(column).ok_or_else(|| {
        XdmError::new(
            ErrorCode::DSP0002,
            format!("lineage column {column} missing from table {}", schema.name),
        )
    })?;
    SqlValue::parse(col.ty, lexical)
}

fn build_update(
    shape: &ShapeNode,
    delta: &RowDelta,
    graph: &DataGraph,
    policy: &OccPolicy,
) -> XdmResult<WriteOp> {
    // Schema comes from the live source via a thread-local-free
    // lookup: the decomposer is handed the schema through the shape's
    // source at execute time; here we only need column types, so the
    // caller passes them via the dataspace at execute — instead we
    // fetch from a global registry… Simplest correct approach: carry
    // the schema inside the plan by resolving it here through the
    // graph's dataspace is not possible (no back-pointer). We instead
    // resolve types lazily: conditions are built with Varchar-lexical
    // values and retyped in `execute`.
    //
    // To keep the plan strongly typed we parse with the column types
    // captured in `SCHEMAS` — see `register_schema`.
    let schema = lookup_schema(&delta.source, &delta.table)?;
    // SET: new values for changed columns.
    let mut set: Condition = Vec::new();
    for (col, _old, new) in &delta.changed {
        set.push((col.clone(), typed(&schema, col, new)?));
    }
    // WHERE: primary key (original values) + policy predicates.
    let mut cond: Condition = Vec::new();
    for pk in &schema.primary_key {
        let elem = shape.element_of(pk).ok_or_else(|| {
            XdmError::new(
                ErrorCode::DSP0002,
                format!(
                    "primary key column {pk} of {} is not exposed by the shape; \
                     cannot identify the row",
                    delta.table
                ),
            )
        })?;
        let lex = original_field_value(graph, &delta.row_element, elem)
            .ok_or_else(|| {
                XdmError::new(
                    ErrorCode::DSP0002,
                    format!("instance lacks key element {elem}"),
                )
            })?;
        cond.push((pk.clone(), typed(&schema, pk, &lex)?));
    }
    match policy {
        OccPolicy::UpdatedValues => {
            for (col, old, _new) in &delta.changed {
                if !cond.iter().any(|(c, _)| c == col) {
                    cond.push((col.clone(), typed(&schema, col, old)?));
                }
            }
        }
        OccPolicy::ReadValues => {
            for f in &shape.fields {
                if cond.iter().any(|(c, _)| c == &f.column) {
                    continue;
                }
                if let Some(lex) =
                    original_field_value(graph, &delta.row_element, &f.element)
                {
                    cond.push((f.column.clone(), typed(&schema, &f.column, &lex)?));
                }
            }
        }
        OccPolicy::ChosenSubset(cols) => {
            for col in cols {
                if cond.iter().any(|(c, _)| c == col) {
                    continue;
                }
                let elem = shape.element_of(col).ok_or_else(|| {
                    XdmError::new(
                        ErrorCode::DSP0002,
                        format!("chosen OCC column {col} is not exposed by the shape"),
                    )
                })?;
                if let Some(lex) =
                    original_field_value(graph, &delta.row_element, elem)
                {
                    cond.push((col.clone(), typed(&schema, col, &lex)?));
                }
            }
        }
    }
    Ok(WriteOp::Update { table: delta.table.clone(), set, cond, expect_rows: 1 })
}

// ---------------------------------------------------------------------
// Schema registry: decomposition needs column types without a back
// pointer from graph to dataspace. DataSpace registers schemas here
// when sources are introspected (process-wide, keyed by source+table).
// ---------------------------------------------------------------------

thread_local! {
    static SCHEMAS: std::cell::RefCell<HashMap<(String, String), TableSchema>> =
        std::cell::RefCell::new(HashMap::new());
}

/// Record a table schema for decomposition (called by introspection).
pub fn register_schema(source: &str, schema: &TableSchema) {
    SCHEMAS.with(|s| {
        s.borrow_mut()
            .insert((source.to_string(), schema.name.clone()), schema.clone());
    });
}

fn lookup_schema(source: &str, table: &str) -> XdmResult<TableSchema> {
    SCHEMAS.with(|s| {
        s.borrow()
            .get(&(source.to_string(), table.to_string()))
            .cloned()
            .ok_or_else(|| {
                XdmError::new(
                    ErrorCode::DSP0002,
                    format!("no schema registered for {source}.{table}"),
                )
            })
    })
}

/// Execute a plan: single-source plans commit locally; multi-source
/// plans run the XA two-phase protocol (§II.C).
pub fn execute(space: &DataSpace, plan: DecompositionPlan) -> XdmResult<()> {
    let mut participants = Vec::new();
    for (source, ops) in plan.per_source {
        let db = space.database(&source).ok_or_else(|| {
            XdmError::new(ErrorCode::DSP0005, format!("unknown source {source}"))
        })?;
        participants.push((db, ops));
    }
    // Participants stay in plan order. Ordering across *sources* is
    // not a deadlock vector: prepare_raw/commit_branch release every
    // table-shard guard before returning, so no thread ever holds one
    // source's locks while blocking on another's — the canonical
    // sorted-name lock order lives one level down, on the table shards
    // within each source (rel.rs `affected_tables`). Preserving plan
    // order here keeps crash-point semantics deterministic: a fault
    // plan keyed on "the second branch's prepare" means the same
    // branch no matter what the sources are named.
    match participants.pop() {
        None => Ok(()),
        Some((db, ops)) if participants.is_empty() => db.execute(ops),
        Some(last) => {
            participants.push(last);
            // The journaled driver: protocol points are logged to the
            // space's coordinator journal and crash-injectable. A
            // crash (`Err(aldsp:XA_COORD_CRASH)`) propagates directly
            // — it is an infrastructure fault by construction, and
            // unlike an abort there is nothing tidy to report: sources
            // are divergent until `DataSpace::recover()` runs.
            let access = space.access();
            let injector = access.injector.clone();
            // The virtual clock rides along so Stall rules at protocol
            // points burn the request's deadline deterministically.
            let clock = access.resilience.as_ref().map(|r| r.lock().clock());
            match TwoPhaseCoordinator::new(participants)
                .run_journaled(&space.journal(), injector.as_ref(), clock.as_ref())?
            {
                TxOutcome::Committed => Ok(()),
                // Infrastructure faults (aldsp:SRC_*, aldsp:TX_ABORTED)
                // propagate with their typed code so an XQSE `catch
                // (aldsp:SRC_UNAVAILABLE …)` can discriminate them;
                // logical failures keep the seed's err:DSP0001 wrapper,
                // with the OCC taxonomy name attached as a diagnostic.
                TxOutcome::Aborted(err) => {
                    if crate::errors::is_infrastructure(&err) {
                        Err(err)
                    } else {
                        let diag = format!("caused by [{}]", err.code);
                        Err(XdmError::new(
                            ErrorCode::DSP0001,
                            format!("distributed update aborted: {}", err.message),
                        )
                        .diagnostics(vec![diag]))
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Create / delete decomposition for logical instances.
// ---------------------------------------------------------------------

/// Decompose a create of a full logical instance: insert the top-level
/// row, then nested child rows (parents before children for FK order).
pub fn decompose_create(
    lineage: &Lineage,
    instance: &NodeHandle,
) -> XdmResult<DecompositionPlan> {
    let mut plan = DecompositionPlan::default();
    create_rows(&lineage.root, instance, &mut plan)?;
    Ok(plan)
}

fn create_rows(
    shape: &ShapeNode,
    row_element: &NodeHandle,
    plan: &mut DecompositionPlan,
) -> XdmResult<()> {
    let schema = lookup_schema(&shape.source, &shape.table)?;
    let mut row = Vec::with_capacity(schema.columns.len());
    for col in &schema.columns {
        let lex = shape
            .element_of(&col.name)
            .and_then(|elem| {
                row_element
                    .children()
                    .into_iter()
                    .find(|c| c.name().map(|q| q.local.clone()).as_deref() == Some(elem))
            })
            .map(|n| n.string_value());
        match lex {
            Some(l) => row.push(SqlValue::parse(col.ty, &l)?),
            None => row.push(SqlValue::Null),
        }
    }
    plan.push(&shape.source, WriteOp::Insert { table: shape.table.clone(), row });
    // Nested children.
    for child in &shape.children {
        let containers: Vec<NodeHandle> = match &child.wrapper {
            Some(w) => row_element
                .children()
                .into_iter()
                .filter(|c| c.name().map(|q| q.local.clone()).as_deref() == Some(w))
                .collect(),
            None => vec![row_element.clone()],
        };
        for container in containers {
            for e in container.children() {
                if e.name().as_ref() == Some(&child.node.element) {
                    create_rows(&child.node, &e, plan)?;
                }
            }
        }
    }
    Ok(())
}

/// Decompose a delete of a logical instance: children first (FK
/// order), then the top-level row, identified by primary keys.
pub fn decompose_delete(
    lineage: &Lineage,
    instance: &NodeHandle,
) -> XdmResult<DecompositionPlan> {
    let mut ops: Vec<(String, WriteOp)> = Vec::new();
    delete_rows(&lineage.root, instance, &mut ops)?;
    // Children were collected after parents; reverse for FK safety.
    ops.reverse();
    let mut plan = DecompositionPlan::default();
    for (src, op) in ops {
        plan.push(&src, op);
    }
    Ok(plan)
}

fn delete_rows(
    shape: &ShapeNode,
    row_element: &NodeHandle,
    ops: &mut Vec<(String, WriteOp)>,
) -> XdmResult<()> {
    let schema = lookup_schema(&shape.source, &shape.table)?;
    let mut cond: Condition = Vec::new();
    for pk in &schema.primary_key {
        let elem = shape.element_of(pk).ok_or_else(|| {
            XdmError::new(
                ErrorCode::DSP0002,
                format!("primary key {pk} not exposed; cannot delete"),
            )
        })?;
        let lex = row_element
            .children()
            .into_iter()
            .find(|c| c.name().map(|q| q.local.clone()).as_deref() == Some(elem))
            .map(|n| n.string_value())
            .ok_or_else(|| {
                XdmError::new(
                    ErrorCode::DSP0002,
                    format!("instance lacks key element {elem}"),
                )
            })?;
        cond.push((pk.clone(), typed(&schema, pk, &lex)?));
    }
    ops.push((
        shape.source.clone(),
        WriteOp::Delete { table: shape.table.clone(), cond, expect_rows: 1 },
    ));
    for child in &shape.children {
        let containers: Vec<NodeHandle> = match &child.wrapper {
            Some(w) => row_element
                .children()
                .into_iter()
                .filter(|c| c.name().map(|q| q.local.clone()).as_deref() == Some(w))
                .collect(),
            None => vec![row_element.clone()],
        };
        for container in containers {
            for e in container.children() {
                if e.name().as_ref() == Some(&child.node.element) {
                    delete_rows(&child.node, &e, ops)?;
                }
            }
        }
    }
    Ok(())
}
