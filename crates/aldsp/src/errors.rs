//! ALDSP error-code taxonomy for source faults and resilience.
//!
//! The XQSE paper (§III.D) sells `try`/`catch` with NameTest matching
//! on error-code QNames as the way a data-service author discriminates
//! failure classes ("the error names to catch can be given as a
//! wildcard, a namespace-qualified wildcard, or an exact name").  The
//! seed substrate only ever raised `err:DSP000x` codes; this module
//! adds a dedicated `aldsp:` namespace of *infrastructure* failure
//! codes so scripts can tell a transient network blip from a permanent
//! outage from an OCC conflict and react differently (retry, route to
//! a fallback source, or compensate).
//!
//! A script binds the prefix once and then catches precisely:
//!
//! ```xquery
//! declare namespace aldsp = "urn:aldsp:errors";
//! try { dsDB2:createCUSTOMER($c) }
//! catch (aldsp:SRC_UNAVAILABLE into $err, $msg) { (: compensate :) }
//! ```
//!
//! See `docs/ERRORS.md` for the full catalogue and retry semantics.

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use xdm::error::XdmError;
use xdm::qname::QName;

/// Namespace URI for ALDSP infrastructure error codes.
///
/// Distinct from the W3C `err:` namespace so catch clauses can use a
/// namespace-qualified wildcard (`aldsp:*`) to mean "any
/// infrastructure fault" without also swallowing type errors.
pub const ALDSP_ERR_NS: &str = "urn:aldsp:errors";

/// The infrastructure failure classes raised by fault-injected or
/// genuinely failing sources and by the resilience layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AldspCode {
    /// A transient source fault (network blip, deadlock victim, …).
    /// Retryable: the resilience layer retries these with backoff.
    SrcTransient,
    /// A call exceeded its timeout budget (injected `Timeout`, or a
    /// `SlowResponse` whose simulated latency overran the policy
    /// timeout). Retryable.
    SrcTimeout,
    /// The source is down: a permanent fault, or the circuit breaker
    /// for the source is open and calls fail fast. Not retryable.
    SrcUnavailable,
    /// The request itself was malformed (e.g. a web-service call
    /// missing required message parts). Never retried — retrying a bad
    /// request cannot help.
    SrcBadRequest,
    /// A distributed (2PC) transaction aborted and was rolled back.
    TxAborted,
    /// Optimistic-concurrency "sameness" check failed at update time.
    OccConflict,
    /// The 2PC coordinator crashed mid-protocol (injected
    /// `FaultKind::CrashPoint`). Sources may be left in genuinely
    /// partial states — some committed, some still holding prepared
    /// locks — until [`crate::service::DataSpace::recover`] replays
    /// the coordinator journal. Not retryable: retrying would start a
    /// *new* transaction, not resolve the interrupted one.
    XaCoordCrash,
    /// A branch is in doubt: prepared, but the coordinator journal has
    /// no commit decision for its transaction. Recovery resolves these
    /// by presumed abort. Not retryable.
    XaInDoubt,
    /// A coordinator journal record failed its checksum or could not
    /// be decoded. The damaged suffix is skipped; transactions whose
    /// decision lived there are treated as in doubt. Not retryable.
    XaJournalCorrupt,
    /// Replaying a journaled decision against a source failed in a way
    /// idempotent branch operations cannot absorb (e.g. prepared state
    /// vanished while writes were still pending). Not retryable.
    XaReplayFailed,
    /// The request's wall-clock deadline expired mid-evaluation. The
    /// work was cancelled cooperatively; any in-flight transaction was
    /// rolled back. Not retryable — the client already gave up.
    DeadlineExceeded,
    /// The request exhausted its evaluation-fuel allowance (a step
    /// budget catching runaway XQSE loops). Not retryable: the same
    /// program burns the same fuel.
    FuelExhausted,
    /// The request exceeded its XDM allocation ceiling while
    /// constructing results. Not retryable.
    MemoryLimit,
    /// The serving pool shed the request at admission: the queue was
    /// full, or queue wait had already consumed the deadline. The
    /// request was never dispatched — no work was started, nothing to
    /// roll back. Not retryable *by the resilience layer* (a client may
    /// retry after backoff, but the pool won't).
    Overloaded,
    /// The request was cancelled explicitly (client disconnect, admin
    /// kill). Cooperative, like a deadline. Not retryable.
    Cancelled,
}

impl AldspCode {
    /// The local part of the code QName.
    pub fn local(&self) -> &'static str {
        match self {
            AldspCode::SrcTransient => "SRC_TRANSIENT",
            AldspCode::SrcTimeout => "SRC_TIMEOUT",
            AldspCode::SrcUnavailable => "SRC_UNAVAILABLE",
            AldspCode::SrcBadRequest => "SRC_BAD_REQUEST",
            AldspCode::TxAborted => "TX_ABORTED",
            AldspCode::OccConflict => "OCC_CONFLICT",
            AldspCode::XaCoordCrash => "XA_COORD_CRASH",
            AldspCode::XaInDoubt => "XA_IN_DOUBT",
            AldspCode::XaJournalCorrupt => "XA_JOURNAL_CORRUPT",
            AldspCode::XaReplayFailed => "XA_REPLAY_FAILED",
            AldspCode::DeadlineExceeded => "DEADLINE_EXCEEDED",
            AldspCode::FuelExhausted => "FUEL_EXHAUSTED",
            AldspCode::MemoryLimit => "MEMORY_LIMIT",
            AldspCode::Overloaded => "OVERLOADED",
            AldspCode::Cancelled => "CANCELLED",
        }
    }

    /// The code as a QName in [`ALDSP_ERR_NS`].
    pub fn qname(&self) -> QName {
        QName::with_ns(ALDSP_ERR_NS, self.local())
    }

    /// Build an [`XdmError`] with this code.
    pub fn error(&self, message: impl Into<String>) -> XdmError {
        XdmError::with_code(self.qname(), message)
    }

    /// True when the resilience layer may retry a failure with this
    /// code (transients and timeouts; never bad requests, outages, or
    /// logical conflicts).
    pub fn retryable(&self) -> bool {
        matches!(self, AldspCode::SrcTransient | AldspCode::SrcTimeout)
    }

    /// Classify an arbitrary error: `Some(code)` if it carries one of
    /// the taxonomy QNames, else `None` (a logical/source-level error
    /// such as `err:DSP0003`).
    pub fn of(err: &XdmError) -> Option<AldspCode> {
        if err.code.ns.as_deref() != Some(ALDSP_ERR_NS) {
            return None;
        }
        match err.code.local.as_str() {
            "SRC_TRANSIENT" => Some(AldspCode::SrcTransient),
            "SRC_TIMEOUT" => Some(AldspCode::SrcTimeout),
            "SRC_UNAVAILABLE" => Some(AldspCode::SrcUnavailable),
            "SRC_BAD_REQUEST" => Some(AldspCode::SrcBadRequest),
            "TX_ABORTED" => Some(AldspCode::TxAborted),
            "OCC_CONFLICT" => Some(AldspCode::OccConflict),
            "XA_COORD_CRASH" => Some(AldspCode::XaCoordCrash),
            "XA_IN_DOUBT" => Some(AldspCode::XaInDoubt),
            "XA_JOURNAL_CORRUPT" => Some(AldspCode::XaJournalCorrupt),
            "XA_REPLAY_FAILED" => Some(AldspCode::XaReplayFailed),
            "DEADLINE_EXCEEDED" => Some(AldspCode::DeadlineExceeded),
            "FUEL_EXHAUSTED" => Some(AldspCode::FuelExhausted),
            "MEMORY_LIMIT" => Some(AldspCode::MemoryLimit),
            "OVERLOADED" => Some(AldspCode::Overloaded),
            "CANCELLED" => Some(AldspCode::Cancelled),
        _ => None,
        }
    }
}

/// True when `err` is an infrastructure fault the resilience layer is
/// allowed to retry.
pub fn is_retryable(err: &XdmError) -> bool {
    AldspCode::of(err).is_some_and(|c| c.retryable())
}

/// True when `err` carries *any* code in the ALDSP error namespace.
pub fn is_infrastructure(err: &XdmError) -> bool {
    err.code.ns.as_deref() == Some(ALDSP_ERR_NS)
}

#[cfg(test)]
mod taxonomy_tests {
    use super::*;
    use xdm::error::ErrorCode;

    #[test]
    fn qnames_live_in_the_aldsp_namespace() {
        for code in [
            AldspCode::SrcTransient,
            AldspCode::SrcTimeout,
            AldspCode::SrcUnavailable,
            AldspCode::SrcBadRequest,
            AldspCode::TxAborted,
            AldspCode::OccConflict,
            AldspCode::XaCoordCrash,
            AldspCode::XaInDoubt,
            AldspCode::XaJournalCorrupt,
            AldspCode::XaReplayFailed,
            AldspCode::DeadlineExceeded,
            AldspCode::FuelExhausted,
            AldspCode::MemoryLimit,
            AldspCode::Overloaded,
            AldspCode::Cancelled,
        ] {
            let q = code.qname();
            assert_eq!(q.ns.as_deref(), Some(ALDSP_ERR_NS));
            assert_eq!(q.local, code.local());
            // Round trip through an XdmError.
            let e = code.error("x");
            assert_eq!(AldspCode::of(&e), Some(code));
        }
    }

    #[test]
    fn retryability_partition() {
        assert!(AldspCode::SrcTransient.retryable());
        assert!(AldspCode::SrcTimeout.retryable());
        assert!(!AldspCode::SrcUnavailable.retryable());
        assert!(!AldspCode::SrcBadRequest.retryable());
        assert!(!AldspCode::TxAborted.retryable());
        assert!(!AldspCode::OccConflict.retryable());
        assert!(!AldspCode::XaCoordCrash.retryable());
        assert!(!AldspCode::XaInDoubt.retryable());
        assert!(!AldspCode::XaJournalCorrupt.retryable());
        assert!(!AldspCode::XaReplayFailed.retryable());
        assert!(!AldspCode::DeadlineExceeded.retryable());
        assert!(!AldspCode::FuelExhausted.retryable());
        assert!(!AldspCode::MemoryLimit.retryable());
        assert!(!AldspCode::Overloaded.retryable());
        assert!(!AldspCode::Cancelled.retryable());
    }

    /// The evaluator-side budget module hardcodes the namespace (it
    /// cannot depend on this crate); the two constants must never
    /// drift apart, or budget errors would stop matching `aldsp:*`
    /// catch clauses.
    #[test]
    fn budget_errors_share_the_aldsp_namespace() {
        assert_eq!(xqeval::budget::ALDSP_ERR_NS, ALDSP_ERR_NS);
        for why in [
            xqeval::BudgetExceeded::Deadline,
            xqeval::BudgetExceeded::Fuel,
            xqeval::BudgetExceeded::Memory,
            xqeval::BudgetExceeded::Cancelled,
        ] {
            let e = why.error("x");
            assert!(
                AldspCode::of(&e).is_some(),
                "budget error {:?} must map into the taxonomy",
                why
            );
            assert!(!is_retryable(&e));
        }
    }

    #[test]
    fn w3c_codes_are_not_infrastructure() {
        let e = XdmError::new(ErrorCode::DSP0003, "pk violation");
        assert_eq!(AldspCode::of(&e), None);
        assert!(!is_infrastructure(&e));
        assert!(!is_retryable(&e));
    }
}
